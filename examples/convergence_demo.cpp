// End-to-end training semantics demo (§9.1, §9.3): a real model
// trains through the SampleManager while simulated preemptions abort
// in-flight mini-batches and a stage wipe-out forces a rollback from
// the ParcaePS in-memory checkpoint. The run finishes with the same
// per-epoch exactly-once guarantee and a converged model.
#include <cstdio>
#include <memory>
#include <set>

#include "common/rng.h"
#include "nn/dataset.h"
#include "nn/mlp.h"
#include "runtime/parcae_ps.h"
#include "runtime/sample_manager.h"

using namespace parcae;

int main() {
  const std::size_t n = 512;
  const auto ds = nn::make_blobs(n, 16, 5, 0.5, 1234);
  nn::Mlp model({16, 48, 5}, std::make_unique<nn::Adam>(0.004f), 3);
  ParcaePs ps(model.flat_parameters(), 0.004f);
  SampleManager samples(n, 42);
  Rng chaos(99);

  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  const nn::Matrix eval_x = ds.gather(all);
  const auto eval_y = ds.gather_labels(all);

  int preemptions = 0;
  int rollbacks = 0;
  const int epochs = 20;
  std::printf("training %zu samples for %d epochs under preemptions...\n\n",
              n, epochs);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::set<std::size_t> trained;
    while (!samples.epoch_complete()) {
      const auto lease = samples.lease(32);
      if (lease.id == 0) break;
      if (chaos.bernoulli(0.15)) {
        // A spot preemption kills the pipeline mid-iteration: the
        // mini-batch is aborted and its samples will be re-leased.
        samples.abort(lease.id);
        ++preemptions;
        continue;
      }
      if (chaos.bernoulli(0.02)) {
        // Rare stage wipe-out (§8): restore parameters AND optimizer
        // state from the ParcaePS in-memory checkpoint.
        nn::MlpCheckpoint checkpoint;
        checkpoint.parameters = ps.parameters();
        checkpoint.optimizer_state = ps.optimizer_state();
        checkpoint.step = ps.version();
        model.restore(checkpoint);
        samples.abort(lease.id);
        ++rollbacks;
        continue;
      }
      model.train_batch(ds.gather(lease.samples),
                        ds.gather_labels(lease.samples));
      ps.push_gradients(model.flat_gradients());
      samples.commit(lease.id);
      for (auto s : lease.samples) trained.insert(s);
    }
    if (trained.size() != n) {
      std::printf("exactly-once violated at epoch %d!\n", epoch);
      return 1;
    }
    samples.start_next_epoch();
    if (epoch % 4 == 3)
      std::printf("epoch %2d  loss %.4f  accuracy %.1f%%\n", epoch,
                  static_cast<double>(model.eval_loss(eval_x, eval_y)),
                  100.0 * model.eval_accuracy(eval_x, eval_y));
  }
  std::printf(
      "\ndone: %d preemptions aborted mini-batches, %d ParcaePS rollbacks, "
      "every sample trained exactly once per epoch.\n",
      preemptions, rollbacks);
  std::printf("PS checkpoint version: %lld (one per committed iteration)\n",
              ps.version());
  return 0;
}
