// Fleet simulation CLI: many Parcae jobs multiplexed over one shared
// spot pool, liveput-arbitrated leases vs. static partitioning.
//
//   fleet_sim_cli [key=value ...]
//
// Run `fleet_sim_cli help` for the full key list.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/slo.h"
#include "fleet/fleet_sim.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "rpc/obs_service.h"
#include "rpc/rpc.h"
#include "runtime/kv_store.h"
#include "trace/trace_io.h"

using namespace parcae;

namespace {

void print_usage() {
  std::printf(
      "fleet_sim_cli [key=value ...]\n"
      "\n"
      "Replay a fleet of Parcae jobs over one shared spot pool, with\n"
      "the FleetArbiter granting/revoking leases each interval, and\n"
      "compare against static partitioning (docs/fleet.md).\n"
      "\n"
      "keys:\n"
      "  jobs=<int>          fleet size (default 10); jobs cycle through\n"
      "                      GPT-2/BERT-Large/ResNet-152/VGG-19 with\n"
      "                      weights 1.0/2.0/1.0/0.5\n"
      "  trace=HA-DP|HA-SP|LA-DP|LA-SP|full-day|<file.csv>\n"
      "                      shared pool trace (default full-day)\n"
      "  capacity=<int>      pool capacity (default 32)\n"
      "  seed=<int>          fleet seed; job j's scheduler seed is\n"
      "                      forked as fleet_job_seed(seed, j)\n"
      "  lookahead=<int>     per-job lookahead (default 6)\n"
      "  history=<int>       per-job prediction history (default 8)\n"
      "  mc_trials=<int>     per-job Monte-Carlo trials (default 16)\n"
      "  mode=tick|event     per-job re-optimization trigger: tick\n"
      "                      (default) re-solves every interval; event\n"
      "                      re-solves only on lease-change events\n"
      "                      (warm-started incremental DP)\n"
      "  debounce_ms=<float> event coalescing window for mode=event\n"
      "                      (default 250)\n"
      "  swap_margin=<float> arbiter swap hysteresis (default 0.05)\n"
      "  static=0|1          also run the static-partitioning baseline\n"
      "                      and print the comparison (default 1)\n"
      "  election=0|1        arm KV-backed leader election for the\n"
      "                      arbiter (default 0)\n"
      "  metrics=0|1         print the metrics-registry snapshot\n"
      "  rollup=0|1          print the FleetAggregator rollup (per-job\n"
      "                      job<j>.* folded into fleet.* sums/maxima)\n"
      "  alerts=<spec>       fleet SLO rules evaluated on the rollup\n"
      "                      once per regime (docs/observability.md\n"
      "                      grammar; alerts=default = built-ins)\n"
      "  alerts_jsonl=<file> fired alerts as JSONL\n"
      "  export_port=<int>   serve the live fleet rollup as Prometheus\n"
      "                      text over TCP RPC (obs.metrics method,\n"
      "                      0 = ephemeral)\n"
      "\n"
      "example:\n"
      "  fleet_sim_cli jobs=50 trace=LA-SP seed=7\n");
}

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept GNU-style spellings (--jobs=50) for every key.
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg] = "";
      continue;
    }
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (args.count("help") != 0 || args.count("h") != 0) {
    print_usage();
    return 0;
  }

  const std::string trace_name = get(args, "trace", "full-day");
  SpotTrace trace;
  bool found = false;
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == trace_name) {
      trace = t;
      found = true;
    }
  if (!found && trace_name == "full-day") {
    trace = full_day_trace();
    found = true;
  }
  if (!found) {
    std::string error;
    auto loaded = load_trace(trace_name, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot resolve trace '%s': %s\n",
                   trace_name.c_str(), error.c_str());
      return 1;
    }
    trace = *loaded;
  }

  const int num_jobs = std::stoi(get(args, "jobs", "10"));
  if (num_jobs < 1) {
    std::fprintf(stderr, "jobs=%d: need at least one job\n", num_jobs);
    return 1;
  }

  fleet::FleetSimOptions options;
  options.fleet_seed = std::stoull(get(args, "seed", "42"));
  options.capacity = std::stoi(get(args, "capacity", "32"));
  options.lookahead = std::stoi(get(args, "lookahead", "6"));
  options.history = std::stoi(get(args, "history", "8"));
  options.mc_trials = std::stoi(get(args, "mc_trials", "16"));
  options.swap_margin = std::stod(get(args, "swap_margin", "0.05"));
  const std::string sched_mode = get(args, "mode", "tick");
  if (sched_mode != "tick" && sched_mode != "event") {
    std::fprintf(stderr, "mode=%s: expected tick or event\n",
                 sched_mode.c_str());
    return 1;
  }
  options.event_driven = sched_mode == "event";
  options.debounce_ms = std::stod(get(args, "debounce_ms", "250"));

  obs::MetricsRegistry registry;
  options.metrics = &registry;
  KvStore kv;
  if (get(args, "election", "0") == "1") options.kv = &kv;

  // Fleet SLOs: rules run against the FleetAggregator rollup once per
  // regime, so they can target fleet-wide names ("fleet.sim.preemptions",
  // "fleet.fleet.normalized_liveput.max", arbiter counters).
  const std::string alerts_spec = get(args, "alerts", "");
  const std::string alerts_jsonl = get(args, "alerts_jsonl", "");
  std::unique_ptr<SloEngine> slo;
  if (!alerts_spec.empty()) {
    std::string error;
    const std::vector<SloRule> rules =
        alerts_spec == "default" ? SloEngine::default_rules()
                                 : SloEngine::parse_rules(alerts_spec, &error);
    if (rules.empty()) {
      std::fprintf(stderr, "bad alert spec '%s': %s\n", alerts_spec.c_str(),
                   error.c_str());
      return 1;
    }
    slo = std::make_unique<SloEngine>(rules);
    options.slo = slo.get();
  }

  // Live export: every scrape folds a fresh registry snapshot through
  // the aggregator, so a scraper watches fleet.* rollups move as jobs
  // integrate.
  const std::string export_port = get(args, "export_port", "");
  std::unique_ptr<rpc::Transport> export_transport;
  std::unique_ptr<rpc::RpcServer> export_server;
  std::unique_ptr<rpc::ObsService> export_service;
  if (!export_port.empty()) {
    export_transport = rpc::make_tcp_transport(std::stoi(export_port));
    export_server = std::make_unique<rpc::RpcServer>(*export_transport);
    export_service = std::make_unique<rpc::ObsService>(
        [&registry]() {
          obs::FleetAggregator aggregator;
          aggregator.fold(registry.snapshot());
          return aggregator.rollup();
        });
    export_service->bind(*export_server);
    export_server->start();
    std::printf("serving fleet rollup on %s (rpc method \"obs.metrics\")\n",
                export_transport->address().c_str());
  }

  fleet::FleetSimulator simulator(fleet::standard_fleet(num_jobs), options);
  const fleet::FleetSimResult arbiter = simulator.run(trace);
  std::printf("%s", arbiter.to_string().c_str());

  if (get(args, "static", "1") == "1") {
    const fleet::FleetSimResult baseline = simulator.run_static(trace);
    std::printf("\n%s", baseline.to_string().c_str());
    const double gain =
        baseline.weighted_liveput > 0.0
            ? arbiter.weighted_liveput / baseline.weighted_liveput - 1.0
            : 0.0;
    std::printf(
        "\narbiter vs static: %+.1f%% weighted liveput "
        "(%.4f vs %.4f), share deviation %.4f vs %.4f\n",
        gain * 100.0, arbiter.weighted_liveput, baseline.weighted_liveput,
        arbiter.weighted_share_deviation,
        baseline.weighted_share_deviation);
  }

  if (get(args, "metrics", "0") == "1") {
    std::printf("\nmetrics:\n%s", registry.snapshot().render().c_str());
  }
  if (get(args, "rollup", "0") == "1") {
    obs::FleetAggregator aggregator;
    aggregator.fold(registry.snapshot());
    std::printf("\nfleet rollup (%d jobs folded):\n%s", aggregator.jobs(),
                aggregator.rollup().render().c_str());
  }
  if (slo != nullptr) {
    const std::string table = slo->render();
    if (table.empty())
      std::printf("\nalerts: none fired (%zu rules armed)\n",
                  slo->rules().size());
    else
      std::printf("\nalerts (%zu fired):\n%s", slo->alerts().size(),
                  table.c_str());
    if (!alerts_jsonl.empty()) {
      if (slo->write_jsonl(alerts_jsonl))
        std::printf("wrote %s (%zu alerts)\n", alerts_jsonl.c_str(),
                    slo->alerts().size());
      else
        std::fprintf(stderr, "cannot write %s\n", alerts_jsonl.c_str());
    }
  }
  if (export_server != nullptr) {
    try {
      rpc::RpcClient scraper(*export_transport,
                             export_transport->address());
      const std::string prom = rpc::ObsClient(scraper).scrape();
      std::printf("exporter self-scrape: %zu bytes of Prometheus text\n",
                  prom.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "exporter self-scrape failed: %s\n", e.what());
    }
  }
  return 0;
}
