// Fleet simulation CLI: many Parcae jobs multiplexed over one shared
// spot pool, liveput-arbitrated leases vs. static partitioning.
//
//   fleet_sim_cli [key=value ...]
//
// Run `fleet_sim_cli help` for the full key list.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "fleet/fleet_sim.h"
#include "obs/metrics.h"
#include "runtime/kv_store.h"
#include "trace/trace_io.h"

using namespace parcae;

namespace {

void print_usage() {
  std::printf(
      "fleet_sim_cli [key=value ...]\n"
      "\n"
      "Replay a fleet of Parcae jobs over one shared spot pool, with\n"
      "the FleetArbiter granting/revoking leases each interval, and\n"
      "compare against static partitioning (docs/fleet.md).\n"
      "\n"
      "keys:\n"
      "  jobs=<int>          fleet size (default 10); jobs cycle through\n"
      "                      GPT-2/BERT-Large/ResNet-152/VGG-19 with\n"
      "                      weights 1.0/2.0/1.0/0.5\n"
      "  trace=HA-DP|HA-SP|LA-DP|LA-SP|full-day|<file.csv>\n"
      "                      shared pool trace (default full-day)\n"
      "  capacity=<int>      pool capacity (default 32)\n"
      "  seed=<int>          fleet seed; job j's scheduler seed is\n"
      "                      forked as fleet_job_seed(seed, j)\n"
      "  lookahead=<int>     per-job lookahead (default 6)\n"
      "  history=<int>       per-job prediction history (default 8)\n"
      "  mc_trials=<int>     per-job Monte-Carlo trials (default 16)\n"
      "  swap_margin=<float> arbiter swap hysteresis (default 0.05)\n"
      "  static=0|1          also run the static-partitioning baseline\n"
      "                      and print the comparison (default 1)\n"
      "  election=0|1        arm KV-backed leader election for the\n"
      "                      arbiter (default 0)\n"
      "  metrics=0|1         print the metrics-registry snapshot\n"
      "\n"
      "example:\n"
      "  fleet_sim_cli jobs=50 trace=LA-SP seed=7\n");
}

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept GNU-style spellings (--jobs=50) for every key.
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg] = "";
      continue;
    }
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (args.count("help") != 0 || args.count("h") != 0) {
    print_usage();
    return 0;
  }

  const std::string trace_name = get(args, "trace", "full-day");
  SpotTrace trace;
  bool found = false;
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == trace_name) {
      trace = t;
      found = true;
    }
  if (!found && trace_name == "full-day") {
    trace = full_day_trace();
    found = true;
  }
  if (!found) {
    std::string error;
    auto loaded = load_trace(trace_name, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot resolve trace '%s': %s\n",
                   trace_name.c_str(), error.c_str());
      return 1;
    }
    trace = *loaded;
  }

  const int num_jobs = std::stoi(get(args, "jobs", "10"));
  if (num_jobs < 1) {
    std::fprintf(stderr, "jobs=%d: need at least one job\n", num_jobs);
    return 1;
  }

  fleet::FleetSimOptions options;
  options.fleet_seed = std::stoull(get(args, "seed", "42"));
  options.capacity = std::stoi(get(args, "capacity", "32"));
  options.lookahead = std::stoi(get(args, "lookahead", "6"));
  options.history = std::stoi(get(args, "history", "8"));
  options.mc_trials = std::stoi(get(args, "mc_trials", "16"));
  options.swap_margin = std::stod(get(args, "swap_margin", "0.05"));

  obs::MetricsRegistry registry;
  options.metrics = &registry;
  KvStore kv;
  if (get(args, "election", "0") == "1") options.kv = &kv;

  fleet::FleetSimulator simulator(fleet::standard_fleet(num_jobs), options);
  const fleet::FleetSimResult arbiter = simulator.run(trace);
  std::printf("%s", arbiter.to_string().c_str());

  if (get(args, "static", "1") == "1") {
    const fleet::FleetSimResult baseline = simulator.run_static(trace);
    std::printf("\n%s", baseline.to_string().c_str());
    const double gain =
        baseline.weighted_liveput > 0.0
            ? arbiter.weighted_liveput / baseline.weighted_liveput - 1.0
            : 0.0;
    std::printf(
        "\narbiter vs static: %+.1f%% weighted liveput "
        "(%.4f vs %.4f), share deviation %.4f vs %.4f\n",
        gain * 100.0, arbiter.weighted_liveput, baseline.weighted_liveput,
        arbiter.weighted_share_deviation,
        baseline.weighted_share_deviation);
  }

  if (get(args, "metrics", "0") == "1") {
    std::printf("\nmetrics:\n%s", registry.snapshot().render().c_str());
  }
  return 0;
}
