// Serving simulation CLI: run the SLO-aware goodput scheduler (or a
// baseline) on any model, availability trace, and arrival process.
//
//   serve_sim_cli [key=value ...]
//
// keys:
//   model=GPT-2|GPT-3|BERT-Large|ResNet-152|VGG-19
//   trace=HA-DP|HA-SP|LA-DP|LA-SP|full-day|<file.csv>
//   system=proactive|oracle|reactive|static
//   arrival=poisson|mmpp|replay
//   rps=<float>            base request rate (requests per second)
//   burst=<float>          MMPP burst-state rate multiplier
//   diurnal=<float>        diurnal envelope amplitude (0 = flat)
//   replay_rps=<r0,r1,..>  arrival=replay per-interval rate series
//   slo_ms=<float>         latency SLO (default 4000)
//   max_batch=<int>        continuous-batching window per replica
//   replicas=<DxP>         system=static fixed config, e.g. replicas=8x2
//   intervals=<int>        scheduling intervals to run (default: trace)
//   lookahead=<int>        history=<int>      reoptimize=<int>
//   mc_trials=<int>        hysteresis=<float> seed=<int>
//   mode=tick|event        re-optimization trigger (tick re-solves
//                          every reoptimize= intervals; event re-solves
//                          only on preemptions/allocations with a
//                          debounce window, warm-started DP)
//   debounce_ms=<float>    event coalescing window for mode=event
//   threads=<int>          goodput-DP worker threads (0 = auto:
//                          PARCAE_THREADS env var; default 1 = serial;
//                          bit-identical at any count)
//   timeline=0|1           print intervals where the config changed
//   metrics=0|1            print the metrics-registry snapshot
//   faults=<spec>          fault-injection spec (docs/robustness.md),
//                          e.g. faults=serve.admission:nth=100
//                          (the PARCAE_FAULTS env var is the fallback)
//   faults_seed=<int>      injector seed (default: seed ^ 0xfa017)
//   alerts=<spec>          SLO rules evaluated every interval
//                          (docs/observability.md grammar;
//                          alerts=default = built-in serving rule set)
//   alerts_jsonl=<file>    fired alerts as JSONL
//   metrics_csv=<file>     per-interval time series as CSV
//   requests_jsonl=<file>  per-request latency audit as JSONL
//                          (summarize with `trace_tool requests`)
//   export_port=<int>      serve the live registry as Prometheus text
//                          over TCP RPC (obs.metrics; 0 = ephemeral),
//                          with a self-scrape before exit
//
// Example:
//   serve_sim_cli model=GPT-2 trace=LA-SP system=proactive arrival=mmpp
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/slo.h"
#include "obs/timeseries.h"
#include "rpc/obs_service.h"
#include "rpc/rpc.h"
#include "serve/serving_sim.h"
#include "trace/trace_io.h"

using namespace parcae;
using namespace parcae::serve;

namespace {

void print_usage() {
  std::printf(
      "serve_sim_cli [key=value ...]\n"
      "\n"
      "Run the SLO-aware goodput scheduler (or a baseline) on any\n"
      "model, availability trace, and arrival process (docs/serving.md).\n"
      "\n"
      "keys:\n"
      "  model=GPT-2|GPT-3|BERT-Large|ResNet-152|VGG-19\n"
      "  trace=HA-DP|HA-SP|LA-DP|LA-SP|full-day|<file.csv>\n"
      "  system=proactive|oracle|reactive|static\n"
      "  arrival=poisson|mmpp|replay\n"
      "  rps=<float>            base request rate (req/s)\n"
      "  burst=<float>          MMPP burst multiplier\n"
      "  diurnal=<float>        diurnal envelope amplitude\n"
      "  replay_rps=<r0,r1,..>  arrival=replay rate series\n"
      "  slo_ms=<float>         latency SLO (default 4000)\n"
      "  max_batch=<int>        continuous-batching window\n"
      "  replicas=<DxP>         system=static fixed config (e.g. 8x2)\n"
      "  intervals=<int>        intervals to run (default: whole trace)\n"
      "  lookahead=<int>        history=<int>      reoptimize=<int>\n"
      "  mc_trials=<int>        hysteresis=<float> seed=<int>\n"
      "  mode=tick|event        debounce_ms=<float>\n"
      "  threads=<int>          goodput-DP threads (bit-identical)\n"
      "  timeline=0|1           metrics=0|1\n"
      "  faults=<spec>          faults_seed=<int>   (docs/robustness.md)\n"
      "  alerts=<spec>          alerts_jsonl=<file>\n"
      "  metrics_csv=<file>     requests_jsonl=<file>\n"
      "  export_port=<int>      live Prometheus export over TCP RPC\n"
      "\n"
      "example:\n"
      "  serve_sim_cli model=GPT-2 trace=LA-SP system=proactive "
      "arrival=mmpp\n");
}

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg] = "";
      continue;
    }
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (args.count("help") != 0 || args.count("h") != 0) {
    print_usage();
    return 0;
  }

  ModelProfile model;
  try {
    model = model_by_name(get(args, "model", "GPT-2"));
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown model\n");
    return 1;
  }

  const std::string trace_name = get(args, "trace", "HA-DP");
  SpotTrace trace;
  bool found = false;
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == trace_name) {
      trace = t;
      found = true;
    }
  if (!found && trace_name == "full-day") {
    trace = full_day_trace();
    found = true;
  }
  if (!found) {
    std::string error;
    auto loaded = load_trace(trace_name, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot resolve trace '%s': %s\n",
                   trace_name.c_str(), error.c_str());
      return 1;
    }
    trace = *loaded;
  }

  const std::uint64_t seed = std::stoull(get(args, "seed", "123"));

  ArrivalOptions aopt;
  const std::string arrival = get(args, "arrival", "poisson");
  if (arrival == "poisson") {
    aopt.kind = ArrivalKind::kPoisson;
  } else if (arrival == "mmpp") {
    aopt.kind = ArrivalKind::kMmpp;
  } else if (arrival == "replay") {
    aopt.kind = ArrivalKind::kReplay;
    std::string list = get(args, "replay_rps", "");
    if (list.empty()) {
      std::fprintf(stderr, "arrival=replay needs replay_rps=<r0,r1,..>\n");
      return 1;
    }
    for (std::size_t pos = 0; pos < list.size();) {
      const auto comma = list.find(',', pos);
      const std::string tok = list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!tok.empty()) aopt.replay_rps.push_back(std::stod(tok));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  } else {
    std::fprintf(stderr, "arrival=%s: expected poisson|mmpp|replay\n",
                 arrival.c_str());
    return 1;
  }
  aopt.seed = seed ^ 0xa221ull;
  aopt.base_rps = std::stod(get(args, "rps", "60"));
  aopt.burst_multiplier = std::stod(get(args, "burst", "3"));
  aopt.diurnal_amplitude = std::stod(get(args, "diurnal", "0"));

  ServingSchedulerOptions sopt;
  const std::string system = get(args, "system", "proactive");
  if (system == "proactive") {
    sopt.mode = ServingMode::kProactive;
  } else if (system == "oracle") {
    sopt.mode = ServingMode::kOracle;
  } else if (system == "reactive") {
    sopt.mode = ServingMode::kReactive;
  } else if (system == "static") {
    sopt.mode = ServingMode::kStatic;
  } else {
    std::fprintf(stderr,
                 "system=%s: expected proactive|oracle|reactive|static\n",
                 system.c_str());
    return 1;
  }
  const std::string replicas = get(args, "replicas", "");
  if (!replicas.empty()) {
    const auto x = replicas.find('x');
    if (x == std::string::npos) {
      std::fprintf(stderr, "replicas=%s: expected DxP (e.g. 8x2)\n",
                   replicas.c_str());
      return 1;
    }
    sopt.static_config = ParallelConfig{std::stoi(replicas.substr(0, x)),
                                        std::stoi(replicas.substr(x + 1))};
  }
  sopt.lookahead = std::stoi(get(args, "lookahead", "12"));
  sopt.history = std::stoi(get(args, "history", "12"));
  sopt.reoptimize_every = std::stoi(get(args, "reoptimize", "1"));
  sopt.mc_trials = std::stoi(get(args, "mc_trials", "256"));
  sopt.depth_change_hysteresis = std::stod(get(args, "hysteresis", "0.15"));
  sopt.seed = seed;
  sopt.serving.slo_ms = std::stod(get(args, "slo_ms", "4000"));
  sopt.serving.max_batch = std::stoi(get(args, "max_batch", "8"));
  const std::string sched_mode = get(args, "mode", "tick");
  if (sched_mode != "tick" && sched_mode != "event") {
    std::fprintf(stderr, "mode=%s: expected tick or event\n",
                 sched_mode.c_str());
    return 1;
  }
  sopt.event_driven = sched_mode == "event";
  sopt.debounce_ms = std::stod(get(args, "debounce_ms", "250"));
  const std::string threads_arg = get(args, "threads", "");
  sopt.threads = threads_arg.empty() ? ThreadPool::env_threads(1)
                                     : std::stoi(threads_arg);
  const int threads_shown =
      sopt.threads == 1 ? 1 : ThreadPool::resolve(sopt.threads);

  obs::MetricsRegistry registry;
  obs::TimeSeriesRecorder series;
  sopt.metrics = &registry;

  ServingSimOptions sim;
  sim.metrics = &registry;
  const std::string metrics_csv = get(args, "metrics_csv", "");
  if (!metrics_csv.empty()) sim.timeseries = &series;
  sim.requests_jsonl_path = get(args, "requests_jsonl", "");

  FaultInjector faults(std::stoull(
      get(args, "faults_seed", std::to_string(seed ^ 0xfa017ull))));
  std::string fault_spec = get(args, "faults", "");
  if (fault_spec.empty()) {
    const char* env = std::getenv("PARCAE_FAULTS");
    if (env != nullptr) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    std::string error;
    if (!faults.arm_from_spec(fault_spec, &error)) {
      std::fprintf(stderr, "bad fault spec '%s': %s\n", fault_spec.c_str(),
                   error.c_str());
      return 1;
    }
    sim.faults = &faults;
  }

  const std::string alerts_spec = get(args, "alerts", "");
  const std::string alerts_jsonl = get(args, "alerts_jsonl", "");
  std::unique_ptr<SloEngine> slo;
  if (!alerts_spec.empty()) {
    std::string error;
    const std::vector<SloRule> rules =
        alerts_spec == "default"
            ? SloEngine::default_serving_rules()
            : SloEngine::parse_rules(alerts_spec, &error);
    if (rules.empty()) {
      std::fprintf(stderr, "bad alert spec '%s': %s\n", alerts_spec.c_str(),
                   error.c_str());
      return 1;
    }
    slo = std::make_unique<SloEngine>(rules);
    sim.slo = slo.get();
    sim.timeseries = &series;
  }

  const std::string export_port = get(args, "export_port", "");
  std::unique_ptr<rpc::Transport> export_transport;
  std::unique_ptr<rpc::RpcServer> export_server;
  std::unique_ptr<rpc::ObsService> export_service;
  if (!export_port.empty()) {
    export_transport = rpc::make_tcp_transport(std::stoi(export_port));
    export_server = std::make_unique<rpc::RpcServer>(*export_transport);
    export_service = std::make_unique<rpc::ObsService>(registry);
    if (sim.faults != nullptr) export_service->set_fault_injector(sim.faults);
    export_service->bind(*export_server);
    export_server->start();
    std::printf("serving metrics on %s (rpc method \"obs.metrics\")\n",
                export_transport->address().c_str());
  }

  ArrivalGenerator arrivals(aopt);
  ServingScheduler scheduler(model, sopt, &arrivals,
                             sopt.mode == ServingMode::kOracle ? &trace
                                                               : nullptr);

  const int trace_intervals = static_cast<int>(
      trace.availability_series(sopt.interval_s).size());
  const int intervals =
      std::stoi(get(args, "intervals", std::to_string(trace_intervals)));

  const ServingSimResult r =
      simulate_serving(scheduler, arrivals, trace, intervals, sim);

  std::printf("system:           %s\n", r.policy.c_str());
  std::printf("model:            %s\n", model.name.c_str());
  std::printf("decision threads: %d%s\n", threads_shown,
              threads_shown == 1 ? " (serial)" : "");
  if (sopt.event_driven)
    std::printf("scheduler mode:   event (debounce_ms=%.0f)\n",
                sopt.debounce_ms);
  else
    std::printf("scheduler mode:   tick (reoptimize every %d)\n",
                std::max(1, sopt.reoptimize_every));
  std::printf("trace:            %s (%.0f min, avg %.2f instances)\n",
              r.trace.c_str(), r.duration_s / 60.0,
              trace.stats().avg_instances);
  std::printf("arrival:          %s, base %.1f rps, SLO %.0f ms\n",
              arrival_kind_name(aopt.kind), aopt.base_rps,
              sopt.serving.slo_ms);
  std::printf(
      "requests:         %llu arrived, %llu served, %llu good, "
      "%llu dropped, %llu carried\n",
      static_cast<unsigned long long>(r.requests_arrived),
      static_cast<unsigned long long>(r.requests_served),
      static_cast<unsigned long long>(r.requests_good),
      static_cast<unsigned long long>(r.requests_dropped),
      static_cast<unsigned long long>(r.requests_carried));
  std::printf("goodput:          %.2f req/s, SLO attainment %.2f%%\n",
              r.goodput_rps, r.slo_attainment * 100.0);
  std::printf("latency:          p50 %.0f ms, p95 %.0f ms, p99 %.0f ms\n",
              r.p50_ms, r.p95_ms, r.p99_ms);
  std::printf(
      "cost:             $%.2f total, %.4f USD per 1M within-SLO "
      "requests\n",
      r.spot_cost_usd, r.cost_per_million_usd);
  std::printf("reconfigurations: %d\n", r.config_changes);
  if (faults.armed()) {
    std::printf("faults:           %llu injected\n",
                static_cast<unsigned long long>(faults.total_fired()));
    std::printf("  armed points:   %s\n", faults.describe().c_str());
  }

  if (get(args, "timeline", "0") == "1") {
    std::printf("\ntimeline (intervals with reconfigurations):\n");
    ParallelConfig prev = kIdleConfig;
    for (std::size_t i = 0; i < r.timeline.size(); ++i) {
      const auto& rec = r.timeline[i];
      if (i > 0 && rec.config == prev) continue;
      prev = rec.config;
      std::printf(
          "  t=%3zu min  N=%2d  %-6s  %.0f rps offered, p99 %.0f ms\n", i,
          rec.available,
          rec.config.valid() ? rec.config.to_string().c_str() : "-",
          rec.offered_rps, rec.p99_ms);
    }
  }

  if (get(args, "metrics", "0") == "1")
    std::printf("\nmetrics:\n%s", r.metrics.render().c_str());
  if (!metrics_csv.empty()) {
    if (series.write_csv(metrics_csv))
      std::printf("wrote %s (%zu intervals)\n", metrics_csv.c_str(),
                  series.rows());
    else
      std::fprintf(stderr, "cannot write %s\n", metrics_csv.c_str());
  }
  if (!sim.requests_jsonl_path.empty())
    std::printf("wrote %s (summarize: trace_tool requests %s)\n",
                sim.requests_jsonl_path.c_str(),
                sim.requests_jsonl_path.c_str());

  if (slo != nullptr) {
    const std::string table = slo->render();
    if (table.empty())
      std::printf("\nalerts: none fired (%zu rules armed)\n",
                  slo->rules().size());
    else
      std::printf("\nalerts (%zu fired):\n%s", slo->alerts().size(),
                  table.c_str());
    if (!alerts_jsonl.empty()) {
      if (slo->write_jsonl(alerts_jsonl))
        std::printf("wrote %s (%zu alerts)\n", alerts_jsonl.c_str(),
                    slo->alerts().size());
      else
        std::fprintf(stderr, "cannot write %s\n", alerts_jsonl.c_str());
    }
  }

  if (export_server != nullptr) {
    try {
      rpc::RpcClient scraper(*export_transport, export_transport->address());
      const std::string prom = rpc::ObsClient(scraper).scrape();
      std::printf("exporter self-scrape: %zu bytes of Prometheus text\n",
                  prom.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "exporter self-scrape failed: %s\n", e.what());
    }
  }
  return 0;
}
