// Observability dashboard: run Parcae over a trace with every sink
// attached and drop the artifacts a real operator would want.
//
//   obs_dashboard [trace] [outdir]
//
// Writes into outdir (default "."):
//   run.trace.json  Chrome trace events — load in chrome://tracing or
//                   https://ui.perfetto.dev to see predict / optimize /
//                   plan-migration / execute-interval spans per interval
//   metrics.csv     per-interval time series (one row per scheduling
//                   interval: availability, live instances, liveput
//                   estimate, throughput, stall, cumulative samples, $)
//   events.jsonl    the scheduler's structured EventLog
//   metrics.prom    the final registry snapshot in Prometheus text
//                   exposition format (what the obs.metrics endpoint
//                   serves)
//   alerts.jsonl    SLO alerts (default rule set, src/core/slo.h)
//                   fired during the run
// and prints the metrics-registry snapshot as aligned tables and an
// alerts summary, followed by a §8 robustness section: a chaos run of
// the *real* training runtime under fault injection (PARCAE_FAULTS
// overrides the default chaos spec) with its recovery counters.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/fault.h"
#include "common/table.h"
#include "core/slo.h"
#include "nn/dataset.h"
#include "obs/exporter.h"
#include "obs/profile_span.h"
#include "obs/timeseries.h"
#include "runtime/parcae_policy.h"
#include "runtime/spot_driver.h"
#include "trace/trace_io.h"

using namespace parcae;

namespace {

std::optional<SpotTrace> resolve(const std::string& what) {
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == what) return t;
  if (what == "full-day") return full_day_trace();
  std::string error;
  auto trace = load_trace(what, &error);
  if (!trace) std::fprintf(stderr, "cannot load '%s': %s\n", what.c_str(),
                           error.c_str());
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_name = argc > 1 ? argv[1] : "HA-DP";
  const std::string outdir = argc > 2 ? argv[2] : ".";
  const auto trace = resolve(trace_name);
  if (!trace) return 1;

  const ModelProfile model = model_by_name("GPT-2");

  obs::MetricsRegistry registry;
  obs::TraceWriter tracer;
  obs::TimeSeriesRecorder series;

  ParcaePolicyOptions popt;
  popt.metrics = &registry;
  popt.tracer = &tracer;
  ParcaePolicy policy(model, popt);

  SimulationOptions sim;
  sim.units_per_sample = model.tokens_per_sample;
  sim.record_timeline = false;
  sim.metrics = &registry;
  sim.tracer = &tracer;
  sim.timeseries = &series;

  SloEngine slo(SloEngine::default_rules());
  sim.slo = &slo;

  const SimulationResult r = simulate(policy, *trace, sim);

  std::printf("%s on %s: %s %ss committed (%s/s), $%.2f\n\n",
              r.policy.c_str(), r.trace.c_str(),
              format_si(r.committed_units, 2).c_str(),
              model.sample_unit.c_str(),
              format_si(r.avg_unit_throughput, 2).c_str(), r.total_cost_usd);
  std::printf("%s", r.metrics.render().c_str());

  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  const std::string trace_path = outdir + "/run.trace.json";
  const std::string csv_path = outdir + "/metrics.csv";
  const std::string events_path = outdir + "/events.jsonl";
  bool ok = true;
  if (tracer.write_file(trace_path))
    std::printf("\nwrote %s (%zu events)\n", trace_path.c_str(),
                tracer.size());
  else
    ok = false;
  if (series.write_csv(csv_path))
    std::printf("wrote %s (%zu intervals x %zu columns)\n", csv_path.c_str(),
                series.rows(), series.columns().size());
  else
    ok = false;
  FILE* f = std::fopen(events_path.c_str(), "w");
  if (f != nullptr) {
    const std::string jsonl = policy.telemetry().to_jsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu events)\n", events_path.c_str(),
                policy.telemetry().size());
  } else {
    ok = false;
  }
  const std::string prom_path = outdir + "/metrics.prom";
  FILE* prom_file = std::fopen(prom_path.c_str(), "w");
  if (prom_file != nullptr) {
    const std::string prom = obs::to_prometheus(r.metrics);
    std::fwrite(prom.data(), 1, prom.size(), prom_file);
    std::fclose(prom_file);
    std::printf("wrote %s (%zu bytes)\n", prom_path.c_str(), prom.size());
  } else {
    ok = false;
  }
  const std::string alerts_path = outdir + "/alerts.jsonl";
  if (slo.write_jsonl(alerts_path))
    std::printf("wrote %s (%zu alerts)\n", alerts_path.c_str(),
                slo.alerts().size());
  else
    ok = false;
  const std::string alert_table = slo.render();
  if (alert_table.empty())
    std::printf("\nalerts: none fired (%zu default rules armed)\n",
                slo.rules().size());
  else
    std::printf("\nalerts (%zu fired):\n%s", slo.alerts().size(),
                alert_table.c_str());
  if (!ok) {
    std::fprintf(stderr, "cannot write artifacts into %s\n", outdir.c_str());
    return 1;
  }
  std::printf(
      "\nopen %s in chrome://tracing or https://ui.perfetto.dev to "
      "browse the run\n",
      trace_path.c_str());

  // -- §8 robustness: chaos-run the real runtime (SpotTrainingDriver)
  // on a churny synthetic trace with faults injected into training,
  // migration, ParcaePS and the KvStore, and show what it survived.
  const char* env_spec = std::getenv("PARCAE_FAULTS");
  const std::string chaos_spec =
      env_spec != nullptr && *env_spec != '\0'
          ? env_spec
          : "cluster.kill_mid_iteration:nth=5,max=2;"
            "cluster.kill_mid_migration:nth=3,max=1;"
            "ps.push:prob=0.05;kv.put:prob=0.02";
  FaultInjector faults(2026);
  std::string spec_error;
  if (!faults.arm_from_spec(chaos_spec, &spec_error)) {
    std::fprintf(stderr, "bad fault spec '%s': %s\n", chaos_spec.c_str(),
                 spec_error.c_str());
    return 1;
  }

  const auto ds = nn::make_blobs(256, 12, 4, 0.5, 9);
  TrainingClusterOptions cluster;
  cluster.layer_sizes = {12, 32, 4};
  cluster.epoch_size = ds.size();
  cluster.batch_size = 32;
  cluster.initial_instances = 0;
  Rng chaos_rng(12);
  SyntheticTraceOptions chaos_trace_options;
  chaos_trace_options.capacity = 8;
  chaos_trace_options.target_availability = 6.0;
  chaos_trace_options.preemption_events = 10;
  chaos_trace_options.duration_s = 30 * 60.0;
  const SpotTrace chaos_trace =
      synthesize_trace(chaos_trace_options, chaos_rng);
  SpotDriverOptions driver_options;
  driver_options.faults = &faults;
  SpotTrainingDriver driver(cluster, &ds, driver_options);
  const SpotDriverReport report = driver.run(chaos_trace);

  std::printf("\nrobustness (chaos run of the real runtime, spec \"%s\"):\n",
              chaos_spec.c_str());
  TextTable chaos({"counter", "value"});
  chaos.row().add("faults injected").add(report.faults_injected);
  chaos.row()
      .add("unpredicted kills survived")
      .add(report.unpredicted_kills_survived);
  chaos.row().add("mid-iteration kills").add(report.mid_iteration_kills);
  chaos.row().add("migrations aborted").add(report.migrations_aborted);
  chaos.row().add("ps push retries").add(report.ps_push_retries);
  chaos.row().add("ps refreshes").add(report.ps_refreshes);
  chaos.row().add("lease expirations").add(report.lease_expirations);
  chaos.row().add("paused intervals").add(report.paused_intervals);
  chaos.row().add("ps rollbacks").add(report.ps_rollbacks);
  std::printf("%s", chaos.to_string().c_str());
  std::printf("replicas stayed consistent: %s; final loss %.3f after %lld "
              "iterations\n",
              report.replicas_always_consistent ? "yes" : "NO",
              report.final_loss, report.iterations);

  // Every agent-side KV/PS operation in the chaos run crossed the RPC
  // layer (docs/rpc.md), so its counters are part of the dashboard.
  bool any_rpc = false;
  TextTable rpc({"rpc counter", "value"});
  for (const auto& [name, value] : report.metrics.counters) {
    if (name.rfind("rpc.", 0) != 0) continue;
    rpc.row().add(name).add(value);
    any_rpc = true;
  }
  if (any_rpc) {
    std::printf("\nrpc (%s transport):\n",
                driver.cluster().rpc_transport().kind());
    std::printf("%s", rpc.to_string().c_str());
  }
  return 0;
}
