// Observability dashboard: run Parcae over a trace with every sink
// attached and drop the artifacts a real operator would want.
//
//   obs_dashboard [trace] [outdir]
//
// Writes into outdir (default "."):
//   run.trace.json  Chrome trace events — load in chrome://tracing or
//                   https://ui.perfetto.dev to see predict / optimize /
//                   plan-migration / execute-interval spans per interval
//   metrics.csv     per-interval time series (one row per scheduling
//                   interval: availability, live instances, liveput
//                   estimate, throughput, stall, cumulative samples, $)
//   events.jsonl    the scheduler's structured EventLog
// and prints the metrics-registry snapshot as aligned tables.
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/table.h"
#include "obs/profile_span.h"
#include "obs/timeseries.h"
#include "runtime/parcae_policy.h"
#include "trace/trace_io.h"

using namespace parcae;

namespace {

std::optional<SpotTrace> resolve(const std::string& what) {
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == what) return t;
  if (what == "full-day") return full_day_trace();
  std::string error;
  auto trace = load_trace(what, &error);
  if (!trace) std::fprintf(stderr, "cannot load '%s': %s\n", what.c_str(),
                           error.c_str());
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_name = argc > 1 ? argv[1] : "HA-DP";
  const std::string outdir = argc > 2 ? argv[2] : ".";
  const auto trace = resolve(trace_name);
  if (!trace) return 1;

  const ModelProfile model = model_by_name("GPT-2");

  obs::MetricsRegistry registry;
  obs::TraceWriter tracer;
  obs::TimeSeriesRecorder series;

  ParcaePolicyOptions popt;
  popt.metrics = &registry;
  popt.tracer = &tracer;
  ParcaePolicy policy(model, popt);

  SimulationOptions sim;
  sim.units_per_sample = model.tokens_per_sample;
  sim.record_timeline = false;
  sim.metrics = &registry;
  sim.tracer = &tracer;
  sim.timeseries = &series;

  const SimulationResult r = simulate(policy, *trace, sim);

  std::printf("%s on %s: %s %ss committed (%s/s), $%.2f\n\n",
              r.policy.c_str(), r.trace.c_str(),
              format_si(r.committed_units, 2).c_str(),
              model.sample_unit.c_str(),
              format_si(r.avg_unit_throughput, 2).c_str(), r.total_cost_usd);
  std::printf("%s", r.metrics.render().c_str());

  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  const std::string trace_path = outdir + "/run.trace.json";
  const std::string csv_path = outdir + "/metrics.csv";
  const std::string events_path = outdir + "/events.jsonl";
  bool ok = true;
  if (tracer.write_file(trace_path))
    std::printf("\nwrote %s (%zu events)\n", trace_path.c_str(),
                tracer.size());
  else
    ok = false;
  if (series.write_csv(csv_path))
    std::printf("wrote %s (%zu intervals x %zu columns)\n", csv_path.c_str(),
                series.rows(), series.columns().size());
  else
    ok = false;
  FILE* f = std::fopen(events_path.c_str(), "w");
  if (f != nullptr) {
    const std::string jsonl = policy.telemetry().to_jsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu events)\n", events_path.c_str(),
                policy.telemetry().size());
  } else {
    ok = false;
  }
  if (!ok) {
    std::fprintf(stderr, "cannot write artifacts into %s\n", outdir.c_str());
    return 1;
  }
  std::printf(
      "\nopen %s in chrome://tracing or https://ui.perfetto.dev to "
      "browse the run\n",
      trace_path.c_str());
  return 0;
}
