// The whole paper end to end at laptop scale: a generated spot market
// preempts and grants instances; the SpotTrainingDriver runs
// Algorithm 1 (ARIMA forecast -> liveput optimizer -> §8 adaptation ->
// real live migrations) against a real model training on a real
// cluster of agents.
#include <cstdio>

#include "migration/planner.h"
#include "nn/dataset.h"
#include "runtime/spot_driver.h"
#include "trace/spot_market.h"

using namespace parcae;

int main() {
  const auto dataset = nn::make_blobs(512, 16, 5, 0.5, 20240101);

  // Generate a choppy spot market for an 8-instance reservation.
  Rng rng(7);
  SpotMarketOptions market;
  market.capacity = 8;
  market.bid = 1.0;
  market.grant_rate = 2.5;
  market.duration_s = 60 * 60.0;
  const SpotMarketResult m = simulate_spot_market(market, rng);
  const TraceStats stats = m.trace.stats();
  std::printf(
      "generated spot market: avg %.1f instances, %d preemption events, "
      "%d allocation events, mean paid price $%.2f/h\n\n",
      stats.avg_instances, stats.preemption_events, stats.allocation_events,
      m.mean_paid_price);

  TrainingClusterOptions cluster;
  cluster.layer_sizes = {16, 48, 32, 5};
  cluster.epoch_size = dataset.size();
  cluster.batch_size = 64;
  cluster.initial_instances = 0;  // the market grants them

  SpotDriverOptions driver_options;
  driver_options.iterations_per_interval = 6;
  SpotTrainingDriver driver(cluster, &dataset, driver_options);
  const SpotDriverReport report = driver.run(m.trace);

  std::printf("ran %d intervals, %lld training iterations, %zu epochs\n",
              report.intervals, report.iterations, report.epochs_completed);
  std::printf("final loss: %.4f\n", static_cast<double>(report.final_loss));
  std::printf("replica consistency held: %s\n",
              report.replicas_always_consistent ? "yes" : "NO");
  std::printf("ParcaePS rollbacks: %lld\n\n", report.ps_rollbacks);
  std::printf("live migrations executed:\n");
  for (MigrationKind kind :
       {MigrationKind::kIntraStage, MigrationKind::kInterStage,
        MigrationKind::kPipeline, MigrationKind::kRollback,
        MigrationKind::kSuspend}) {
    std::printf("  %-12s %d\n", migration_kind_name(kind),
                report.migrations(kind));
  }
  return 0;
}
