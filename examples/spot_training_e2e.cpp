// The whole paper end to end at laptop scale: a generated spot market
// preempts and grants instances; the SpotTrainingDriver runs
// Algorithm 1 (ARIMA forecast -> liveput optimizer -> §8 adaptation ->
// real live migrations) against a real model training on a real
// cluster of agents.
//
//   spot_training_e2e [key=value ...]
//
// keys:
//   transport=inproc|tcp   how agents reach the KV/PS hub (docs/rpc.md);
//                          inproc (default) is the deterministic
//                          in-process transport, tcp runs the same RPCs
//                          over real localhost sockets
//   rpc_port=<int>         TCP listen port (0 = ephemeral; ignored for
//                          inproc)
//   faults=<spec>          fault-injection spec (docs/robustness.md),
//                          e.g. faults=rpc.drop:prob=0.05
//                          (the PARCAE_FAULTS env var is the fallback)
//   faults_seed=<int>      injector seed (default 0xfa017)
//
// The report is bit-identical across transports on a fault-free run
// (tests/rpc_test.cpp pins this); the rpc section at the end shows
// what the wire actually carried.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/fault.h"
#include "migration/planner.h"
#include "nn/dataset.h"
#include "runtime/spot_driver.h"
#include "trace/spot_market.h"

using namespace parcae;

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept GNU-style spellings (--transport=tcp) for every key.
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  const auto dataset = nn::make_blobs(512, 16, 5, 0.5, 20240101);

  // Generate a choppy spot market for an 8-instance reservation.
  Rng rng(7);
  SpotMarketOptions market;
  market.capacity = 8;
  market.bid = 1.0;
  market.grant_rate = 2.5;
  market.duration_s = 60 * 60.0;
  const SpotMarketResult m = simulate_spot_market(market, rng);
  const TraceStats stats = m.trace.stats();
  std::printf(
      "generated spot market: avg %.1f instances, %d preemption events, "
      "%d allocation events, mean paid price $%.2f/h\n\n",
      stats.avg_instances, stats.preemption_events, stats.allocation_events,
      m.mean_paid_price);

  TrainingClusterOptions cluster;
  cluster.layer_sizes = {16, 48, 32, 5};
  cluster.epoch_size = dataset.size();
  cluster.batch_size = 64;
  cluster.initial_instances = 0;  // the market grants them
  cluster.transport = get(args, "transport", "inproc");
  cluster.rpc_port = std::stoi(get(args, "rpc_port", "0"));

  // Fault injection: the faults= key wins, the PARCAE_FAULTS env var
  // is the fallback. rpc.* points exercise the transport layer.
  FaultInjector faults(std::stoull(get(args, "faults_seed", "1024023")));
  std::string fault_spec = get(args, "faults", "");
  if (fault_spec.empty()) {
    const char* env = std::getenv("PARCAE_FAULTS");
    if (env != nullptr) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    std::string error;
    if (!faults.arm_from_spec(fault_spec, &error)) {
      std::fprintf(stderr, "bad fault spec '%s': %s\n", fault_spec.c_str(),
                   error.c_str());
      return 1;
    }
  }

  SpotDriverOptions driver_options;
  driver_options.iterations_per_interval = 6;
  if (!fault_spec.empty()) driver_options.faults = &faults;
  SpotTrainingDriver driver(cluster, &dataset, driver_options);
  std::printf("transport: %s", driver.cluster().rpc_transport().kind());
  if (cluster.transport == "tcp")
    std::printf(" (%s)", driver.cluster().rpc_address().c_str());
  if (!fault_spec.empty())
    std::printf(", faults armed: %s", faults.describe().c_str());
  std::printf("\n\n");
  const SpotDriverReport report = driver.run(m.trace);

  std::printf("ran %d intervals, %lld training iterations, %zu epochs\n",
              report.intervals, report.iterations, report.epochs_completed);
  std::printf("final loss: %.4f\n", static_cast<double>(report.final_loss));
  std::printf("replica consistency held: %s\n",
              report.replicas_always_consistent ? "yes" : "NO");
  std::printf("ParcaePS rollbacks: %lld\n\n", report.ps_rollbacks);
  std::printf("live migrations executed:\n");
  for (MigrationKind kind :
       {MigrationKind::kIntraStage, MigrationKind::kInterStage,
        MigrationKind::kPipeline, MigrationKind::kRollback,
        MigrationKind::kSuspend}) {
    std::printf("  %-12s %d\n", migration_kind_name(kind),
                report.migrations(kind));
  }

  // What actually crossed the wire: every agent-side KV/PS operation
  // goes through the RPC layer in both transport modes.
  const auto counter = [&report](const std::string& name) {
    const auto it = report.metrics.counters.find(name);
    return it == report.metrics.counters.end() ? 0.0 : it->second;
  };
  std::printf("\nrpc (%s):\n", driver.cluster().rpc_transport().kind());
  std::printf("  requests      %.0f (retries %.0f, timeouts %.0f)\n",
              counter("rpc.requests"), counter("rpc.client.retries"),
              counter("rpc.timeouts"));
  std::printf("  responses     %.0f (server replays %.0f)\n",
              counter("rpc.responses"), counter("rpc.server.replays"));
  std::printf("  frames        %.0f sent / %.0f received, %.0f dropped\n",
              counter("rpc.frames_sent"), counter("rpc.frames_received"),
              counter("rpc.dropped"));
  std::printf("  bytes         %.0f sent / %.0f received\n",
              counter("rpc.bytes_sent"), counter("rpc.bytes_received"));
  if (!fault_spec.empty())
    std::printf("  faults        %llu injected\n",
                static_cast<unsigned long long>(faults.total_fired()));
  return 0;
}
