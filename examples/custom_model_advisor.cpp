// Using the public API for a model that is not in the paper's zoo:
// define a profile for a hypothetical 13B-parameter transformer, ask
// the memory model where it fits, inspect THROUGHPUT(D, P), compute
// liveput under preemption scenarios (Definition 1), and get a
// liveput-optimal plan for a forecast availability sequence.
#include <cstdio>

#include "common/table.h"
#include "core/liveput.h"
#include "core/liveput_optimizer.h"
#include "migration/cost_model.h"
#include "model/memory_model.h"
#include "model/model_profile.h"
#include "parallel/throughput_model.h"

using namespace parcae;

int main() {
  // 1. Describe the model.
  ModelProfile model;
  model.name = "GPT-13B";
  model.parameters = 13e9;
  model.partition_units = 40;  // transformer layers
  model.tokens_per_sample = 2048;
  model.mini_batch = 64;
  model.micro_batch = 1;
  model.fwd_flops_per_sample = 2.0 * model.parameters * model.tokens_per_sample;
  model.effective_flops = 45e12;
  model.boundary_activation_bytes = 2048.0 * 5120.0 * 2.0;
  model.unit_activation_bytes = 17.0 * model.boundary_activation_bytes;
  model.activation_recompute = true;
  model.sample_unit = "token";

  // 2. Where does it fit on 16 GB GPUs?
  const MemoryModel memory(model, MemorySpec::parcae());
  std::printf("%s: %.1fB parameters, min pipeline depth on V100-16GB: %d\n\n",
              model.name.c_str(), model.parameters / 1e9,
              memory.min_feasible_depth());

  // 3. Throughput across configurations.
  const ThroughputModel tm(model, {});
  TextTable configs({"instances", "best config", "tokens/s"});
  for (int n : {16, 20, 24, 28, 32}) {
    const ParallelConfig best = tm.best_config(n);
    configs.row()
        .add(n)
        .add(best.valid() ? best.to_string() : "none")
        .add(tm.unit_throughput(best), 0);
  }
  std::printf("%s\n", configs.to_string().c_str());

  // 4. Liveput on 32 instances: the full-width pipeline maximizes
  // throughput but a single preemption kills it; a shorter pipeline
  // with idle spares keeps positive expected throughput (inter-stage
  // recovery column) — Definition 1's robustness trade-off.
  PreemptionSampler sampler(7, 1024);
  const LiveputEstimator liveput(&tm, &sampler);
  TextTable lp({"config (spares)", "throughput", "liveput k=1", "k=2",
                "with inter-stage k=2"});
  for (const ParallelConfig c : {ParallelConfig{1, 32}, ParallelConfig{1, 20}}) {
    const int spares = 32 - c.instances();
    lp.row()
        .add(c.to_string() + " (+" + std::to_string(spares) + ")")
        .add(tm.throughput(c), 2)
        .add(liveput.liveput(c, spares, 1), 2)
        .add(liveput.liveput(c, spares, 2), 2)
        .add(liveput.liveput_with_inter_stage(c, spares, 2), 2);
  }
  std::printf("%s\n", lp.to_string().c_str());

  // 5. A liveput-optimal plan for a predicted availability decline.
  LiveputOptimizer optimizer(&tm, CostEstimator(model));
  const std::vector<int> forecast{30, 28, 26, 26, 24, 24, 26, 28, 30, 30};
  const LiveputPlan plan = optimizer.optimize(tm.best_config(30), 30,
                                              forecast);
  std::printf("liveput-optimal plan for forecast availability:\n");
  for (std::size_t i = 0; i < plan.configs.size(); ++i)
    std::printf("  interval %zu: N=%d -> %s\n", i, forecast[i],
                plan.configs[i].valid() ? plan.configs[i].to_string().c_str()
                                        : "suspend");
  std::printf("expected committed samples over the window: %.0f\n",
              plan.expected_samples);
  return 0;
}
