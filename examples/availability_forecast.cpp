// Availability forecasting demo: feed a spot trace to the predictors
// Parcae evaluates (§5) and watch the guarded ARIMA track it.
//
//   ./availability_forecast [trace]   (HA-DP | HA-SP | LA-DP | LA-SP)
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "predict/arima.h"
#include "predict/evaluation.h"
#include "predict/guards.h"
#include "predict/predictor.h"
#include "trace/spot_trace.h"

using namespace parcae;

int main(int argc, char** argv) {
  SpotTrace trace = canonical_segment(TraceSegment::kHighAvailDense);
  if (argc > 1) {
    for (const SpotTrace& t : all_canonical_segments())
      if (t.name() == argv[1]) trace = t;
  }
  const auto series = trace.availability_series_d();
  std::printf("forecasting trace %s (%zu intervals)\n\n",
              trace.name().c_str(), series.size());

  // Rolling-origin accuracy of every predictor.
  std::vector<std::unique_ptr<AvailabilityPredictor>> predictors;
  predictors.push_back(make_parcae_predictor(32.0));
  predictors.push_back(std::make_unique<NaivePredictor>());
  predictors.push_back(std::make_unique<MovingAveragePredictor>(8));
  predictors.push_back(std::make_unique<ExponentialSmoothingPredictor>(0.4));
  predictors.push_back(std::make_unique<HoltPredictor>());
  predictors.push_back(std::make_unique<LinearTrendPredictor>());

  TextTable table({"predictor", "normalized L1 (H=12, I=12)", "mean |err|"});
  for (const auto& p : predictors) {
    const auto eval = evaluate_predictor(*p, series, 12, 12);
    table.row().add(p->name()).add(eval.normalized_l1, 4).add(eval.l1, 2);
  }
  std::printf("%s\n", table.to_string().c_str());

  // A single live forecast from the middle of the trace.
  const int origin = static_cast<int>(series.size()) / 2;
  const std::span<const double> history(series.data() + origin - 12, 12);
  auto arima = make_parcae_predictor(32.0);
  const auto forecast = arima->forecast(history, 12);
  std::printf("forecast from minute %d (history ", origin);
  for (double h : history) std::printf("%.0f ", h);
  std::printf("):\n  horizon:  ");
  for (int h = 1; h <= 12; ++h) std::printf("%5d", h);
  std::printf("\n  forecast: ");
  for (double f : forecast) std::printf("%5.1f", f);
  std::printf("\n  actual:   ");
  for (int h = 1; h <= 12; ++h) {
    const std::size_t idx = std::min(series.size() - 1,
                                     static_cast<std::size_t>(origin + h));
    std::printf("%5.0f", series[idx]);
  }
  std::printf("\n");
  return 0;
}
