// Watch Parcae's live migrations operate on a *real* model: a small
// cluster of ParcaeAgents trains an MLP with pipeline+data
// parallelism while instances come and go; the scheduler executes
// intra-stage, inter-stage, and pipeline migrations and the model
// keeps training without losing state (ParcaePS covers stage
// wipe-outs). This is the Figure-6/Figure-7 machinery with actual
// parameters moving between agents.
#include <cstdio>

#include "nn/dataset.h"
#include "runtime/training_cluster.h"

using namespace parcae;

namespace {
void status(const TrainingCluster& cluster, const char* what) {
  std::printf("%-46s config=%-5s alive=%d spares=%d consistent=%s\n", what,
              cluster.config().valid()
                  ? cluster.config().to_string().c_str()
                  : "idle",
              cluster.alive_count(), cluster.spare_count(),
              cluster.replicas_consistent() ? "yes" : "NO");
}

void train_for(TrainingCluster& cluster, int iterations) {
  float loss = 0.0f;
  for (int i = 0; i < iterations; ++i) {
    const auto outcome = cluster.train_iteration();
    if (!outcome) break;
    loss = outcome->loss;
  }
  std::printf("%-46s loss=%.4f\n", "  ...trained", loss);
}
}  // namespace

int main() {
  const auto dataset = nn::make_blobs(512, 16, 5, 0.5, 31337);
  TrainingClusterOptions options;
  options.layer_sizes = {16, 48, 32, 5};
  options.epoch_size = dataset.size();
  options.batch_size = 64;
  options.initial_instances = 8;
  TrainingCluster cluster(options, &dataset);

  std::printf("== initial setup ==\n");
  MigrationKind kind = cluster.reconfigure({3, 2});
  status(cluster, migration_kind_name(kind));
  train_for(cluster, 20);

  std::printf("\n== one instance preempted: intra-stage recovery ==\n");
  // Kill one assigned replica; 6 survivors re-form 2 complete pipelines.
  for (const auto& agent : cluster.agents())
    if (agent.assigned() && agent.pipeline == 2 && agent.stage == 1) {
      cluster.preempt({agent.id});
      break;
    }
  kind = cluster.reconfigure({2, 2});
  status(cluster, migration_kind_name(kind));
  train_for(cluster, 20);

  std::printf("\n== allocations arrive: grow back via state copies ==\n");
  cluster.allocate(3);
  kind = cluster.reconfigure({3, 2});
  status(cluster, migration_kind_name(kind));
  train_for(cluster, 20);

  std::printf("\n== availability swings: pipeline migration to depth 3 ==\n");
  kind = cluster.reconfigure({2, 3});
  status(cluster, migration_kind_name(kind));
  train_for(cluster, 20);

  std::printf("\n== a whole stage dies: rollback from ParcaePS ==\n");
  std::vector<int> victims;
  for (const auto& agent : cluster.agents())
    if (agent.assigned() && agent.stage == 2) victims.push_back(agent.id);
  cluster.preempt(victims);
  kind = cluster.reconfigure({2, 3});
  status(cluster, migration_kind_name(kind));
  train_for(cluster, 20);

  std::printf("\n== cluster collapses below one pipeline: suspend ==\n");
  std::vector<int> most;
  for (const auto& agent : cluster.agents())
    if (agent.alive && most.size() + 2 < static_cast<std::size_t>(
                                             cluster.alive_count()))
      most.push_back(agent.id);
  cluster.preempt(most);
  kind = cluster.reconfigure(kIdleConfig);
  status(cluster, migration_kind_name(kind));

  std::printf("\n== instances return: resume from ParcaePS ==\n");
  cluster.allocate(4);
  kind = cluster.reconfigure({2, 2});
  status(cluster, migration_kind_name(kind));
  train_for(cluster, 20);

  std::printf("\ntotal ParcaePS rollbacks: %lld; coordination state:\n",
              cluster.rollbacks());
  for (const auto& key : cluster.kv().list("agent/"))
    std::printf("  %s = %s\n", key.c_str(),
                cluster.kv().get(key)->value.c_str());
  return 0;
}
