// Full simulation CLI: run any system on any model and trace with
// tunable policy options.
//
//   spot_sim_cli [key=value ...]
//
// keys:
//   model=GPT-2|GPT-3|BERT-Large|ResNet-152|VGG-19
//   trace=HA-DP|HA-SP|LA-DP|LA-SP|full-day|<file.csv>
//   system=parcae|ideal|reactive|varuna|bamboo|oobleck|checkfreq|
//          hybrid|elastic|ondemand
//   lookahead=<int>        history=<int>      reoptimize=<int>
//   mc_trials=<int>        hysteresis=<float> seed=<int>
//   threads=<int>          liveput-DP worker threads (also --threads=N;
//                          0 = auto: PARCAE_THREADS env var, else
//                          hardware concurrency; default 1 = serial.
//                          Results are bit-identical at any count.)
//   timeline=0|1
//   metrics=0|1            print the metrics-registry snapshot
//   faults=<spec>          fault-injection spec (docs/robustness.md),
//                          e.g. faults=sim.unpredicted_preempt:prob=0.1
//                          (the PARCAE_FAULTS env var is the fallback)
//   faults_seed=<int>      injector seed (default: seed ^ 0xfa017)
//   metrics_csv=<file>     per-interval time series as CSV
//   trace_json=<file>      Chrome trace events (chrome://tracing,
//                          https://ui.perfetto.dev)
//   events_jsonl=<file>    scheduler EventLog as JSONL (Parcae modes)
//   alerts=<spec>          SLO rules evaluated every interval
//                          (src/core/slo.h grammar; alerts=default
//                          loads the built-in rule set)
//   alerts_jsonl=<file>    fired alerts as JSONL
//   export_port=<int>      serve the live registry as Prometheus text
//                          over TCP RPC (method "obs.metrics";
//                          0 = ephemeral) for the whole run, with a
//                          self-scrape before exit
//   transport=inproc|tcp   also run the *real* runtime (laptop-scale
//                          SpotTrainingDriver) on a prefix of the
//                          selected trace, with agents reaching the
//                          KV/PS hub over this transport (docs/rpc.md),
//                          and print the driver report + rpc.* counters
//   rpc_port=<int>         TCP listen port for transport=tcp
//                          (0 = ephemeral)
//   runtime_minutes=<int>  trace prefix the runtime pass replays
//                          (default 20)
//   runtime_trace=<prefix> write the runtime pass's per-process trace
//                          files <prefix>.scheduler.json (decision +
//                          rpc.call spans) and <prefix>.hub.json
//                          (rpc.handle spans) — fuse with
//                          `trace_tool merge out.json <both files>`
//
// Example:
//   spot_sim_cli model=GPT-3 trace=LA-SP system=varuna
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/slo.h"
#include "rpc/obs_service.h"
#include "rpc/rpc.h"
#include "baselines/bamboo_policy.h"
#include "common/fault.h"
#include "baselines/checkfreq_policy.h"
#include "baselines/elastic_dp_policy.h"
#include "baselines/hybrid_policy.h"
#include "baselines/ondemand_policy.h"
#include "baselines/oobleck_policy.h"
#include "baselines/varuna_policy.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "nn/dataset.h"
#include "obs/profile_span.h"
#include "obs/timeseries.h"
#include "runtime/parcae_policy.h"
#include "runtime/spot_driver.h"
#include "trace/trace_io.h"

using namespace parcae;

namespace {

void print_usage() {
  std::printf(
      "spot_sim_cli [key=value ...]\n"
      "\n"
      "Run any system on any model and trace with tunable policy\n"
      "options (DESIGN.md has the per-experiment index).\n"
      "\n"
      "keys:\n"
      "  model=GPT-2|GPT-3|BERT-Large|ResNet-152|VGG-19\n"
      "  trace=HA-DP|HA-SP|LA-DP|LA-SP|full-day|<file.csv>\n"
      "  system=parcae|ideal|reactive|varuna|bamboo|oobleck|checkfreq|\n"
      "         hybrid|elastic|ondemand\n"
      "  lookahead=<int>        history=<int>      reoptimize=<int>\n"
      "  mc_trials=<int>        hysteresis=<float> seed=<int>\n"
      "  mode=tick|event        scheduler re-optimization trigger:\n"
      "                         tick (default) re-solves every\n"
      "                         reoptimize= intervals; event re-solves\n"
      "                         only on preemption notices / lease\n"
      "                         expiries / allocations (warm-started\n"
      "                         incremental DP, docs/performance.md)\n"
      "  debounce_ms=<float>    event coalescing window for mode=event\n"
      "                         (default 250)\n"
      "  threads=<int>          liveput-DP worker threads (0 = auto:\n"
      "                         PARCAE_THREADS env var, else hardware\n"
      "                         concurrency; default 1 = serial;\n"
      "                         bit-identical at any count)\n"
      "  timeline=0|1           print the per-interval event timeline\n"
      "  metrics=0|1            print the metrics-registry snapshot\n"
      "  faults=<spec>          fault-injection spec (docs/robustness.md),\n"
      "                         e.g. faults=sim.unpredicted_preempt:prob=0.1\n"
      "                         (the PARCAE_FAULTS env var is the fallback)\n"
      "  faults_seed=<int>      injector seed (default: seed ^ 0xfa017)\n"
      "  metrics_csv=<file>     per-interval time series as CSV\n"
      "  trace_json=<file>      Chrome trace events (chrome://tracing)\n"
      "  events_jsonl=<file>    scheduler EventLog as JSONL (Parcae modes)\n"
      "  alerts=<spec>          SLO rules evaluated every interval\n"
      "                         (docs/observability.md grammar;\n"
      "                         alerts=default = built-in rule set)\n"
      "  alerts_jsonl=<file>    fired alerts as JSONL\n"
      "  export_port=<int>      serve the live registry as Prometheus\n"
      "                         text over TCP RPC (obs.metrics method,\n"
      "                         0 = ephemeral) for the whole run\n"
      "  transport=inproc|tcp   also run the real runtime on a prefix of\n"
      "                         the trace over this transport (docs/rpc.md)\n"
      "  rpc_port=<int>         TCP listen port for transport=tcp\n"
      "                         (0 = ephemeral)\n"
      "  runtime_minutes=<int>  trace prefix the runtime pass replays\n"
      "                         (default 20)\n"
      "  runtime_trace=<prefix> write the runtime pass's per-process\n"
      "                         trace files (<prefix>.scheduler.json +\n"
      "                         <prefix>.hub.json; trace_tool merge)\n"
      "\n"
      "example:\n"
      "  spot_sim_cli model=GPT-3 trace=LA-SP system=varuna\n");
}

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept GNU-style spellings (--threads=8) for every key.
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg] = "";
      continue;
    }
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (args.count("help") != 0 || args.count("h") != 0) {
    print_usage();
    return 0;
  }

  ModelProfile model;
  try {
    model = model_by_name(get(args, "model", "GPT-2"));
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown model\n");
    return 1;
  }

  const std::string trace_name = get(args, "trace", "HA-DP");
  SpotTrace trace;
  bool found = false;
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == trace_name) {
      trace = t;
      found = true;
    }
  if (!found && trace_name == "full-day") {
    trace = full_day_trace();
    found = true;
  }
  if (!found) {
    std::string error;
    auto loaded = load_trace(trace_name, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot resolve trace '%s': %s\n",
                   trace_name.c_str(), error.c_str());
      return 1;
    }
    trace = *loaded;
  }

  ParcaePolicyOptions popt;
  popt.lookahead = std::stoi(get(args, "lookahead", "12"));
  popt.history = std::stoi(get(args, "history", "12"));
  popt.reoptimize_every = std::stoi(get(args, "reoptimize", "1"));
  popt.mc_trials = std::stoi(get(args, "mc_trials", "256"));
  popt.depth_change_hysteresis = std::stod(get(args, "hysteresis", "0.15"));
  popt.seed = std::stoull(get(args, "seed", "123"));
  const std::string sched_mode = get(args, "mode", "tick");
  if (sched_mode != "tick" && sched_mode != "event") {
    std::fprintf(stderr, "mode=%s: expected tick or event\n",
                 sched_mode.c_str());
    return 1;
  }
  popt.event_driven = sched_mode == "event";
  popt.debounce_ms = std::stod(get(args, "debounce_ms", "250"));
  // threads: explicit value wins (0 = auto-resolve); with no flag the
  // PARCAE_THREADS env var applies, else the serial default of 1.
  const std::string threads_arg = get(args, "threads", "");
  popt.threads = threads_arg.empty() ? ThreadPool::env_threads(1)
                                     : std::stoi(threads_arg);
  const int threads_shown =
      popt.threads == 1 ? 1 : ThreadPool::resolve(popt.threads);

  const std::string system = get(args, "system", "parcae");
  std::unique_ptr<SpotTrainingPolicy> policy;
  SimulationOptions sim;
  sim.units_per_sample = model.tokens_per_sample;
  sim.record_timeline = get(args, "timeline", "1") == "1";

  // Observability sinks shared by the policy's SchedulerCore and the
  // simulator so snapshots and spans land in one place.
  obs::MetricsRegistry registry;
  obs::TraceWriter tracer;
  obs::TimeSeriesRecorder series;
  const std::string metrics_csv = get(args, "metrics_csv", "");
  const std::string trace_json = get(args, "trace_json", "");
  const std::string events_jsonl = get(args, "events_jsonl", "");
  sim.metrics = &registry;
  if (!trace_json.empty()) sim.tracer = &tracer;
  if (!metrics_csv.empty()) sim.timeseries = &series;
  popt.metrics = &registry;
  popt.tracer = sim.tracer;

  // Fault injection: the faults= key wins, the PARCAE_FAULTS env var
  // is the fallback. An armed injector drives the simulator's
  // sim.unpredicted_preempt point.
  FaultInjector faults(std::stoull(
      get(args, "faults_seed",
          std::to_string(std::stoull(get(args, "seed", "123")) ^ 0xfa017ull))));
  std::string fault_spec = get(args, "faults", "");
  if (fault_spec.empty()) {
    const char* env = std::getenv("PARCAE_FAULTS");
    if (env != nullptr) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    std::string error;
    if (!faults.arm_from_spec(fault_spec, &error)) {
      std::fprintf(stderr, "bad fault spec '%s': %s\n", fault_spec.c_str(),
                   error.c_str());
      return 1;
    }
    sim.faults = &faults;
  }

  // SLO alerting: alerts= arms a rule engine the simulator evaluates
  // at the end of every interval. Rules over series columns need the
  // time-series recorder, so alerting switches it on even without
  // metrics_csv=.
  const std::string alerts_spec = get(args, "alerts", "");
  const std::string alerts_jsonl = get(args, "alerts_jsonl", "");
  std::unique_ptr<SloEngine> slo;
  if (!alerts_spec.empty()) {
    std::string error;
    const std::vector<SloRule> rules =
        alerts_spec == "default" ? SloEngine::default_rules()
                                 : SloEngine::parse_rules(alerts_spec, &error);
    if (rules.empty()) {
      std::fprintf(stderr, "bad alert spec '%s': %s\n", alerts_spec.c_str(),
                   error.c_str());
      return 1;
    }
    slo = std::make_unique<SloEngine>(rules);
    sim.slo = slo.get();
    sim.timeseries = &series;
  }

  // Live export: serve the shared registry over a TCP RPC endpoint for
  // the whole run — a scraper can watch the simulation move.
  const std::string export_port = get(args, "export_port", "");
  std::unique_ptr<rpc::Transport> export_transport;
  std::unique_ptr<rpc::RpcServer> export_server;
  std::unique_ptr<rpc::ObsService> export_service;
  if (!export_port.empty()) {
    export_transport = rpc::make_tcp_transport(std::stoi(export_port));
    export_server = std::make_unique<rpc::RpcServer>(*export_transport);
    export_service = std::make_unique<rpc::ObsService>(registry);
    if (sim.faults != nullptr)
      export_service->set_fault_injector(sim.faults);
    export_service->bind(*export_server);
    export_server->start();
    std::printf("serving metrics on %s (rpc method \"obs.metrics\")\n",
                export_transport->address().c_str());
  }

  const ParcaePolicy* parcae_policy = nullptr;
  if (system == "parcae") {
    policy = std::make_unique<ParcaePolicy>(model, popt);
  } else if (system == "ideal") {
    popt.mode = PredictionMode::kOracle;
    policy = std::make_unique<ParcaePolicy>(model, popt, &trace);
  } else if (system == "reactive") {
    popt.mode = PredictionMode::kReactive;
    policy = std::make_unique<ParcaePolicy>(model, popt);
  } else if (system == "varuna") {
    policy = std::make_unique<VarunaPolicy>(model);
  } else if (system == "bamboo") {
    policy = std::make_unique<BambooPolicy>(model);
  } else if (system == "oobleck") {
    policy = std::make_unique<OobleckPolicy>(model);
  } else if (system == "checkfreq") {
    policy = std::make_unique<CheckFreqPolicy>(model);
  } else if (system == "hybrid") {
    policy = std::make_unique<HybridSpotPolicy>(model);
  } else if (system == "elastic") {
    policy = std::make_unique<ElasticDpPolicy>(model);
  } else if (system == "ondemand") {
    policy = std::make_unique<OnDemandPolicy>(model);
    sim.instances_are_ondemand = true;
    trace = flat_trace(32, trace.duration_s());
  } else {
    std::fprintf(stderr, "unknown system '%s'\n", system.c_str());
    return 1;
  }
  if (system == "parcae" || system == "ideal" || system == "reactive")
    parcae_policy = static_cast<const ParcaePolicy*>(policy.get());

  const SimulationResult r = simulate(*policy, trace, sim);

  std::printf("system:           %s\n", r.policy.c_str());
  std::printf("model:            %s\n", model.name.c_str());
  if (parcae_policy != nullptr) {
    std::printf("decision threads: %d%s\n", threads_shown,
                threads_shown == 1 ? " (serial)" : "");
    if (popt.event_driven)
      std::printf("scheduler mode:   event (debounce_ms=%.0f)\n",
                  popt.debounce_ms);
    else
      std::printf("scheduler mode:   tick (reoptimize every %d)\n",
                  std::max(1, popt.reoptimize_every));
  }
  std::printf("trace:            %s (%.0f min, avg %.2f instances)\n",
              r.trace.c_str(), r.duration_s / 60.0,
              trace.stats().avg_instances);
  std::printf("committed:        %s %ss (%s/s)\n",
              format_si(r.committed_units, 2).c_str(),
              model.sample_unit.c_str(),
              format_si(r.avg_unit_throughput, 2).c_str());
  std::printf("cost:             $%.2f total, %.4f USD per 1M %ss\n",
              r.total_cost_usd, r.cost_per_unit * 1e6,
              model.sample_unit.c_str());
  std::printf(
      "GPU hours:        %.1f effective, %.1f redundant, %.1f handling, "
      "%.1f lost, %.1f unutilized\n",
      r.gpu_hours.effective, r.gpu_hours.redundant, r.gpu_hours.handling,
      r.gpu_hours.lost, r.gpu_hours.unutilized);
  if (faults.armed()) {
    const auto counter = [&r](const std::string& name) {
      const auto it = r.metrics.counters.find(name);
      return it == r.metrics.counters.end() ? 0.0 : it->second;
    };
    std::printf("faults:           %llu injected, %.0f unpredicted preempts\n",
                static_cast<unsigned long long>(faults.total_fired()),
                counter("sim.unpredicted_preempts"));
    std::printf("  armed points:   %s\n", faults.describe().c_str());
  }

  if (sim.record_timeline) {
    std::printf("\ntimeline (intervals with events):\n");
    for (std::size_t i = 0; i < r.timeline.size(); ++i) {
      const auto& rec = r.timeline[i];
      if (rec.note.empty()) continue;
      std::printf("  t=%3zu min  N=%2d  %-6s %s\n", i, rec.available,
                  rec.config.valid() ? rec.config.to_string().c_str() : "-",
                  rec.note.c_str());
    }
  }

  if (get(args, "metrics", "0") == "1") {
    std::printf("\nmetrics:\n%s", r.metrics.render().c_str());
  }
  if (!metrics_csv.empty()) {
    if (series.write_csv(metrics_csv))
      std::printf("wrote %s (%zu intervals)\n", metrics_csv.c_str(),
                  series.rows());
    else
      std::fprintf(stderr, "cannot write %s\n", metrics_csv.c_str());
  }
  if (!trace_json.empty()) {
    if (tracer.write_file(trace_json))
      std::printf("wrote %s (%zu events)\n", trace_json.c_str(),
                  tracer.size());
    else
      std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
  }
  if (!events_jsonl.empty()) {
    if (parcae_policy == nullptr) {
      std::fprintf(stderr,
                   "events_jsonl: system '%s' keeps no EventLog "
                   "(Parcae modes only)\n",
                   system.c_str());
    } else {
      FILE* f = std::fopen(events_jsonl.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", events_jsonl.c_str());
      } else {
        const std::string jsonl = parcae_policy->telemetry().to_jsonl();
        std::fwrite(jsonl.data(), 1, jsonl.size(), f);
        std::fclose(f);
        std::printf("wrote %s (%zu events)\n", events_jsonl.c_str(),
                    parcae_policy->telemetry().size());
      }
    }
  }

  if (slo != nullptr) {
    const std::string table = slo->render();
    if (table.empty())
      std::printf("\nalerts: none fired (%zu rules armed)\n",
                  slo->rules().size());
    else
      std::printf("\nalerts (%zu fired):\n%s", slo->alerts().size(),
                  table.c_str());
    if (!alerts_jsonl.empty()) {
      if (slo->write_jsonl(alerts_jsonl))
        std::printf("wrote %s (%zu alerts)\n", alerts_jsonl.c_str(),
                    slo->alerts().size());
      else
        std::fprintf(stderr, "cannot write %s\n", alerts_jsonl.c_str());
    }
  }

  if (export_server != nullptr) {
    // Prove the endpoint works end to end: scrape our own exporter
    // over the wire before shutting it down.
    try {
      rpc::RpcClient scraper(*export_transport,
                             export_transport->address());
      const std::string prom = rpc::ObsClient(scraper).scrape();
      std::printf("exporter self-scrape: %zu bytes of Prometheus text\n",
                  prom.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "exporter self-scrape failed: %s\n", e.what());
    }
  }

  // transport= asks for a real-runtime pass on top of the simulation:
  // replay a prefix of the same trace through the laptop-scale
  // SpotTrainingDriver with agents reaching the KV/PS hub over the
  // chosen transport. The faults= spec (if any) applies here too, so
  // `transport=tcp faults=rpc.drop:prob=0.05` is a chaos smoke.
  const std::string transport = get(args, "transport", "");
  if (!transport.empty()) {
    const double minutes = std::stod(get(args, "runtime_minutes", "20"));
    const SpotTrace prefix =
        trace.slice(0.0, minutes * 60.0, trace.name() + "-prefix");
    const auto dataset = nn::make_blobs(256, 16, 5, 0.5, 20240101);

    TrainingClusterOptions copt;
    copt.layer_sizes = {16, 48, 32, 5};
    copt.epoch_size = dataset.size();
    copt.batch_size = 64;
    copt.initial_instances = 0;  // the trace grants them
    copt.transport = transport;
    copt.rpc_port = std::stoi(get(args, "rpc_port", "0"));

    SpotDriverOptions dopt;
    dopt.iterations_per_interval = 6;
    dopt.scheduler.event_driven = popt.event_driven;
    dopt.scheduler.debounce_ms = popt.debounce_ms;
    if (faults.armed()) dopt.faults = &faults;
    // runtime_trace= attaches one writer per "process": scheduler
    // (decision spans + client-side rpc.call spans) and hub (server-
    // side rpc.handle spans). trace_tool merge fuses the two files
    // into a single timeline with cross-process flow arrows.
    const std::string runtime_trace = get(args, "runtime_trace", "");
    obs::TraceWriter scheduler_tracer;
    obs::TraceWriter hub_tracer;
    if (!runtime_trace.empty()) {
      dopt.scheduler.tracer = &scheduler_tracer;
      dopt.hub_tracer = &hub_tracer;
    }
    SpotTrainingDriver driver(copt, &dataset, dopt);
    std::printf("\nruntime pass (%s transport",
                driver.cluster().rpc_transport().kind());
    if (transport == "tcp")
      std::printf(" on %s", driver.cluster().rpc_address().c_str());
    std::printf(", %.0f min prefix):\n", minutes);
    const SpotDriverReport report = driver.run(prefix);
    std::printf(
        "  %d intervals, %lld iterations, final loss %.4f, "
        "%lld PS rollbacks, consistency %s\n",
        report.intervals, report.iterations,
        static_cast<double>(report.final_loss), report.ps_rollbacks,
        report.replicas_always_consistent ? "held" : "VIOLATED");
    const auto rpc_counter = [&report](const std::string& name) {
      const auto it = report.metrics.counters.find(name);
      return it == report.metrics.counters.end() ? 0.0 : it->second;
    };
    std::printf(
        "  rpc: %.0f requests (%.0f retries, %.0f timeouts), "
        "%.0f/%.0f frames sent/received, %.0f dropped\n",
        rpc_counter("rpc.requests"), rpc_counter("rpc.client.retries"),
        rpc_counter("rpc.timeouts"), rpc_counter("rpc.frames_sent"),
        rpc_counter("rpc.frames_received"), rpc_counter("rpc.dropped"));
    if (!runtime_trace.empty()) {
      const std::string scheduler_path = runtime_trace + ".scheduler.json";
      const std::string hub_path = runtime_trace + ".hub.json";
      bool wrote = scheduler_tracer.write_file(scheduler_path);
      wrote = hub_tracer.write_file(hub_path) && wrote;
      if (wrote)
        std::printf(
            "  wrote %s (%zu events) + %s (%zu events); fuse with\n"
            "    trace_tool merge merged.json %s %s\n",
            scheduler_path.c_str(), scheduler_tracer.size(),
            hub_path.c_str(), hub_tracer.size(), scheduler_path.c_str(),
            hub_path.c_str());
      else
        std::fprintf(stderr, "cannot write %s / %s\n",
                     scheduler_path.c_str(), hub_path.c_str());
    }
  }
  return 0;
}
