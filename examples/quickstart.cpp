// Quickstart: train GPT-2 on a replayed spot-instance trace with
// Parcae and the baseline systems, and print what each achieved.
//
// This exercises the whole public API surface: trace segments, the
// throughput/memory models, the ARIMA availability predictor, the
// liveput optimizer, live migration, and the cluster simulator.
#include <cstdio>

#include "baselines/bamboo_policy.h"
#include "baselines/ondemand_policy.h"
#include "baselines/varuna_policy.h"
#include "common/table.h"
#include "model/model_profile.h"
#include "runtime/cluster_sim.h"
#include "runtime/parcae_policy.h"
#include "trace/spot_trace.h"

using namespace parcae;

int main() {
  const ModelProfile model = gpt2_profile();
  const SpotTrace trace = canonical_segment(TraceSegment::kHighAvailDense);
  const TraceStats stats = trace.stats();

  std::printf("Parcae quickstart: %s on trace %s\n", model.name.c_str(),
              trace.name().c_str());
  std::printf(
      "trace: %.0f min, avg %.2f instances, %d preemptions, %d allocations\n\n",
      stats.duration_s / 60.0, stats.avg_instances, stats.preempted_instances,
      stats.allocated_instances);

  SimulationOptions options;
  options.units_per_sample = model.tokens_per_sample;

  TextTable table({"system", "tokens committed", "tokens/s", "GPU-h eff.",
                   "GPU-h wasted", "USD", "USD/1M tokens"});
  auto report = [&](const SimulationResult& r) {
    const double wasted = r.gpu_hours.total() - r.gpu_hours.effective;
    table.row()
        .add(r.policy)
        .add(format_si(r.committed_units, 1))
        .add(format_si(r.avg_unit_throughput, 1))
        .add(r.gpu_hours.effective, 1)
        .add(wasted, 1)
        .add(r.total_cost_usd, 2)
        .add(r.cost_per_unit * 1e6, 2);
  };

  {
    ParcaePolicy parcae(model, {});
    report(simulate(parcae, trace, options));
  }
  {
    ParcaePolicyOptions ideal;
    ideal.mode = PredictionMode::kOracle;
    ParcaePolicy policy(model, ideal, &trace);
    report(simulate(policy, trace, options));
  }
  {
    ParcaePolicyOptions reactive;
    reactive.mode = PredictionMode::kReactive;
    ParcaePolicy policy(model, reactive);
    report(simulate(policy, trace, options));
  }
  {
    VarunaPolicy varuna(model);
    report(simulate(varuna, trace, options));
  }
  {
    BambooPolicy bamboo(model);
    report(simulate(bamboo, trace, options));
  }
  {
    OnDemandPolicy ondemand(model);
    SimulationOptions od = options;
    od.instances_are_ondemand = true;
    report(simulate(ondemand, flat_trace(32, trace.duration_s()), od));
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Parcae should lead on tokens committed and cost per token;\n"
      "on-demand has the best raw throughput but the worst economics.\n");
  return 0;
}
