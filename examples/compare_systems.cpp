// Compare all spot-training systems on a chosen model and trace.
//
//   ./compare_systems [model] [trace]
//     model: ResNet-152 | VGG-19 | BERT-Large | GPT-2 | GPT-3
//     trace: HA-DP | HA-SP | LA-DP | LA-SP
//
// Prints the end-to-end summary plus a per-interval timeline of what
// Parcae decided (configuration, migrations, throughput).
#include <cmath>
#include <cstdio>
#include <cstring>

#include "baselines/bamboo_policy.h"
#include "baselines/elastic_dp_policy.h"
#include "baselines/ondemand_policy.h"
#include "baselines/varuna_policy.h"
#include "common/table.h"
#include "model/model_profile.h"
#include "runtime/cluster_sim.h"
#include "runtime/parcae_policy.h"
#include "trace/spot_trace.h"

using namespace parcae;

namespace {

SpotTrace trace_by_name(const std::string& name) {
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == name) return t;
  std::fprintf(stderr, "unknown trace '%s', using LA-DP\n", name.c_str());
  return canonical_segment(TraceSegment::kLowAvailDense);
}

}  // namespace

int main(int argc, char** argv) {
  ModelProfile model = gpt2_profile();
  if (argc > 1) {
    try {
      model = model_by_name(argv[1]);
    } catch (const std::out_of_range&) {
      std::fprintf(stderr, "unknown model '%s', using GPT-2\n", argv[1]);
    }
  }
  const SpotTrace trace =
      trace_by_name(argc > 2 ? argv[2] : "LA-DP");

  std::printf("comparing systems: %s on %s (avg %.2f instances)\n\n",
              model.name.c_str(), trace.name().c_str(),
              trace.stats().avg_instances);

  SimulationOptions sim;
  sim.units_per_sample = model.tokens_per_sample;

  TextTable table({"system", model.sample_unit + "s committed",
                   model.sample_unit + "/s", "USD", "USD per 1M " +
                   model.sample_unit + "s", "GPU-h effective %"});
  SimulationResult parcae_result;
  auto report = [&](const SimulationResult& r) {
    table.row()
        .add(r.policy)
        .add(format_si(r.committed_units, 1))
        .add(format_si(r.avg_unit_throughput, 1))
        .add(r.total_cost_usd, 2)
        .add(std::isfinite(r.cost_per_unit) ? format_double(
                 r.cost_per_unit * 1e6, 3)
                                            : "-")
        .add(100.0 * r.gpu_hours.effective / r.gpu_hours.total(), 0);
  };

  {
    ParcaePolicy policy(model, {});
    parcae_result = simulate(policy, trace, sim);
    report(parcae_result);
  }
  {
    ParcaePolicyOptions o;
    o.mode = PredictionMode::kOracle;
    ParcaePolicy policy(model, o, &trace);
    report(simulate(policy, trace, sim));
  }
  {
    ParcaePolicyOptions o;
    o.mode = PredictionMode::kReactive;
    ParcaePolicy policy(model, o);
    report(simulate(policy, trace, sim));
  }
  {
    VarunaPolicy policy(model);
    report(simulate(policy, trace, sim));
  }
  {
    BambooPolicy policy(model);
    report(simulate(policy, trace, sim));
  }
  {
    ElasticDpPolicy policy(model);
    report(simulate(policy, trace, sim));
  }
  {
    OnDemandPolicy policy(model);
    SimulationOptions od = sim;
    od.instances_are_ondemand = true;
    report(simulate(policy, flat_trace(32, trace.duration_s()), od));
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Parcae timeline (interval: availability, config, events):\n");
  for (std::size_t i = 0; i < parcae_result.timeline.size(); ++i) {
    const auto& rec = parcae_result.timeline[i];
    if (rec.note.empty() && i % 10 != 0) continue;  // only changes + ticks
    std::printf("  t=%2zu min  N=%2d  %-6s %s\n", i, rec.available,
                rec.config.to_string().c_str(), rec.note.c_str());
  }
  return 0;
}
