// End-to-end multi-process chaos run: real scheduler, standby, and
// agent processes under SIGKILL fault injection (docs/robustness.md).
//
//   multiproc_e2e [key=value ...]
//
//   agents=<int>          agent child processes (default 4)
//   intervals=<int>       decision intervals (default 24)
//   tick_ms=<int>         scheduler wall pacing (default 120)
//   interval_s=<float>    logical seconds per interval (default 60)
//   ttl=<float>           agent lease TTL, logical seconds (150)
//   standby=<0|1>         also run a standby scheduler (default 1)
//   kill_agent_at=<float>   SIGKILL a (seeded) random agent this many
//                           wall seconds in (<0 = never; default 1.0)
//   kill_primary_at=<float> SIGKILL the primary this many wall
//                           seconds in (<0 = never; default 2.0)
//   port=<int>            hub TCP port (default seeded in 21000..22999)
//   seed=<int>            victim pick + port seed (default 7)
//   dir=<path>            where the wal/report files go (default ".")
//   max_wall_s=<float>    harness timeout (default 90)
//   agent_bin= scheduler_bin=  binary paths; default next to this
//                           executable (../tools/...), overridable via
//                           PARCAE_AGENT_BIN / PARCAE_SCHEDULER_BIN
//
// The run is judged by the surviving scheduler's report:
//   - the run completed (all intervals decided),
//   - if the primary was killed, the standby took over and resumed
//     from the shared WAL,
//   - the synthetic loss converged — a takeover that loses training
//     intervals or a recovery that diverges shows up here.
// Greppable verdict lines (CI asserts on them):
//   standby takeover: yes|no
//   run completed: yes|no
//   final loss: <x> (converged: yes|no)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/process_supervisor.h"

using namespace parcae;

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Binary discovery: explicit flag > environment > sibling of this
// executable (build/examples/multiproc_e2e -> build/tools/<name>).
std::string find_binary(const std::map<std::string, std::string>& args,
                        const std::string& flag, const char* env,
                        const std::string& argv0, const std::string& name) {
  if (const std::string v = get(args, flag, ""); !v.empty()) return v;
  if (const char* e = std::getenv(env); e != nullptr && *e != '\0') return e;
  std::string dir = ".";
  if (const auto slash = argv0.find_last_of('/'); slash != std::string::npos)
    dir = argv0.substr(0, slash);
  return dir + "/../tools/" + name;
}

// Pulls "key: value" out of a scheduler run report.
std::string report_field(const std::string& text, const std::string& key) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(key + ":", 0) == 0)
      return line.substr(key.size() + 2);
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  const int agents = std::stoi(get(args, "agents", "4"));
  const int intervals = std::stoi(get(args, "intervals", "24"));
  const int tick_ms = std::stoi(get(args, "tick_ms", "120"));
  const std::string interval_s = get(args, "interval_s", "60");
  const std::string ttl = get(args, "ttl", "150");
  const bool standby = get(args, "standby", "1") != "0";
  const double kill_agent_at = std::stod(get(args, "kill_agent_at", "1.0"));
  const double kill_primary_at =
      std::stod(get(args, "kill_primary_at", "2.0"));
  const std::uint64_t seed = std::stoull(get(args, "seed", "7"));
  const double max_wall_s = std::stod(get(args, "max_wall_s", "90"));
  const std::string dir = get(args, "dir", ".");

  Rng rng(seed ^ 0xe2e);
  const int port =
      args.count("port") != 0U
          ? std::stoi(args.at("port"))
          : 21000 + static_cast<int>(rng.uniform_int(2000));

  const std::string agent_bin =
      find_binary(args, "agent_bin", "PARCAE_AGENT_BIN", argv[0],
                  "parcae_agent");
  const std::string scheduler_bin =
      find_binary(args, "scheduler_bin", "PARCAE_SCHEDULER_BIN", argv[0],
                  "parcae_scheduler");

  const std::string wal = dir + "/multiproc_e2e.wal";
  const std::string primary_report = dir + "/multiproc_e2e.primary.report";
  const std::string standby_report = dir + "/multiproc_e2e.standby.report";
  std::remove(wal.c_str());
  std::remove(primary_report.c_str());
  std::remove(standby_report.c_str());

  // Agents must outlive the run plus a takeover gap.
  const double agent_wall_s = max_wall_s;

  ProcessSupervisor supervisor;
  std::vector<pid_t> agent_pids;
  for (int i = 0; i < agents; ++i) {
    SpawnSpec spec;
    spec.name = "agent-" + std::to_string(i);
    spec.binary = agent_bin;
    spec.args = {"port=" + std::to_string(port),
                 "id=a" + std::to_string(i), "ttl=" + ttl,
                 "max_wall_s=" + std::to_string(agent_wall_s)};
    agent_pids.push_back(supervisor.spawn(spec));
  }

  const auto scheduler_args = [&](const std::string& role,
                                  const std::string& report) {
    return std::vector<std::string>{
        "role=" + role,
        "wal=" + wal,
        "port=" + std::to_string(port),
        "intervals=" + std::to_string(intervals),
        "tick_ms=" + std::to_string(tick_ms),
        "interval_s=" + interval_s,
        "agents=" + std::to_string(agents),
        "name=" + role,
        "report=" + report};
  };
  SpawnSpec prim;
  prim.name = "primary";
  prim.binary = scheduler_bin;
  prim.args = scheduler_args("primary", primary_report);
  const pid_t primary = supervisor.spawn(prim);

  pid_t standby_pid = -1;
  if (standby) {
    SpawnSpec stby;
    stby.name = "standby";
    stby.binary = scheduler_bin;
    stby.args = scheduler_args("standby", standby_report);
    standby_pid = supervisor.spawn(stby);
  }

  // Chaos + completion loop, all on the wall clock.
  const double t0 = wall_s();
  bool agent_killed = kill_agent_at < 0.0 || agents == 0;
  bool primary_killed = kill_primary_at < 0.0 || !standby;
  bool completed = false;
  bool timed_out = false;
  while (true) {
    const double elapsed = wall_s() - t0;
    if (elapsed > max_wall_s) {
      timed_out = true;
      break;
    }
    if (!agent_killed && elapsed >= kill_agent_at) {
      const pid_t victim = agent_pids[rng.uniform_int(
          static_cast<std::uint64_t>(agent_pids.size()))];
      std::printf("[%.2fs] SIGKILL %s (pid %d)\n", elapsed,
                  supervisor.name_of(victim).c_str(), victim);
      supervisor.sigkill(victim);
      agent_killed = true;
    }
    if (!primary_killed && elapsed >= kill_primary_at) {
      std::printf("[%.2fs] SIGKILL primary (pid %d)\n", elapsed, primary);
      supervisor.sigkill(primary);
      primary_killed = true;
    }
    // The run is over when whichever scheduler still owns it exits.
    if (!supervisor.alive(primary) &&
        (standby_pid < 0 || !supervisor.alive(standby_pid))) {
      const auto prc = supervisor.exit_status(primary);
      const auto src = standby_pid < 0
                           ? std::optional<ExitStatus>{}
                           : supervisor.exit_status(standby_pid);
      const bool primary_ok = prc.has_value() && !prc->signaled &&
                              prc->exit_code == 0;
      const bool standby_ok = src.has_value() && !src->signaled &&
                              src->exit_code == 0;
      completed = primary_ok || standby_ok;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  supervisor.shutdown_all(0.5);

  // Judge from the surviving scheduler's report.
  const std::string report_path =
      primary_killed && standby ? standby_report : primary_report;
  std::string report;
  {
    std::ifstream in(report_path);
    std::stringstream buf;
    buf << in.rdbuf();
    report = buf.str();
  }
  const bool took_over = report_field(report, "standby takeover") == "yes";
  const bool converged = report_field(report, "converged") == "yes";
  const std::string loss = report_field(report, "final loss");
  const std::string truncated =
      report_field(report, "wal truncated records");

  if (timed_out) std::printf("TIMED OUT after %.0fs\n", max_wall_s);
  std::printf("report: %s\n", report_path.c_str());
  std::printf("standby takeover: %s\n", took_over ? "yes" : "no");
  std::printf("run completed: %s\n", completed && !report.empty() ? "yes"
                                                                  : "no");
  std::printf("final loss: %s (converged: %s)\n",
              loss.empty() ? "?" : loss.c_str(), converged ? "yes" : "no");
  std::printf("wal truncated records: %s\n",
              truncated.empty() ? "0" : truncated.c_str());

  bool ok = completed && !report.empty() && converged && !timed_out;
  // A primary kill with a standby watching must produce a takeover.
  if (primary_killed && standby && kill_primary_at >= 0.0 && !took_over)
    ok = false;
  return ok ? 0 : 1;
}
