// Visualize pipeline schedules: ASCII Gantt charts of 1F1B vs GPipe
// for a chosen shape, plus the bubble math that drives the Figure-3
// robustness/efficiency trade-off.
//
//   pipeline_viz [stages] [microbatches]
#include <cstdio>
#include <cstdlib>

#include "parallel/pipeline_schedule.h"

using namespace parcae;

int main(int argc, char** argv) {
  ScheduleParams params;
  params.stages = argc > 1 ? std::atoi(argv[1]) : 4;
  params.microbatches = argc > 2 ? std::atoi(argv[2]) : 8;
  params.fwd_time_s = 1.0;
  params.bwd_time_s = 2.0;
  params.p2p_time_s = 0.05;

  std::printf("pipeline: %d stages, %d micro-batches (fwd 1.0, bwd 2.0)\n\n",
              params.stages, params.microbatches);

  const ScheduleResult one_f1b = simulate_1f1b(params);
  std::printf("1F1B  (makespan %.1f, bubble %.0f%%, peak in-flight %d):\n%s\n",
              one_f1b.makespan_s, 100.0 * one_f1b.bubble_fraction,
              one_f1b.peak_in_flight,
              render_schedule(one_f1b, params.stages).c_str());

  const ScheduleResult gpipe = simulate_gpipe(params);
  std::printf("GPipe (makespan %.1f, bubble %.0f%%, peak in-flight %d):\n%s\n",
              gpipe.makespan_s, 100.0 * gpipe.bubble_fraction,
              gpipe.peak_in_flight,
              render_schedule(gpipe, params.stages).c_str());

  std::printf(
      "digits: forward micro-batches, letters: backwards, dots: bubble.\n"
      "Same makespan, but 1F1B holds at most P micro-batches in flight —\n"
      "the memory headroom Parcae's feasibility model depends on.\n");

  std::printf("\nbubble fraction vs depth (m=%d):\n", params.microbatches);
  for (int p : {1, 2, 4, 8, 16}) {
    ScheduleParams sweep = params;
    sweep.stages = p;
    const ScheduleResult r = simulate_1f1b(sweep);
    std::printf("  P=%2d  bubble %4.0f%%  makespan %.1f\n", p,
                100.0 * r.bubble_fraction, r.makespan_s);
  }
  std::printf(
      "deeper pipelines idle more and lose a whole pipeline per "
      "preemption — the trade-off liveput quantifies.\n");
  return 0;
}
