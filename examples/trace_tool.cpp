// Command-line trace utility.
//
//   trace_tool stats  <file.csv | HA-DP|HA-SP|LA-DP|LA-SP|full-day>
//   trace_tool export <segment> <file.csv>
//   trace_tool gen    synthetic <events> <avg> <file.csv> [seed]
//   trace_tool gen    market <bid> <file.csv> [seed]
//   trace_tool plot   <file.csv | segment>
//   trace_tool events <file.csv | segment> <out.jsonl>
//   trace_tool merge  <out.trace.json> <in.trace.json>...
//   trace_tool wal    <file.wal>
//   trace_tool requests <file.jsonl>
//
// `plot` prints a terminal sparkline of the availability series.
// `wal` dumps and validates a scheduler write-ahead log
// (src/runtime/wal.h): one line per record, then a summary with the
// torn-tail truncation count — the offline half of the crash-recovery
// story in docs/robustness.md.
// `events` replays the trace through the Parcae scheduler and writes
// its structured EventLog (preemptions, decisions, migrations) as
// JSONL, one event per line.
// `merge` fuses per-process Chrome trace files (the scheduler side and
// the hub side of a run) into one Perfetto timeline with cross-process
// flow arrows recovered from the distributed-trace ids (see
// docs/observability.md).
// `requests` summarizes a per-request latency JSONL written by
// `serve_sim_cli requests_jsonl=` (docs/serving.md): request count,
// latency percentiles, SLO violations, and drops.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace_merge.h"
#include "runtime/parcae_policy.h"
#include "runtime/wal.h"
#include "trace/spot_market.h"
#include "trace/spot_trace.h"
#include "trace/trace_analysis.h"
#include "trace/trace_io.h"

using namespace parcae;

namespace {

std::optional<SpotTrace> resolve(const std::string& what) {
  for (const SpotTrace& t : all_canonical_segments())
    if (t.name() == what) return t;
  if (what == "full-day") return full_day_trace();
  std::string error;
  auto trace = load_trace(what, &error);
  if (!trace) std::fprintf(stderr, "cannot load '%s': %s\n", what.c_str(),
                           error.c_str());
  return trace;
}

void print_stats(const SpotTrace& trace) {
  const TraceStats s = trace.stats();
  std::printf("name:                %s\n", trace.name().c_str());
  std::printf("duration:            %.1f min\n", s.duration_s / 60.0);
  std::printf("capacity:            %d\n", trace.capacity());
  std::printf("avg instances:       %.2f\n", s.avg_instances);
  std::printf("min/max instances:   %d / %d\n", s.min_instances,
              s.max_instances);
  std::printf("preemption events:   %d (%d instances)\n", s.preemption_events,
              s.preempted_instances);
  std::printf("allocation events:   %d (%d instances)\n", s.allocation_events,
              s.allocated_instances);
  const TraceAnalysis a = analyze_trace(trace);
  const TraceRegime regime = classify_trace(trace);
  std::printf("regime:              %s availability, %s preemptions\n",
              regime.high_availability ? "High" : "Low",
              regime.dense_preemptions ? "Dense" : "Sparse");
  std::printf("stability:           %.0f%% stable intervals, longest run %d\n",
              100.0 * a.stable_interval_fraction, a.longest_stable_run);
  std::printf("autocorr (lag 1):    %.2f\n", a.availability_autocorr_lag1);
  if (a.preemption_interarrival_mean_s > 0.0)
    std::printf("preempt interarrival: %.0f s mean (CV %.2f)\n",
                a.preemption_interarrival_mean_s,
                a.preemption_interarrival_cv);
  std::printf("preempted inst/hour: %.1f\n", a.preempted_instances_per_hour);
}

void plot(const SpotTrace& trace) {
  static const char* kBars[] = {" ", "_", ".", "-", "=", "+", "*", "#"};
  const auto series = trace.availability_series();
  const int cap = trace.capacity();
  std::printf("availability (%d..%d over %zu min, capacity %d):\n",
              trace.stats().min_instances, trace.stats().max_instances,
              series.size(), cap);
  for (int n : series) {
    const int level = cap > 0 ? n * 7 / cap : 0;
    std::printf("%s", kBars[level < 0 ? 0 : (level > 7 ? 7 : level)]);
  }
  std::printf("\n");
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool stats  <file|segment>\n"
               "  trace_tool export <segment> <file.csv>\n"
               "  trace_tool gen synthetic <events> <avg> <file.csv> [seed]\n"
               "  trace_tool gen market <bid> <file.csv> [seed]\n"
               "  trace_tool plot <file|segment>\n"
               "  trace_tool events <file|segment> <out.jsonl>\n"
               "  trace_tool merge <out.trace.json> <in.trace.json>...\n"
               "  trace_tool wal <file.wal>\n"
               "  trace_tool requests <file.jsonl>\n");
  return 2;
}

int dump_wal(const char* path) {
  const WalReadResult result = read_wal(path);
  if (!result.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path, result.error.c_str());
    return 1;
  }
  if (result.missing_header && result.truncated_records > 0) {
    std::fprintf(stderr, "%s: not a WAL file (bad header)\n", path);
    return 1;
  }
  std::size_t seq = 0;
  for (const WalRecord& r : result.records) {
    std::printf("%6zu %-15s", seq++, wal_record_type_name(r.type));
    switch (r.type) {
      case WalRecordType::kPut:
        std::printf(" key=%s value=%zuB", r.key.c_str(), r.value.size());
        break;
      case WalRecordType::kPutWithLease:
        std::printf(" key=%s value=%zuB lease=%llu", r.key.c_str(),
                    r.value.size(),
                    static_cast<unsigned long long>(r.lease_id));
        break;
      case WalRecordType::kCas:
        std::printf(" key=%s expected=%llu value=%zuB", r.key.c_str(),
                    static_cast<unsigned long long>(r.expected_version),
                    r.value.size());
        break;
      case WalRecordType::kErase:
        std::printf(" key=%s", r.key.c_str());
        break;
      case WalRecordType::kLeaseGrant:
        std::printf(" ttl=%.3fs", r.ttl_s);
        break;
      case WalRecordType::kLeaseKeepalive:
      case WalRecordType::kLeaseRevoke:
        std::printf(" lease=%llu",
                    static_cast<unsigned long long>(r.lease_id));
        break;
      case WalRecordType::kAdvanceClock:
        std::printf(" dt=%.3fs", r.dt_s);
        break;
      case WalRecordType::kDecision:
        std::printf(
            " interval=%d available=%d preempted=%d allocated=%d "
            "advised=%dx%d stall=%.3fs agents=%zu",
            r.interval, r.available, r.preempted, r.allocated, r.advised_dp,
            r.advised_pp, r.stall_s, r.agents.size());
        break;
    }
    std::printf("\n");
  }
  std::printf("%zu records, %llu valid bytes", result.records.size(),
              static_cast<unsigned long long>(result.valid_bytes));
  if (result.truncated_records > 0)
    std::printf(", TORN TAIL: %llu bytes dropped",
                static_cast<unsigned long long>(result.truncated_bytes));
  std::printf("\n");
  return result.truncated_records > 0 ? 3 : 0;
}

int merge_trace_files(int argc, char** argv) {
  // argv[2] = output, argv[3..] = per-process inputs. The process name
  // on the merged timeline is the input filename (basename).
  std::vector<obs::TraceMergeInput> inputs;
  for (int i = 3; i < argc; ++i) {
    FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    obs::TraceMergeInput in;
    in.label = argv[i];
    if (const auto slash = in.label.find_last_of('/');
        slash != std::string::npos)
      in.label = in.label.substr(slash + 1);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
      in.json.append(buf, n);
    std::fclose(f);
    inputs.push_back(std::move(in));
  }
  std::string error;
  obs::TraceMergeStats stats;
  const std::string merged = obs::merge_traces(inputs, &error, &stats);
  if (merged.empty()) {
    std::fprintf(stderr, "merge failed: %s\n", error.c_str());
    return 1;
  }
  FILE* out = std::fopen(argv[2], "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", argv[2]);
    return 1;
  }
  std::fwrite(merged.data(), 1, merged.size(), out);
  std::fclose(out);
  std::printf(
      "wrote %s (%zu processes, %zu events, %zu traces, "
      "%zu cross-process flow arrows)\n",
      argv[2], inputs.size(), stats.events, stats.traces, stats.flow_arrows);
  return 0;
}

int dump_events(const SpotTrace& trace, const char* path) {
  ParcaePolicy policy(model_by_name("GPT-2"), ParcaePolicyOptions{});
  SimulationOptions sim;
  sim.record_timeline = false;
  simulate(policy, trace, sim);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  const std::string jsonl = policy.telemetry().to_jsonl();
  std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu events, %zu dropped)\n", path,
              policy.telemetry().size(), policy.telemetry().dropped());
  return 0;
}

int summarize_requests(const char* path) {
  // The serving simulator writes one line per completion
  // {"t":..,"latency_ms":..,"ok":0|1} or drop {"t":..,"dropped":1}.
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  std::vector<double> latencies_ms;
  std::uint64_t completed = 0, ok = 0, dropped = 0, unparsed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.find("\"dropped\":1") != std::string::npos) {
      ++dropped;
      continue;
    }
    const auto lat = line.find("\"latency_ms\":");
    if (lat == std::string::npos) {
      ++unparsed;
      continue;
    }
    latencies_ms.push_back(
        std::strtod(line.c_str() + lat + std::strlen("\"latency_ms\":"),
                    nullptr));
    ++completed;
    if (line.find("\"ok\":1") != std::string::npos) ++ok;
  }
  const auto pct = [&latencies_ms](double q) {
    if (latencies_ms.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(latencies_ms.size()) - 1.0,
        q * static_cast<double>(latencies_ms.size())));
    std::nth_element(latencies_ms.begin(),
                     latencies_ms.begin() + static_cast<std::ptrdiff_t>(rank),
                     latencies_ms.end());
    return latencies_ms[rank];
  };
  const std::uint64_t late = completed - ok;
  std::printf("requests:        %llu (%llu completed, %llu dropped)\n",
              static_cast<unsigned long long>(completed + dropped),
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(dropped));
  std::printf("within SLO:      %llu (%.2f%% of arrivals)\n",
              static_cast<unsigned long long>(ok),
              completed + dropped > 0
                  ? 100.0 * static_cast<double>(ok) /
                        static_cast<double>(completed + dropped)
                  : 0.0);
  std::printf("SLO violations:  %llu (%llu late + %llu dropped)\n",
              static_cast<unsigned long long>(late + dropped),
              static_cast<unsigned long long>(late),
              static_cast<unsigned long long>(dropped));
  std::printf("latency:         p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
              pct(0.50), pct(0.95), pct(0.99));
  if (unparsed > 0)
    std::printf("unparsed lines:  %llu\n",
                static_cast<unsigned long long>(unparsed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];

  if (command == "stats" || command == "plot") {
    const auto trace = resolve(argv[2]);
    if (!trace) return 1;
    if (command == "stats")
      print_stats(*trace);
    else
      plot(*trace);
    return 0;
  }
  if (command == "merge") {
    if (argc < 4) return usage();
    return merge_trace_files(argc, argv);
  }
  if (command == "wal") {
    return dump_wal(argv[2]);
  }
  if (command == "requests") {
    return summarize_requests(argv[2]);
  }
  if (command == "events") {
    if (argc < 4) return usage();
    const auto trace = resolve(argv[2]);
    if (!trace) return 1;
    return dump_events(*trace, argv[3]);
  }
  if (command == "export") {
    if (argc < 4) return usage();
    const auto trace = resolve(argv[2]);
    if (!trace) return 1;
    if (!save_trace(argv[3], *trace)) {
      std::fprintf(stderr, "cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("wrote %s\n", argv[3]);
    return 0;
  }
  if (command == "gen") {
    if (argc < 5) return usage();
    const std::string kind = argv[2];
    SpotTrace trace;
    if (kind == "synthetic") {
      if (argc < 6) return usage();
      Rng rng(argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1);
      SyntheticTraceOptions options;
      options.preemption_events = std::atoi(argv[3]);
      options.target_availability = std::atof(argv[4]);
      trace = synthesize_trace(options, rng);
      if (!save_trace(argv[5], trace)) return 1;
      print_stats(trace);
      std::printf("wrote %s\n", argv[5]);
      return 0;
    }
    if (kind == "market") {
      Rng rng(argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1);
      SpotMarketOptions options;
      options.bid = std::atof(argv[3]);
      const SpotMarketResult result = simulate_spot_market(options, rng);
      trace = result.trace;
      if (!save_trace(argv[4], trace)) return 1;
      print_stats(trace);
      std::printf("mean paid price: $%.3f/h\nwrote %s\n",
                  result.mean_paid_price, argv[4]);
      return 0;
    }
    return usage();
  }
  return usage();
}
