// Extension study: bid-price sensitivity on generated spot markets.
// Higher bids buy stability (fewer preemptions) at a higher unit
// price; Parcae's cheap preemption handling shifts the economic
// optimum toward lower bids compared to checkpoint-based training —
// the economics behind the paper's motivation (§1) quantified.
#include "bench/bench_util.h"
#include "common/table.h"
#include "baselines/varuna_policy.h"
#include "trace/spot_market.h"

using namespace parcae;

int main() {
  bench::header("Extension", "bid-price sensitivity (generated markets)");
  const ModelProfile model = gpt2_profile();

  TextTable table({"bid ($/h)", "avg instances", "preempt events/h",
                   "Parcae Mtok", "Varuna Mtok", "Parcae $/1M tok",
                   "Varuna $/1M tok"});
  for (double bid : {0.95, 1.05, 1.20, 1.50}) {
    double avail = 0.0, events = 0.0;
    double parcae_tok = 0.0, varuna_tok = 0.0;
    double parcae_cost = 0.0, varuna_cost = 0.0;
    const int seeds = 3;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(100u + static_cast<unsigned>(seed));
      SpotMarketOptions market;
      market.bid = bid;
      const SpotMarketResult m = simulate_spot_market(market, rng);
      const TraceStats stats = m.trace.stats();
      avail += stats.avg_instances;
      events += stats.preemption_events;
      // Price the run at the market's mean paid price.
      SimulationOptions sim = bench::sim_options(model);
      sim.pricing.spot_gpu_usd_per_hour =
          m.mean_paid_price > 0.0 ? m.mean_paid_price : market.mean_price;
      ParcaePolicy parcae(model, {});
      const SimulationResult rp = simulate(parcae, m.trace, sim);
      VarunaPolicy varuna(model);
      const SimulationResult rv = simulate(varuna, m.trace, sim);
      parcae_tok += rp.committed_units;
      varuna_tok += rv.committed_units;
      parcae_cost += rp.total_cost_usd;
      varuna_cost += rv.total_cost_usd;
    }
    table.row()
        .add(bid, 2)
        .add(avail / seeds, 1)
        .add(events / seeds, 1)
        .add(parcae_tok / seeds / 1e6, 1)
        .add(varuna_tok / seeds / 1e6, 1)
        .add(parcae_tok > 0 ? parcae_cost / parcae_tok * 1e6 : 0.0, 3)
        .add(varuna_tok > 0 ? varuna_cost / varuna_tok * 1e6 : 0.0, 3);
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "extension beyond the paper: Parcae tolerates low bids (frequent "
      "preemptions) far better than checkpoint-based training, so its "
      "cheapest operating point sits at a lower bid");
  return 0;
}
