// RPC layer microbenchmarks for the bench-regression harness
// (bench/run_benches.sh): serializer encode+decode, a full
// request/response round-trip over the deterministic InProcTransport,
// and the same round-trip over a real TCP loopback socket. The inproc
// numbers bound the pure protocol cost (envelope + replay cache); the
// tcp ones add the kernel socket path the runtime pays per agent
// operation when transport=tcp.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "rpc/rpc.h"
#include "rpc/serializer.h"
#include "rpc/transport.h"

namespace parcae::rpc {
namespace {

// A payload shaped like the runtime's hot frame: ps.push sends a stage
// id plus a gradient tensor of a few thousand floats.
std::vector<float> gradient(std::size_t n) {
  std::vector<float> g(n);
  for (std::size_t i = 0; i < n; ++i)
    g[i] = static_cast<float>(i) * 0.25f - 100.0f;
  return g;
}

void BM_SerializerRoundTrip(benchmark::State& state) {
  const std::vector<float> g = gradient(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ByteWriter w;
    w.u32(3);
    w.str("ps.push");
    w.floats(g);
    ByteReader r(w.take());
    benchmark::DoNotOptimize(r.u32());
    benchmark::DoNotOptimize(r.str());
    benchmark::DoNotOptimize(r.floats());
    r.expect_done();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.size() * 4));
}
BENCHMARK(BM_SerializerRoundTrip)->Arg(64)->Arg(4096)->Unit(benchmark::kMicrosecond);

// One echo method served over a transport; each iteration is a full
// call(): envelope encode, transport send, server dispatch, replay
// cache bookkeeping, response decode.
void roundtrip(benchmark::State& state, Transport& transport,
               std::size_t tensor) {
  RpcServer server(transport);
  server.register_method("echo", [](const std::string& p) { return p; });
  server.start();

  RpcClientOptions options;
  options.deadline_s = 2.0;
  RpcClient client(transport, "bench-agent", options);

  ByteWriter w;
  w.floats(gradient(tensor));
  const std::string payload = w.take();
  for (auto _ : state) {
    std::string response = client.call("echo", payload);
    benchmark::DoNotOptimize(response);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  client.close();
  server.stop();
  transport.shutdown();
}

void BM_InProcRoundTrip(benchmark::State& state) {
  InProcTransport transport;
  roundtrip(state, transport, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_InProcRoundTrip)->Arg(64)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_TcpRoundTrip(benchmark::State& state) {
  auto transport = make_tcp_transport();
  roundtrip(state, *transport, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_TcpRoundTrip)->Arg(64)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace parcae::rpc

BENCHMARK_MAIN();
