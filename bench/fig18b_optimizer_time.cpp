// Regenerates Figure 18b: wall-clock time of one liveput optimization
// (look-ahead 12, GPT-2) on each trace segment, measured with
// google-benchmark. The paper reports < 0.3 s per run — fast enough
// to re-optimize every minute.
#include <benchmark/benchmark.h>

#include "core/liveput_optimizer.h"
#include "migration/cost_model.h"
#include "model/model_profile.h"
#include "obs/metrics.h"
#include "parallel/throughput_model.h"
#include "trace/spot_trace.h"

namespace parcae {
namespace {

void optimize_on_segment(benchmark::State& state, TraceSegment segment,
                         int threads = 1) {
  const ModelProfile model = gpt2_profile();
  const ThroughputModel tm(model, {});
  obs::MetricsRegistry registry;
  LiveputOptimizer optimizer(&tm, CostEstimator(model),
                             LiveputOptimizerOptions{60.0, 256, 17,
                                                     &registry, threads});
  const SpotTrace trace = canonical_segment(segment);
  const std::vector<int> series = trace.availability_series();
  const ParallelConfig current = tm.best_config(series.front());

  // Rotate the forecast origin so the cache is exercised realistically
  // (the scheduler re-optimizes every interval with fresh forecasts).
  std::size_t origin = 0;
  for (auto _ : state) {
    std::vector<int> predicted;
    for (int h = 1; h <= 12; ++h)
      predicted.push_back(
          series[(origin + static_cast<std::size_t>(h)) % series.size()]);
    origin = (origin + 1) % series.size();
    const LiveputPlan plan =
        optimizer.optimize(current, series[origin], predicted);
    benchmark::DoNotOptimize(plan.expected_samples);
  }
  state.SetLabel("paper: < 0.3 s per optimization (Figure 18b)");
  // How much of the optimizer's work the caches absorbed.
  state.counters["dp_runs"] = registry.counter_value("liveput_dp.runs");
  state.counters["mc_samples"] =
      registry.counter_value("mc_sampler.samples");
  state.counters["mc_cache_hits"] =
      registry.counter_value("mc_sampler.cache_hits");
  state.counters["edge_cache_hits"] =
      registry.counter_value("liveput_dp.edge_cache_hits");
}

void BM_LiveputOptimize_HA_DP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kHighAvailDense);
}
void BM_LiveputOptimize_HA_SP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kHighAvailSparse);
}
void BM_LiveputOptimize_LA_DP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kLowAvailDense);
}
void BM_LiveputOptimize_LA_SP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kLowAvailSparse);
}

BENCHMARK(BM_LiveputOptimize_HA_DP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_HA_SP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_LA_DP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_LA_SP)->Unit(benchmark::kMillisecond);

// Threaded DP variants: the candidate loop fans out over a ThreadPool
// (plans stay bit-identical; see docs/performance.md). On a 1-core
// machine these degrade gracefully to roughly the serial numbers.
void BM_LiveputOptimize_HA_DP_T8(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kHighAvailDense, 8);
}
void BM_LiveputOptimize_LA_SP_T8(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kLowAvailSparse, 8);
}
BENCHMARK(BM_LiveputOptimize_HA_DP_T8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_LA_SP_T8)->Unit(benchmark::kMillisecond);

// Scale cases (256- and 1024-instance pools, the ROADMAP's fleet
// sizes): full re-solve vs. the warm-started incremental DP. Both
// variants run the identical workload — a steady forecast with one
// change per iteration — so the ratio isolates what warm-starting
// buys. `Full` forces options.full_resolve (every column re-expanded
// every solve); `WarmOneChange` is the default incremental path (only
// the columns the change invalidates re-expand). `Incr` runs a
// churnier workload: the edit lands mid-window, so the whole suffix
// (half the columns) re-expands every solve.
//
// The 1.5x regression gate in bench/run_benches.sh is stricter on the
// *_Incr / *_WarmOneChange cases (they are the event-mode reaction
// path); the acceptance pin is WarmOneChange >= 3x faster than Full
// at N = 256.
void optimize_at_scale(benchmark::State& state, int n, int lookahead,
                       int mc_trials, bool full_resolve, bool churn) {
  const ModelProfile model = gpt2_profile();
  const ThroughputModel tm(model, {});
  obs::MetricsRegistry registry;
  LiveputOptimizerOptions options;
  options.interval_s = 60.0;
  options.mc_trials = mc_trials;
  options.seed = 17;
  options.metrics = &registry;
  options.full_resolve = full_resolve;
  LiveputOptimizer optimizer(&tm, CostEstimator(model), options);
  const ParallelConfig current = tm.best_config(n);
  std::vector<int> predicted(static_cast<std::size_t>(lookahead), n);

  // Untimed cold solve: the timed loop measures steady-state
  // re-optimization (the scheduler's per-interval / per-event cost),
  // not first-run enumeration + MC sampling.
  optimizer.optimize(current, n, predicted);

  // Each timed iteration edits exactly one fixed position (the value
  // alternates), so every iteration re-expands the same columns and
  // the per-iteration cost is stationary — the regression gate would
  // otherwise compare different workload mixes across machines.
  const std::size_t at = churn ? predicted.size() / 2 : predicted.size() - 1;
  for (auto _ : state) {
    predicted[at] = predicted[at] == n ? n - 1 : n;
    const LiveputPlan plan = optimizer.optimize(current, n, predicted);
    benchmark::DoNotOptimize(plan.expected_samples);
  }
  state.counters["configs"] =
      static_cast<double>(tm.enumerate_configs(n).size());
  state.counters["states_reused"] =
      registry.counter_value("liveput_dp.states_reused");
  state.counters["states_re_expanded"] =
      registry.counter_value("liveput_dp.states_re_expanded");
  state.counters["edge_cache_bypass"] =
      registry.counter_value("liveput_dp.edge_cache_bypass");
}

void BM_LiveputOptimize_N256_Full(benchmark::State& state) {
  optimize_at_scale(state, 256, 12, 64, /*full_resolve=*/true,
                    /*churn=*/false);
}
void BM_LiveputOptimize_N256_WarmOneChange(benchmark::State& state) {
  optimize_at_scale(state, 256, 12, 64, /*full_resolve=*/false,
                    /*churn=*/false);
}
void BM_LiveputOptimize_N256_Incr(benchmark::State& state) {
  optimize_at_scale(state, 256, 12, 64, /*full_resolve=*/false,
                    /*churn=*/true);
}
void BM_LiveputOptimize_N1024_Full(benchmark::State& state) {
  optimize_at_scale(state, 1024, 6, 32, /*full_resolve=*/true,
                    /*churn=*/false);
}
void BM_LiveputOptimize_N1024_WarmOneChange(benchmark::State& state) {
  optimize_at_scale(state, 1024, 6, 32, /*full_resolve=*/false,
                    /*churn=*/false);
}
void BM_LiveputOptimize_N1024_Incr(benchmark::State& state) {
  optimize_at_scale(state, 1024, 6, 32, /*full_resolve=*/false,
                    /*churn=*/true);
}
BENCHMARK(BM_LiveputOptimize_N256_Full)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_N256_WarmOneChange)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_N256_Incr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_N1024_Full)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_N1024_WarmOneChange)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_N1024_Incr)->Unit(benchmark::kMillisecond);

// The whole-policy decision step (predict + optimize + plan) must also
// stay far below the 60 s interval.
void BM_FullSchedulerStep(benchmark::State& state) {
  const ModelProfile model = gpt2_profile();
  const ThroughputModel tm(model, {});
  LiveputOptimizer optimizer(&tm, CostEstimator(model),
                             LiveputOptimizerOptions{60.0, 256, 17});
  const std::vector<int> predicted(12, 26);
  // Alternate the observed availability so every step re-expands at
  // least the first DP column (static inputs would reuse everything
  // and measure nothing). The suffix still converges and is reused —
  // this is the honest steady-state cost of a quiet interval under
  // the warm-started DP, microseconds rather than the ~0.8 ms a full
  // solve costs.
  int n_now = 27;
  for (auto _ : state) {
    n_now = n_now == 27 ? 26 : 27;
    const ParallelConfig next = optimizer.advise({3, 9}, n_now, predicted);
    benchmark::DoNotOptimize(next);
  }
}
BENCHMARK(BM_FullSchedulerStep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parcae

BENCHMARK_MAIN();
