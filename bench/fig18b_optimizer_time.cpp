// Regenerates Figure 18b: wall-clock time of one liveput optimization
// (look-ahead 12, GPT-2) on each trace segment, measured with
// google-benchmark. The paper reports < 0.3 s per run — fast enough
// to re-optimize every minute.
#include <benchmark/benchmark.h>

#include "core/liveput_optimizer.h"
#include "migration/cost_model.h"
#include "model/model_profile.h"
#include "obs/metrics.h"
#include "parallel/throughput_model.h"
#include "trace/spot_trace.h"

namespace parcae {
namespace {

void optimize_on_segment(benchmark::State& state, TraceSegment segment,
                         int threads = 1) {
  const ModelProfile model = gpt2_profile();
  const ThroughputModel tm(model, {});
  obs::MetricsRegistry registry;
  LiveputOptimizer optimizer(&tm, CostEstimator(model),
                             LiveputOptimizerOptions{60.0, 256, 17,
                                                     &registry, threads});
  const SpotTrace trace = canonical_segment(segment);
  const std::vector<int> series = trace.availability_series();
  const ParallelConfig current = tm.best_config(series.front());

  // Rotate the forecast origin so the cache is exercised realistically
  // (the scheduler re-optimizes every interval with fresh forecasts).
  std::size_t origin = 0;
  for (auto _ : state) {
    std::vector<int> predicted;
    for (int h = 1; h <= 12; ++h)
      predicted.push_back(
          series[(origin + static_cast<std::size_t>(h)) % series.size()]);
    origin = (origin + 1) % series.size();
    const LiveputPlan plan =
        optimizer.optimize(current, series[origin], predicted);
    benchmark::DoNotOptimize(plan.expected_samples);
  }
  state.SetLabel("paper: < 0.3 s per optimization (Figure 18b)");
  // How much of the optimizer's work the caches absorbed.
  state.counters["dp_runs"] = registry.counter_value("liveput_dp.runs");
  state.counters["mc_samples"] =
      registry.counter_value("mc_sampler.samples");
  state.counters["mc_cache_hits"] =
      registry.counter_value("mc_sampler.cache_hits");
  state.counters["edge_cache_hits"] =
      registry.counter_value("liveput_dp.edge_cache_hits");
}

void BM_LiveputOptimize_HA_DP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kHighAvailDense);
}
void BM_LiveputOptimize_HA_SP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kHighAvailSparse);
}
void BM_LiveputOptimize_LA_DP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kLowAvailDense);
}
void BM_LiveputOptimize_LA_SP(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kLowAvailSparse);
}

BENCHMARK(BM_LiveputOptimize_HA_DP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_HA_SP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_LA_DP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_LA_SP)->Unit(benchmark::kMillisecond);

// Threaded DP variants: the candidate loop fans out over a ThreadPool
// (plans stay bit-identical; see docs/performance.md). On a 1-core
// machine these degrade gracefully to roughly the serial numbers.
void BM_LiveputOptimize_HA_DP_T8(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kHighAvailDense, 8);
}
void BM_LiveputOptimize_LA_SP_T8(benchmark::State& state) {
  optimize_on_segment(state, TraceSegment::kLowAvailSparse, 8);
}
BENCHMARK(BM_LiveputOptimize_HA_DP_T8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiveputOptimize_LA_SP_T8)->Unit(benchmark::kMillisecond);

// The whole-policy decision step (predict + optimize + plan) must also
// stay far below the 60 s interval.
void BM_FullSchedulerStep(benchmark::State& state) {
  const ModelProfile model = gpt2_profile();
  const ThroughputModel tm(model, {});
  LiveputOptimizer optimizer(&tm, CostEstimator(model),
                             LiveputOptimizerOptions{60.0, 256, 17});
  const std::vector<int> predicted(12, 26);
  for (auto _ : state) {
    const ParallelConfig next = optimizer.advise({3, 9}, 27, predicted);
    benchmark::DoNotOptimize(next);
  }
}
BENCHMARK(BM_FullSchedulerStep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parcae

BENCHMARK_MAIN();
