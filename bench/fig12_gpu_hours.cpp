// Regenerates Figure 12: GPU-hours breakdown of GPT-2 execution into
// effective computation, redundant computation, preemption handling
// (checkpoints, rollbacks, migrations), lost work, and unutilized
// instances, for Varuna, Bamboo, and Parcae on each trace segment.
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

namespace {

void add_row(TextTable& table, const std::string& trace,
             const SimulationResult& r) {
  const double total = r.gpu_hours.total();
  auto pct = [&](double v) { return 100.0 * v / total; };
  table.row()
      .add(trace)
      .add(r.policy)
      .add(pct(r.gpu_hours.effective), 1)
      .add(pct(r.gpu_hours.redundant), 1)
      .add(pct(r.gpu_hours.handling), 1)
      .add(pct(r.gpu_hours.lost), 1)
      .add(pct(r.gpu_hours.unutilized), 1)
      .add(total, 1);
}

}  // namespace

int main() {
  bench::header("Figure 12", "GPU-hours breakdown of GPT-2 execution (%)");
  const ModelProfile model = gpt2_profile();

  TextTable table({"trace", "system", "effective", "redundant", "handling",
                   "lost", "unutilized", "total GPU-h"});
  for (const SpotTrace& trace : all_canonical_segments()) {
    add_row(table, trace.name(),
            bench::run_parcae(model, trace, PredictionMode::kArima));
    add_row(table, trace.name(), bench::run_bamboo(model, trace));
    add_row(table, trace.name(), bench::run_varuna(model, trace));
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Figure 12: Parcae spends the majority of GPU hours on effective "
      "computation; Bamboo burns >40% on redundant computation (>50% on "
      "LA-DP); Varuna loses large shares to preemption handling");
  return 0;
}
