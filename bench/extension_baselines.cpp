// Extension: the related-work systems the paper discusses but does not
// measure (§11) — Oobleck (pipeline templates), CheckFreq
// (fine-grained checkpointing), and a Snape-style on-demand + spot
// hybrid — scored against Parcae, Varuna, and Bamboo on GPT-2 across
// all four trace segments.
#include <cmath>
#include <map>

#include "analysis/experiment.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Extension", "related-work baselines (GPT-2)");

  MatrixOptions options;
  options.models = {gpt2_profile()};
  options.policies = standard_policies();
  for (auto& spec : extended_policies())
    options.policies.push_back(std::move(spec));
  const auto cells = run_matrix(options);

  TextTable table({"system", "HA-DP tok/s", "HA-SP tok/s", "LA-DP tok/s",
                   "LA-SP tok/s", "avg $/1M tok"});
  // Group by system, columns by trace.
  for (const auto& spec : options.policies) {
    std::map<std::string, const CellResult*> by_trace;
    double cost_sum = 0.0;
    int cost_cells = 0;
    for (const auto& cell : cells) {
      if (cell.system != spec.name) continue;
      by_trace[cell.trace] = &cell;
      if (std::isfinite(cell.result.cost_per_unit)) {
        cost_sum += cell.result.cost_per_unit;
        ++cost_cells;
      }
    }
    auto tput = [&](const char* trace) {
      const auto it = by_trace.find(trace);
      return it == by_trace.end() ? 0.0
                                  : it->second->result.avg_unit_throughput;
    };
    table.row()
        .add(spec.name)
        .add(tput("HA-DP"), 0)
        .add(tput("HA-SP"), 0)
        .add(tput("LA-DP"), 0)
        .add(tput("LA-SP"), 0)
        .add(cost_cells ? cost_sum / cost_cells * 1e6 : 0.0, 3);
  }
  std::printf("%s\n", table.to_string().c_str());

  // GPT-3: the regime where the differences widen — Oobleck's single
  // pipeline (D=1) loses its lineage on every preemption, and the
  // hybrid's on-demand core costs 9 V100s around the clock.
  bench::header("Extension", "related-work baselines (GPT-3)");
  MatrixOptions gpt3;
  gpt3.models = {gpt3_profile()};
  gpt3.policies = standard_policies();
  for (auto& spec : extended_policies())
    gpt3.policies.push_back(std::move(spec));
  const auto cells3 = run_matrix(gpt3);
  TextTable t3({"system", "HA-DP tok/s", "LA-DP tok/s", "LA-SP tok/s",
                "avg $/1M tok"});
  for (const auto& spec : gpt3.policies) {
    std::map<std::string, const CellResult*> by_trace;
    double cost_sum = 0.0;
    int cost_cells = 0;
    for (const auto& cell : cells3) {
      if (cell.system != spec.name) continue;
      by_trace[cell.trace] = &cell;
      if (std::isfinite(cell.result.cost_per_unit)) {
        cost_sum += cell.result.cost_per_unit;
        ++cost_cells;
      }
    }
    auto tput = [&](const char* trace) {
      const auto it = by_trace.find(trace);
      return it == by_trace.end() ? 0.0
                                  : it->second->result.avg_unit_throughput;
    };
    t3.row()
        .add(spec.name)
        .add(tput("HA-DP"), 0)
        .add(tput("LA-DP"), 0)
        .add(tput("LA-SP"), 0)
        .add(cost_cells ? cost_sum / cost_cells * 1e6 : 0.0, 3);
  }
  std::printf("%s\n", t3.to_string().c_str());
  bench::paper_note(
      "extension of §11: Oobleck and CheckFreq close part of the gap to "
      "Parcae (cheap recovery / small rollbacks) but remain reactive; the "
      "on-demand hybrid buys stability with dollars and loses on cost per "
      "token; at GPT-3 scale (deep single pipelines) Parcae's lead grows");
  return 0;
}
