// Regenerates Figure 13: decomposed speedup on GPT-2 — starting from
// a checkpoint-based, throughput-optimized system (Varuna), adding
// ParcaePS + live migration (Parcae-Reactive), then adding
// liveput-optimized configurations (full Parcae).
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 13", "component ablation on GPT-2");
  const ModelProfile model = gpt2_profile();

  TextTable table({"trace", "ckpt+tput-opt (base)", "+PS & migration",
                   "+liveput (Parcae)", "migration gain", "liveput gain"});
  double liveput_gain_sum = 0.0;
  for (const SpotTrace& trace : all_canonical_segments()) {
    const double base =
        bench::run_varuna(model, trace).committed_samples;
    const double reactive =
        bench::run_parcae(model, trace, PredictionMode::kReactive)
            .committed_samples;
    const double full =
        bench::run_parcae(model, trace, PredictionMode::kArima)
            .committed_samples;
    liveput_gain_sum += full / reactive - 1.0;
    table.row()
        .add(trace.name())
        .add(1.0, 2)
        .add(reactive / base, 2)
        .add(full / base, 2)
        .add(format_double(100.0 * (reactive / base - 1.0), 0) + "%")
        .add(format_double(100.0 * (full / reactive - 1.0), 1) + "%");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("average liveput gain over migration-only: %.1f%%\n",
              100.0 * liveput_gain_sum / 4.0);
  bench::paper_note(
      "Figure 13: ParcaePS + migration improve throughput by 13-67% over "
      "the checkpoint-based base; liveput-optimized configurations add a "
      "further ~25.5% on average");
  return 0;
}
