// Regenerates Figure 16: convergence preservation. Trains a real
// model (the laptop-scale stand-in for ResNet-152/CIFAR-100, see
// DESIGN.md) twice through the SampleManager: undisturbed (on-demand
// order) and with preemption-induced aborts and reordering (Parcae on
// spot instances). The loss curves must track each other.
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "nn/dataset.h"
#include "nn/mlp.h"
#include "runtime/sample_manager.h"

using namespace parcae;

namespace {

std::vector<float> train_curve(double abort_probability,
                               std::uint64_t chaos_seed, int epochs) {
  const std::size_t n = 1024;
  const auto ds = nn::make_blobs(n, 24, 8, 0.6, 4242);
  nn::Mlp mlp({24, 64, 8}, std::make_unique<nn::Adam>(0.003f), 7);
  SampleManager sm(n, 99);
  Rng chaos(chaos_seed);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  const nn::Matrix eval_x = ds.gather(all);
  const auto eval_y = ds.gather_labels(all);

  std::vector<float> curve;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    while (!sm.epoch_complete()) {
      const auto lease = sm.lease(64);
      if (lease.id == 0) break;
      if (chaos.bernoulli(abort_probability)) {
        sm.abort(lease.id);  // preempted: samples return to the pool
        continue;
      }
      mlp.train_batch(ds.gather(lease.samples),
                      ds.gather_labels(lease.samples));
      sm.commit(lease.id);
    }
    sm.start_next_epoch();
    curve.push_back(mlp.eval_loss(eval_x, eval_y));
  }
  return curve;
}

}  // namespace

int main() {
  std::printf("==== Figure 16: convergence preservation ====\n");
  const int epochs = 40;
  const auto ondemand = train_curve(0.0, 1, epochs);
  const auto spot = train_curve(0.35, 2, epochs);  // heavy reordering

  TextTable table({"epoch", "on-demand loss", "Parcae (spot) loss"});
  for (int e = 0; e < epochs; e += 2)
    table.row()
        .add(e)
        .add(static_cast<double>(ondemand[static_cast<std::size_t>(e)]), 4)
        .add(static_cast<double>(spot[static_cast<std::size_t>(e)]), 4);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("final loss: on-demand %.4f, Parcae %.4f (diff %.1f%%)\n",
              static_cast<double>(ondemand.back()),
              static_cast<double>(spot.back()),
              100.0 * std::abs(spot.back() - ondemand.back()) /
                  ondemand.back());
  std::printf(
      "paper: Figure 16 — ResNet-152 on CIFAR-100 reaches the same loss "
      "(0.058) after 110 epochs on spot and on-demand; sample reordering "
      "preserves convergence\n");
  return 0;
}
