// Extension (the paper's §2.1 future work): adding a tensor-parallel
// degree T to the search space. Reports, per instance count, the best
// 2D (D, P) configuration vs the best 3D (D, P, T) configuration, its
// throughput, and the liveput trade-off under preemptions.
#include "bench/bench_util.h"
#include "common/table.h"
#include "core/extended_search.h"
#include "core/liveput.h"

using namespace parcae;

int main() {
  bench::header("Extension",
                "tensor-parallel (D, P, T) search space for GPT-3");
  const ModelProfile model = gpt3_profile();
  const ThroughputModel base(model, {});
  const ExtendedThroughputModel ext(model, {});

  TextTable table({"instances", "best DxP", "tokens/s", "best DxPxT",
                   "tokens/s ", "3D gain %", "2D liveput k=2",
                   "3D liveput k=2"});
  for (int n : {10, 14, 18, 24, 32}) {
    const ParallelConfig best2d = base.best_config(n);
    const TensorParallelConfig best3d = ext.best_config(n);
    const double t2 = base.unit_throughput(best2d);
    const double t3 =
        ext.throughput(best3d) * model.tokens_per_sample;
    PreemptionSampler sampler(5, 1024);
    const LiveputEstimator lp2(&base, &sampler);
    const double live2d =
        best2d.valid()
            ? lp2.liveput(best2d, n - best2d.instances(), 2) *
                  model.tokens_per_sample
            : 0.0;
    const double live3d =
        best3d.valid()
            ? ext.liveput(best3d, n - best3d.instances(), 2, 1024) *
                  model.tokens_per_sample
            : 0.0;
    table.row()
        .add(n)
        .add(best2d.valid() ? best2d.to_string() : "-")
        .add(t2, 0)
        .add(best3d.valid() ? best3d.to_string() : "-")
        .add(t3, 0)
        .add(t2 > 0.0 ? 100.0 * (t3 / t2 - 1.0) : 0.0, 1)
        .add(live2d, 0)
        .add(live3d, 0);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("min pipeline depth by TP degree: ");
  for (int tp : {1, 2, 4, 8})
    std::printf("T=%d -> P>=%d  ", tp, ext.min_pipeline_depth(tp));
  std::printf("\n");
  bench::paper_note(
      "extension of §2.1/§7.2: over 10 Gbps inter-node links the "
      "per-layer activation all-reduces (Megatron tax) keep T=1 optimal "
      "for throughput, but TP shortens feasible pipelines, an additional "
      "robustness lever liveput can exploit");
  return 0;
}
