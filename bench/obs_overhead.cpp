// Observability-tax microbenchmarks for the bench-regression harness
// (bench/run_benches.sh): the same simulated scheduling run with every
// sink detached vs fully instrumented (metrics + trace ids + time
// series + SLO engine), the Prometheus render itself, a live
// obs.metrics scrape over the in-process transport, and the raw
// ProfileSpan open/close. bench/obs_gate.py reads the paired simulate
// numbers and fails the harness when the instrumented run costs more
// than 5% over bare — the contract that lets the sinks stay compiled
// in and enabled by default.
#include <benchmark/benchmark.h>

#include <string>

#include "core/slo.h"
#include "model/model_profile.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/profile_span.h"
#include "obs/timeseries.h"
#include "obs/trace_context.h"
#include "rpc/obs_service.h"
#include "rpc/rpc.h"
#include "rpc/transport.h"
#include "runtime/cluster_sim.h"
#include "runtime/parcae_policy.h"
#include "trace/spot_trace.h"

namespace parcae {
namespace {

// One full simulated run over the sparse high-availability segment.
// `observed` attaches every sink the obs_dashboard attaches.
void simulate_segment(benchmark::State& state, bool observed) {
  const ModelProfile model = model_by_name("GPT-2");
  const SpotTrace trace = canonical_segment(TraceSegment::kHighAvailSparse);

  obs::MetricsRegistry registry;
  obs::TraceWriter tracer;
  obs::TimeSeriesRecorder series;

  ParcaePolicyOptions popt;
  if (observed) {
    popt.metrics = &registry;
    popt.tracer = &tracer;
  }
  ParcaePolicy policy(model, popt);

  volatile double committed = 0.0;
  for (auto _ : state) {
    SimulationOptions sim;
    sim.units_per_sample = model.tokens_per_sample;
    sim.record_timeline = false;
    SloEngine slo(SloEngine::default_rules());
    if (observed) {
      sim.metrics = &registry;
      sim.tracer = &tracer;
      sim.timeseries = &series;
      sim.slo = &slo;
    }
    const SimulationResult r = simulate(policy, trace, sim);
    committed = r.committed_units;
    // Bound memory across iterations; the clears are part of the tax.
    registry.clear();
    tracer.clear();
    series.clear();
  }
  state.SetLabel(observed ? "all sinks attached" : "no sinks");
  state.counters["committed_units"] = committed;
}

void BM_SimulateBare(benchmark::State& state) {
  simulate_segment(state, /*observed=*/false);
}
void BM_SimulateObserved(benchmark::State& state) {
  simulate_segment(state, /*observed=*/true);
}
BENCHMARK(BM_SimulateBare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateObserved)->Unit(benchmark::kMillisecond);

// A registry shaped like the end of a real run: a few dozen
// instruments, some job-prefixed, histograms with spread-out buckets.
obs::MetricsRegistry& populate(obs::MetricsRegistry& registry) {
  for (int job = 0; job < 8; ++job) {
    const std::string prefix = "job" + std::to_string(job) + ".";
    registry.counter(prefix + "sim.preemptions").add(job * 3.0);
    registry.counter(prefix + "scheduler.intervals").add(720);
    registry.gauge(prefix + "fleet.normalized_liveput").set(0.5 + job * 0.05);
    auto& h = registry.histogram(prefix + "optimize.ms");
    for (int i = 1; i <= 64; ++i) h.observe(i * 0.7);
  }
  registry.counter("rpc.requests").add(12345);
  registry.counter("rpc.client.retries").add(17);
  auto& spans = registry.histogram("execute-interval.ms");
  for (int i = 1; i <= 256; ++i) spans.observe(i * 0.3);
  return registry;
}

void BM_PrometheusRender(benchmark::State& state) {
  obs::MetricsRegistry registry;
  populate(registry);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string prom = obs::to_prometheus(snapshot);
    bytes = prom.size();
    benchmark::DoNotOptimize(prom);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PrometheusRender)->Unit(benchmark::kMicrosecond);

// What one monitoring poll costs end to end: snapshot + render +
// envelope + transport dispatch, via the obs.metrics endpoint.
void BM_ObsScrapeInproc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  populate(registry);
  rpc::InProcTransport transport;
  rpc::RpcServer server(transport);
  rpc::ObsService service(registry);
  service.bind(server);
  server.start();
  rpc::RpcClient client(transport, "scraper");
  rpc::ObsClient obs_client(client);

  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string prom = obs_client.scrape();
    bytes = prom.size();
    benchmark::DoNotOptimize(prom);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  client.close();
  server.stop();
}
BENCHMARK(BM_ObsScrapeInproc)->Unit(benchmark::kMicrosecond);

// The per-span cost every instrumented call site pays: histogram
// observe + trace event push + span-id allocation + context install.
void BM_ProfileSpanTraced(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::TraceWriter tracer;
  tracer.enable_trace_ids(obs::fork_trace_seed(1, 1));
  obs::TraceContextScope root(
      obs::TraceContext{obs::derive_trace_id(1, 0), 0});
  std::size_t n = 0;
  for (auto _ : state) {
    obs::ProfileSpan span("bench.span", &registry, &tracer);
    benchmark::DoNotOptimize(span.context().span_id);
    if (++n % 8192 == 0) tracer.clear();  // bound memory, amortized in
  }
}
BENCHMARK(BM_ProfileSpanTraced)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace parcae

BENCHMARK_MAIN();
