// Regenerates Table 2: monetary cost (×1e-6 USD) per image (ResNet,
// VGG) or per token (BERT, GPT-2, GPT-3) for on-demand, Varuna,
// Bamboo, and Parcae on the four trace segments, with the paper's
// "(n.nx)" multipliers relative to Parcae. Systems that make no
// progress print "-" exactly as the paper does.
#include <cmath>

#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

namespace {

std::string cost_cell(const SimulationResult& r, double parcae_cost) {
  if (!std::isfinite(r.cost_per_unit)) return "-";
  const double micro = r.cost_per_unit * 1e6;
  std::string s = format_double(micro, micro < 0.1 ? 3 : 2);
  if (parcae_cost > 0.0 && std::isfinite(parcae_cost))
    s += " (" + format_double(r.cost_per_unit / parcae_cost, 1) + "x)";
  return s;
}

}  // namespace

int main() {
  bench::header("Table 2", "monetary cost (x1e-6 USD) per image/token");

  TextTable table(
      {"Model", "Trace", "On-Demand", "Varuna", "Bamboo", "Parcae"});
  for (const ModelProfile& model : model_zoo()) {
    const SimulationResult ondemand = bench::run_ondemand(model, 3600.0);
    for (const SpotTrace& trace : all_canonical_segments()) {
      const SimulationResult varuna = bench::run_varuna(model, trace);
      const SimulationResult bamboo = bench::run_bamboo(model, trace);
      const SimulationResult parcae =
          bench::run_parcae(model, trace, PredictionMode::kArima);
      table.row()
          .add(model.name)
          .add(trace.name())
          .add(cost_cell(ondemand, parcae.cost_per_unit))
          .add(cost_cell(varuna, parcae.cost_per_unit))
          .add(cost_cell(bamboo, parcae.cost_per_unit))
          .add(cost_cell(parcae, parcae.cost_per_unit));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Table 2: Parcae is cheapest everywhere (on-demand 2.3-4.8x, Varuna "
      "up to 9.9x on GPT-3 HA-DP, Bamboo up to 10.8x on GPT-3 LA-DP); on "
      "GPT-3 LA-SP Varuna and Bamboo show '-' (no progress at all)");
  return 0;
}
