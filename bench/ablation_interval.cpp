// Ablation: the scheduling/prediction interval T (§5.2 fixes T = 60 s).
// Shorter intervals react faster but amortize migrations worse;
// longer intervals leave damage unrepaired for longer.
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Ablation", "scheduling interval length T");
  const ModelProfile model = gpt2_profile();
  const SpotTrace trace = canonical_segment(TraceSegment::kHighAvailDense);

  TextTable table({"T (s)", "tokens committed (M)", "avg tokens/s"});
  for (double T : {30.0, 60.0, 120.0, 180.0}) {
    ParcaePolicyOptions options;
    options.interval_s = T;
    ParcaePolicy policy(model, options, &trace);
    SimulationOptions sim = bench::sim_options(model);
    sim.interval_s = T;
    const SimulationResult r = simulate(policy, trace, sim);
    table.row()
        .add(T, 0)
        .add(r.committed_units / 1e6, 1)
        .add(r.avg_unit_throughput, 0);
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "design ablation (DESIGN.md): T = 60 s (the paper's setting) "
      "balances reaction latency against migration amortization");
  return 0;
}
