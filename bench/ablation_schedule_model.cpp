// Ablation/validation: the analytic (m + P - 1)(t_stage + 2 t_p2p)
// iteration-time formula versus the event-level 1F1B schedule
// simulator, across the paper's models and representative
// configurations — justifying the closed form the liveput optimizer
// evaluates thousands of times per run.
#include <cmath>

#include "bench/bench_util.h"
#include "common/table.h"
#include "parallel/pipeline_schedule.h"
#include "parallel/throughput_model.h"

using namespace parcae;

int main() {
  bench::header("Ablation", "analytic pipeline model vs 1F1B simulation");
  const NetworkModel net;

  TextTable table({"model", "config", "microbatches", "analytic (s)",
                   "simulated (s)", "error %", "bubble %"});
  for (const ModelProfile& model : model_zoo()) {
    const ThroughputModel tm(model, {});
    const int min_p = std::max(1, tm.min_pipeline_depth());
    for (int p : {min_p, std::min(model.partition_units, min_p + 4),
                  std::min(model.partition_units, min_p + 10)}) {
      const int d = std::max(1, 24 / p);
      const ParallelConfig c{d, p};
      if (!tm.feasible(c)) continue;
      const double m = std::ceil(static_cast<double>(model.mini_batch) /
                                 (c.dp * model.micro_batch));
      const double t_total = model.train_flops_per_sample() *
                             model.micro_batch /
                             (c.pp * model.effective_flops);
      ScheduleParams params;
      params.stages = c.pp;
      params.microbatches = static_cast<int>(m);
      params.fwd_time_s = t_total * 0.25;
      params.bwd_time_s = t_total * 0.75;
      params.p2p_time_s = net.p2p_time(model.boundary_activation_bytes *
                                       model.micro_batch);
      const ScheduleResult sim = simulate_1f1b(params);
      // Boundary transfers only exist with >= 2 stages (the
      // ThroughputModel makes the same distinction).
      const double comm = c.pp > 1 ? 2.0 * params.p2p_time_s : 0.0;
      const double analytic = (m + c.pp - 1) * (t_total + comm);
      table.row()
          .add(model.name)
          .add(c.to_string())
          .add(static_cast<int>(m))
          .add(analytic, 3)
          .add(sim.makespan_s, 3)
          .add(100.0 * (analytic / sim.makespan_s - 1.0), 1)
          .add(100.0 * sim.bubble_fraction, 1);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "design ablation (DESIGN.md): the closed form stays within ~15% of "
      "the event-level schedule across the zoo; deeper pipelines carry "
      "larger bubbles, the Figure-3 robustness/efficiency trade-off");
  return 0;
}
