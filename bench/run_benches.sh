#!/usr/bin/env bash
# Bench-regression harness: the liveput decision path (Figure 18b),
# the RPC transport layer (serializer / inproc / tcp round-trips), the
# fleet arbitration pass (10/50/100-job rebalance), the observability
# tax (instrumented vs bare simulate, Prometheus render, obs.metrics
# scrape, ProfileSpan) and the serving decision path (serve_goodput:
# proactive-vs-reactive-vs-static gate + goodput-DP solve latency).
#
#   bench/run_benches.sh               run + compare against the
#                                      committed baseline (fails on a
#                                      > $THRESHOLD x regression)
#   bench/run_benches.sh --rebaseline  run + overwrite the baseline
#                                      (do this once per machine, and
#                                      whenever an intentional perf
#                                      change lands)
#
# Emits BENCH_optimizer_time.json, BENCH_rpc_roundtrip.json,
# BENCH_fleet_arbiter.json, BENCH_obs_overhead.json and
# BENCH_serve_goodput.json (google-benchmark JSON) at the repo root;
# the committed references live in bench/baselines/. The obs bench
# additionally runs bench/obs_gate.py, a machine-independent check
# that the fully instrumented run stays within 5% of the bare one.
# serve_goodput exits non-zero (failing the harness) unless proactive
# serving beats both the reactive and static baselines on at least two
# of the three availability traces. Builds the
# `release-bench` CMake preset (pure Release) so numbers are not
# polluted by RelWithDebInfo assertions in dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-2.0}"
# Stricter gate for the incremental-DP reaction path (the
# BM_LiveputOptimize_N256/N1024 warm-start and churn cases): these are
# what bounds event-mode reaction latency at fleet scale, so they get
# less regression headroom than the rest of the suite.
INCR_THRESHOLD="${INCR_THRESHOLD:-1.5}"
INCR_PATTERN='_N(256|1024)_(WarmOneChange|Incr)'
MIN_TIME="${MIN_TIME:-0.1}"
BENCHES=(fig18b_optimizer_time rpc_roundtrip fleet_arbiter obs_overhead serve_goodput)
OUTS=(BENCH_optimizer_time.json BENCH_rpc_roundtrip.json BENCH_fleet_arbiter.json BENCH_obs_overhead.json BENCH_serve_goodput.json)

cmake --preset release-bench >/dev/null
cmake --build --preset release-bench --target "${BENCHES[@]}"

status=0
for i in "${!BENCHES[@]}"; do
    bench="${BENCHES[$i]}"
    out="${OUTS[$i]}"
    baseline="bench/baselines/${out}"

    "./build-release/bench/${bench}" \
        --benchmark_out="${out}" \
        --benchmark_out_format=json \
        --benchmark_min_time="${MIN_TIME}"

    if [[ "${bench}" == "obs_overhead" ]]; then
        python3 bench/obs_gate.py "${out}" || status=$?
    fi

    if [[ "${1:-}" == "--rebaseline" ]]; then
        mkdir -p "$(dirname "${baseline}")"
        cp "${out}" "${baseline}"
        echo "baseline rewritten: ${baseline}"
        continue
    fi

    if [[ ! -f "${baseline}" ]]; then
        echo "no committed baseline at ${baseline}; run with --rebaseline first" >&2
        exit 1
    fi

    if [[ "${bench}" == "fig18b_optimizer_time" ]]; then
        # Dual gate: default threshold on the bulk of the suite, the
        # stricter INCR_THRESHOLD on the incremental-path cases.
        python3 bench/compare.py "${baseline}" "${out}" \
            --threshold "${THRESHOLD}" --exclude "${INCR_PATTERN}" || status=$?
        python3 bench/compare.py "${baseline}" "${out}" \
            --threshold "${INCR_THRESHOLD}" --filter "${INCR_PATTERN}" || status=$?
    else
        python3 bench/compare.py "${baseline}" "${out}" --threshold "${THRESHOLD}" || status=$?
    fi
done
exit "${status}"
