#!/usr/bin/env bash
# Bench-regression harness for the liveput decision path (Figure 18b).
#
#   bench/run_benches.sh               run + compare against the
#                                      committed baseline (fails on a
#                                      > $THRESHOLD x regression)
#   bench/run_benches.sh --rebaseline  run + overwrite the baseline
#                                      (do this once per machine, and
#                                      whenever an intentional perf
#                                      change lands)
#
# Emits BENCH_optimizer_time.json (google-benchmark JSON) at the repo
# root; the committed reference lives in bench/baselines/. Builds the
# `release-bench` CMake preset (pure Release) so numbers are not
# polluted by RelWithDebInfo assertions in dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-2.0}"
MIN_TIME="${MIN_TIME:-0.1}"
OUT=BENCH_optimizer_time.json
BASELINE=bench/baselines/BENCH_optimizer_time.json

cmake --preset release-bench >/dev/null
cmake --build --preset release-bench --target fig18b_optimizer_time

./build-release/bench/fig18b_optimizer_time \
    --benchmark_out="${OUT}" \
    --benchmark_out_format=json \
    --benchmark_min_time="${MIN_TIME}"

if [[ "${1:-}" == "--rebaseline" ]]; then
    mkdir -p "$(dirname "${BASELINE}")"
    cp "${OUT}" "${BASELINE}"
    echo "baseline rewritten: ${BASELINE}"
    exit 0
fi

if [[ ! -f "${BASELINE}" ]]; then
    echo "no committed baseline at ${BASELINE}; run with --rebaseline first" >&2
    exit 1
fi

python3 bench/compare.py "${BASELINE}" "${OUT}" --threshold "${THRESHOLD}"
