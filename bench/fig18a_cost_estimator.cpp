// Regenerates Figure 18a: accuracy of the migration cost estimator —
// estimated vs "actual" migration time for every migration executed
// during simulated runs of all five models (the simulator draws the
// actual stall around the estimate with the measured jitter). The
// paper's dashed lines mark a +/-15% relative difference.
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 18a", "cost estimator accuracy");

  TextTable table({"model", "migrations", "mean est (s)", "mean actual (s)",
                   "correlation", "within +/-15%"});
  for (const ModelProfile& model : model_zoo()) {
    std::vector<double> est, actual;
    for (const SpotTrace& trace : all_canonical_segments()) {
      ParcaePolicyOptions options;
      options.cost_noise_stddev = 0.07;
      ParcaePolicy policy(model, options);
      simulate(policy, trace, bench::sim_options(model));
      for (const auto& entry : policy.migration_log()) {
        if (entry.estimated_s <= 0.0) continue;
        est.push_back(entry.estimated_s);
        actual.push_back(entry.actual_s);
      }
    }
    int within = 0;
    for (std::size_t i = 0; i < est.size(); ++i)
      if (std::abs(actual[i] - est[i]) <= 0.15 * est[i]) ++within;
    table.row()
        .add(model.name)
        .add(est.size())
        .add(mean(est), 1)
        .add(mean(actual), 1)
        .add(pearson(est, actual), 3)
        .add(format_double(est.empty() ? 0.0
                                       : 100.0 * within /
                                             static_cast<double>(est.size()),
                           0) +
             "%");
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Figure 18a: estimated vs real reconfiguration times cluster inside "
      "the +/-15% band for all five models");
  return 0;
}
