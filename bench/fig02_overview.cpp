// Regenerates Figure 2: cumulative training progress of GPT-2 on 32
// spot instances under one trace, comparing Parcae, Parcae (Ideal),
// Bamboo, and Varuna. The paper reports Parcae at 2.4x over the
// baselines and 89% of the ideal's efficiency.
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 2", "GPT-2 cumulative progress on a spot trace");
  const ModelProfile model = gpt2_profile();
  const SpotTrace trace = canonical_segment(TraceSegment::kHighAvailDense);

  const SimulationResult parcae =
      bench::run_parcae(model, trace, PredictionMode::kArima);
  const SimulationResult ideal =
      bench::run_parcae(model, trace, PredictionMode::kOracle);
  const SimulationResult varuna = bench::run_varuna(model, trace);
  const SimulationResult bamboo = bench::run_bamboo(model, trace);

  std::printf("cumulative committed tokens (millions) every 5 minutes:\n");
  TextTable table({"minute", "Parcae", "Parcae(Ideal)", "Varuna", "Bamboo"});
  for (std::size_t i = 4; i < parcae.timeline.size(); i += 5) {
    const double scale = model.tokens_per_sample / 1e6;
    table.row()
        .add(static_cast<int>(i + 1))
        .add(parcae.timeline[i].cumulative_samples * scale, 1)
        .add(ideal.timeline[i].cumulative_samples * scale, 1)
        .add(varuna.timeline[i].cumulative_samples * scale, 1)
        .add(bamboo.timeline[i].cumulative_samples * scale, 1);
  }
  std::printf("%s\n", table.to_string().c_str());

  const double best_baseline =
      std::max(varuna.committed_samples, bamboo.committed_samples);
  std::printf("Parcae vs best baseline: %.2fx\n",
              parcae.committed_samples / best_baseline);
  std::printf("Parcae vs Varuna: %.2fx, vs Bamboo: %.2fx\n",
              parcae.committed_samples / varuna.committed_samples,
              parcae.committed_samples / bamboo.committed_samples);
  std::printf("Parcae efficiency of ideal: %.0f%%\n",
              100.0 * parcae.committed_samples / ideal.committed_samples);
  bench::paper_note(
      "Figure 2: Parcae outperforms Bamboo and Varuna by 2.4x and reaches "
      "89% of the ideal (all-knowing) case");
  return 0;
}
