// Regenerates Figure 11: GPT-2 throughput on HA-DP as the prediction
// rate decreases (the optimizer re-runs every 1, 2, 4, or 8 intervals;
// the paper's "prediction rate" of 1 means once per minute).
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 11", "prediction-rate sweep (GPT-2, HA-DP)");
  const ModelProfile model = gpt2_profile();
  const SpotTrace trace = canonical_segment(TraceSegment::kHighAvailDense);

  TextTable table({"re-optimize every (min)", "prediction rate",
                   "Parcae tokens/s", "Ideal tokens/s"});
  for (int every : {1, 2, 4, 8}) {
    ParcaePolicyOptions options;
    options.reoptimize_every = every;
    const SimulationResult parcae =
        bench::run_parcae(model, trace, PredictionMode::kArima, options);
    const SimulationResult ideal =
        bench::run_parcae(model, trace, PredictionMode::kOracle, options);
    table.row()
        .add(every)
        .add(format_double(1.0 / every, 2) + "/min")
        .add(parcae.avg_unit_throughput, 0)
        .add(ideal.avg_unit_throughput, 0);
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Figure 11: throughput decreases as the prediction rate drops; the "
      "liveput optimizer is fast enough (<0.3 s, Fig 18b) to run every "
      "minute");
  return 0;
}
