// Serving-goodput bench (bench/run_benches.sh): two things in one
// binary.
//
// 1. A deterministic policy comparison printed before the benchmark
//    cases run: proactive vs. reactive vs. static serving on the
//    canonical availability segments plus the synthetic full-day
//    trace, MMPP arrivals at 25 rps against GPT-2. Emits one
//    greppable VERDICT line per trace and a SERVE_GOODPUT_GATE
//    summary; the gate requires proactive to beat BOTH baselines on
//    SLO attainment or cost per million good requests on at least two
//    traces, and the binary exits non-zero if it does not. Everything
//    is seeded, so this is a correctness gate, not a flaky perf one.
//
// 2. google-benchmark cases for the serving decision path, gated by
//    bench/compare.py against bench/baselines/BENCH_serve_goodput.json:
//      BM_ServeSim            one proactive interval-loop over LA-SP
//      BM_GoodputOptimize/*   cold solve vs. warm-started re-solve
//      BM_ArrivalGen          MMPP interval preparation (1 day)
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/ondemand_policy.h"
#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "serve/arrival.h"
#include "serve/goodput_optimizer.h"
#include "serve/queue_model.h"
#include "serve/serving_scheduler.h"
#include "serve/serving_sim.h"
#include "trace/spot_trace.h"

namespace parcae::serve {
namespace {

constexpr double kRps = 25.0;
constexpr std::uint64_t kSeed = 123;

ArrivalOptions bench_arrivals() {
  ArrivalOptions a;
  a.kind = ArrivalKind::kMmpp;
  a.seed = kSeed ^ 0xa221ull;
  a.base_rps = kRps;
  return a;
}

ServingSchedulerOptions bench_scheduler(ServingMode mode) {
  ServingSchedulerOptions s;
  s.mode = mode;
  s.seed = kSeed;
  return s;
}

ServingSimResult run_system(ServingMode mode, const SpotTrace& trace) {
  ArrivalGenerator arrivals(bench_arrivals());
  ServingScheduler scheduler(model_by_name("GPT-2"), bench_scheduler(mode),
                             &arrivals);
  const int intervals =
      static_cast<int>(trace.availability_series(60.0).size());
  return simulate_serving(scheduler, arrivals, trace, intervals, {});
}

// The policy comparison the paper's serving extension is judged on.
// Returns the number of traces where proactive beats both baselines.
int run_comparison() {
  std::vector<SpotTrace> traces = {canonical_segment(TraceSegment::kHighAvailDense),
                                   canonical_segment(TraceSegment::kLowAvailSparse),
                                   full_day_trace()};
  std::printf(
      "%-10s %-10s %10s %10s %10s %12s %8s\n", "trace", "system",
      "goodput", "attain%", "p99_ms", "usd_per_1M", "reconfig");
  int wins = 0;
  for (const SpotTrace& trace : traces) {
    const ServingSimResult pro = run_system(ServingMode::kProactive, trace);
    const ServingSimResult rea = run_system(ServingMode::kReactive, trace);
    const ServingSimResult sta = run_system(ServingMode::kStatic, trace);
    for (const ServingSimResult* r : {&pro, &rea, &sta})
      std::printf("%-10s %-10s %10.2f %10.2f %10.1f %12.2f %8d\n",
                  r->trace.c_str(), r->policy.c_str(), r->goodput_rps,
                  100.0 * r->slo_attainment, r->p99_ms,
                  r->cost_per_million_usd, r->config_changes);
    const bool slo_win = pro.slo_attainment > rea.slo_attainment &&
                         pro.slo_attainment > sta.slo_attainment;
    const bool cost_win =
        std::isfinite(pro.cost_per_million_usd) &&
        pro.cost_per_million_usd < rea.cost_per_million_usd &&
        pro.cost_per_million_usd < sta.cost_per_million_usd;
    if (slo_win || cost_win) ++wins;
    std::printf(
        "VERDICT trace=%s slo_win=%d cost_win=%d "
        "attain_pro=%.4f attain_rea=%.4f attain_sta=%.4f\n",
        pro.trace.c_str(), slo_win ? 1 : 0, cost_win ? 1 : 0,
        pro.slo_attainment, rea.slo_attainment, sta.slo_attainment);
  }
  std::printf("SERVE_GOODPUT_GATE: %s (%d/%zu traces)\n",
              wins >= 2 ? "PASS" : "FAIL", wins, traces.size());
  return wins;
}

// --- google-benchmark cases -------------------------------------------

// Full proactive serving loop (predict, DP solve, migrate, event-level
// queue replay) over the sparse low-availability segment.
void BM_ServeSim(benchmark::State& state) {
  const SpotTrace trace = canonical_segment(TraceSegment::kLowAvailSparse);
  const ModelProfile model = model_by_name("GPT-2");
  const int intervals =
      static_cast<int>(trace.availability_series(60.0).size());
  for (auto _ : state) {
    ArrivalGenerator arrivals(bench_arrivals());
    ServingScheduler scheduler(model, bench_scheduler(ServingMode::kProactive),
                               &arrivals);
    const ServingSimResult r =
        simulate_serving(scheduler, arrivals, trace, intervals, {});
    benchmark::DoNotOptimize(r.goodput_rps);
  }
  state.SetItemsProcessed(state.iterations() * intervals);
}
BENCHMARK(BM_ServeSim)->Unit(benchmark::kMillisecond);

struct DpFixture {
  ModelProfile model = model_by_name("GPT-2");
  ThroughputModel tp{model, ThroughputModelOptions{}};
  ReplicaQueueModel qm{&tp, ServingModelOptions{}};
};

// Cold solve: the value table is invalidated every iteration, so the
// DP re-expands every column. This is the serving analogue of the
// training optimizer's cold case in fig18b_optimizer_time.
void BM_GoodputOptimize_Cold(benchmark::State& state) {
  DpFixture f;
  GoodputOptimizerOptions opt;
  opt.mc_trials = 64;
  opt.seed = 11;
  GoodputOptimizer dp(&f.qm, CostEstimator(f.model), opt);
  const std::vector<int> n(12, 12);
  const std::vector<double> rps(12, kRps);
  for (auto _ : state) {
    dp.invalidate();
    GoodputPlan plan = dp.optimize(kIdleConfig, n[0], n, rps);
    benchmark::DoNotOptimize(plan.expected_good_requests);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoodputOptimize_Cold)->Unit(benchmark::kMicrosecond);

// Warm re-solve with one changed input: the incremental path reuses
// the unchanged prefix. This bounds the per-tick decision latency.
void BM_GoodputOptimize_Warm(benchmark::State& state) {
  DpFixture f;
  GoodputOptimizerOptions opt;
  opt.mc_trials = 64;
  opt.seed = 11;
  GoodputOptimizer dp(&f.qm, CostEstimator(f.model), opt);
  std::vector<int> n(12, 12);
  const std::vector<double> rps(12, kRps);
  GoodputPlan plan = dp.optimize(kIdleConfig, n[0], n, rps);
  ParallelConfig current = plan.next();
  int tick = 0;
  for (auto _ : state) {
    n.back() = 10 + (tick++ % 5);  // churn only the horizon tail
    plan = dp.optimize(current, n[0], n, rps);
    benchmark::DoNotOptimize(plan.expected_good_requests);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoodputOptimize_Warm)->Unit(benchmark::kMicrosecond);

// One simulated day of MMPP interval preparation (the serial chain
// walk that every thread's arrivals() replays deterministically).
void BM_ArrivalGen(benchmark::State& state) {
  for (auto _ : state) {
    ArrivalGenerator arrivals(bench_arrivals());
    arrivals.prepare(1440);
    benchmark::DoNotOptimize(arrivals.total_requests(1440));
  }
  state.SetItemsProcessed(state.iterations() * 1440);
}
BENCHMARK(BM_ArrivalGen)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parcae::serve

int main(int argc, char** argv) {
  const int wins = parcae::serve::run_comparison();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return wins >= 2 ? 0 : 1;
}
