// One-shot summary: runs the full evaluation matrix (5 models x 4
// traces x 5 systems) and writes a Markdown report next to the text
// output — the whole §10.2 comparison as a single artifact.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "analysis/experiment.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"

using namespace parcae;

int main() {
  bench::header("Summary", "full evaluation matrix");
  MatrixOptions options;
  const int threads = ThreadPool::resolve(options.threads);
  std::printf("decision threads: %d (PARCAE_THREADS overrides; cells are "
              "bit-identical at any count)\n\n",
              threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto cells = run_matrix(options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto summary = summarize(cells);

  TextTable table({"system", "cells", "no progress", "Parcae speedup",
                   "avg effective GPU-h %"});
  for (const auto& s : summary)
    table.row()
        .add(s.system)
        .add(s.cells)
        .add(s.cells_no_progress)
        .add(format_double(s.parcae_speedup_geomean, 2) + "x")
        .add(100.0 * s.avg_effective_share, 0);
  std::printf("%s\n", table.to_string().c_str());

  const std::string markdown = matrix_to_markdown(cells, summary);
  std::ofstream out("summary_report.md");
  out << markdown;
  std::printf("full matrix written to summary_report.md (%zu cells, "
              "%.1f s wall-clock on %d threads)\n",
              cells.size(), wall_s, threads);
  bench::paper_note(
      "aggregates §10.2: Parcae dominates every baseline in geometric "
      "mean and is the only system with zero no-progress cells");
  return 0;
}
