// One-shot summary: runs the full evaluation matrix (5 models x 4
// traces x 5 systems) and writes a Markdown report next to the text
// output — the whole §10.2 comparison as a single artifact.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "analysis/experiment.h"
#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "nn/dataset.h"
#include "runtime/spot_driver.h"

using namespace parcae;

int main() {
  bench::header("Summary", "full evaluation matrix");
  MatrixOptions options;
  const int threads = ThreadPool::resolve(options.threads);
  std::printf("decision threads: %d (PARCAE_THREADS overrides; cells are "
              "bit-identical at any count)\n\n",
              threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto cells = run_matrix(options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto summary = summarize(cells);

  TextTable table({"system", "cells", "no progress", "Parcae speedup",
                   "avg effective GPU-h %"});
  for (const auto& s : summary)
    table.row()
        .add(s.system)
        .add(s.cells)
        .add(s.cells_no_progress)
        .add(format_double(s.parcae_speedup_geomean, 2) + "x")
        .add(100.0 * s.avg_effective_share, 0);
  std::printf("%s\n", table.to_string().c_str());

  const std::string markdown = matrix_to_markdown(cells, summary);
  std::ofstream out("summary_report.md");
  out << markdown;
  std::printf("full matrix written to summary_report.md (%zu cells, "
              "%.1f s wall-clock on %d threads)\n",
              cells.size(), wall_s, threads);
  bench::paper_note(
      "aggregates §10.2: Parcae dominates every baseline in geometric "
      "mean and is the only system with zero no-progress cells");

  // §8 robustness: chaos-run the real runtime under fault injection
  // and report what it survived alongside the evaluation matrix.
  FaultInjector faults(2026);
  faults.arm_from_spec(
      "cluster.kill_mid_iteration:nth=5,max=2;"
      "cluster.kill_mid_migration:nth=3,max=1;"
      "ps.push:prob=0.05;kv.put:prob=0.02");
  const auto ds = nn::make_blobs(256, 12, 4, 0.5, 9);
  TrainingClusterOptions cluster;
  cluster.layer_sizes = {12, 32, 4};
  cluster.epoch_size = ds.size();
  cluster.batch_size = 32;
  cluster.initial_instances = 0;
  Rng chaos_rng(12);
  SyntheticTraceOptions chaos_trace;
  chaos_trace.capacity = 8;
  chaos_trace.target_availability = 6.0;
  chaos_trace.preemption_events = 10;
  chaos_trace.duration_s = 30 * 60.0;
  SpotDriverOptions driver_options;
  driver_options.faults = &faults;
  SpotTrainingDriver driver(cluster, &ds, driver_options);
  const SpotDriverReport chaos =
      driver.run(synthesize_trace(chaos_trace, chaos_rng));
  std::printf(
      "\nrobustness (chaos run): %lld faults injected; survived %lld "
      "unpredicted kills (%lld mid-iteration), %lld aborted migrations, "
      "%lld PS push retries, %lld lease expirations; replicas consistent: "
      "%s\n",
      chaos.faults_injected, chaos.unpredicted_kills_survived,
      chaos.mid_iteration_kills, chaos.migrations_aborted,
      chaos.ps_push_retries, chaos.lease_expirations,
      chaos.replicas_always_consistent ? "yes" : "NO");
  return 0;
}
