// One-shot summary: runs the full evaluation matrix (5 models x 4
// traces x 5 systems) and writes a Markdown report next to the text
// output — the whole §10.2 comparison as a single artifact.
#include <cstdio>
#include <fstream>

#include "analysis/experiment.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Summary", "full evaluation matrix");
  const auto cells = run_matrix({});
  const auto summary = summarize(cells);

  TextTable table({"system", "cells", "no progress", "Parcae speedup",
                   "avg effective GPU-h %"});
  for (const auto& s : summary)
    table.row()
        .add(s.system)
        .add(s.cells)
        .add(s.cells_no_progress)
        .add(format_double(s.parcae_speedup_geomean, 2) + "x")
        .add(100.0 * s.avg_effective_share, 0);
  std::printf("%s\n", table.to_string().c_str());

  const std::string markdown = matrix_to_markdown(cells, summary);
  std::ofstream out("summary_report.md");
  out << markdown;
  std::printf("full matrix written to summary_report.md (%zu cells)\n",
              cells.size());
  bench::paper_note(
      "aggregates §10.2: Parcae dominates every baseline in geometric "
      "mean and is the only system with zero no-progress cells");
  return 0;
}
