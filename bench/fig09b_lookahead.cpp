// Regenerates Figure 9b: GPT-2 training throughput as a function of
// the look-ahead window (1, 4, 8, 12, 14 intervals) for Parcae (ARIMA
// forecasts) and Parcae (Ideal, true future).
//
// Reported on two trace regimes. The paper's collected HA-DP has
// multi-interval availability ramps that reward long look-ahead; our
// Table-1-exact HA-DP reconstruction is mean-reverting (brief dips),
// where holding the current configuration is near-optimal at any
// horizon — the look-ahead benefit appears on the ramping LA-DP
// segment instead, and the prediction-error decline at long horizons
// appears on both.
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 9b", "look-ahead interval sweep (GPT-2)");
  const ModelProfile model = gpt2_profile();

  for (TraceSegment segment :
       {TraceSegment::kLowAvailDense, TraceSegment::kHighAvailDense}) {
    const SpotTrace trace = canonical_segment(segment);
    std::printf("trace %s:\n", trace.name().c_str());
    TextTable table({"look-ahead", "Parcae tokens/s", "Ideal tokens/s",
                     "Parcae/Ideal %"});
    double ideal_at_1 = 0.0, ideal_at_12 = 0.0;
    for (int lookahead : {1, 4, 8, 12, 14}) {
      ParcaePolicyOptions options;
      options.lookahead = lookahead;
      const SimulationResult parcae =
          bench::run_parcae(model, trace, PredictionMode::kArima, options);
      const SimulationResult ideal =
          bench::run_parcae(model, trace, PredictionMode::kOracle, options);
      if (lookahead == 1) ideal_at_1 = ideal.avg_unit_throughput;
      if (lookahead == 12) ideal_at_12 = ideal.avg_unit_throughput;
      table.row()
          .add(lookahead)
          .add(parcae.avg_unit_throughput, 0)
          .add(ideal.avg_unit_throughput, 0)
          .add(100.0 * parcae.committed_samples / ideal.committed_samples,
               1);
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("ideal at look-ahead 12 vs 1: %.2fx\n\n",
                ideal_at_12 / ideal_at_1);
  }
  bench::paper_note(
      "Figure 9b: the ideal keeps improving with longer look-ahead (best "
      "at 12); Parcae gains sharply from 1 to 4, peaks around 12, and "
      "prediction error erodes longer horizons (~12.8% below ideal)");
  return 0;
}
