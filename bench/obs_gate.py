#!/usr/bin/env python3
"""Observability-overhead gate over BENCH_obs_overhead.json.

Usage:
    obs_gate.py BENCH_obs_overhead.json [--max-overhead 0.05]

Reads the paired simulate benchmarks (BM_SimulateBare vs
BM_SimulateObserved) from one google-benchmark JSON file and fails
when the fully-instrumented run (metrics + trace ids + time series +
SLO engine) costs more than --max-overhead over the bare run. Unlike
bench/compare.py this is machine-independent — both numbers come from
the same process on the same machine — so the 5% contract holds on any
hardware without a committed baseline.
"""
import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (b["real_time"] *
                          UNIT_NS.get(b.get("time_unit", "ns"), 1.0))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="maximum fractional slowdown of the "
                             "observed run over bare (default 0.05)")
    args = parser.parse_args()

    times = load(args.results)
    try:
        bare = times["BM_SimulateBare"]
        observed = times["BM_SimulateObserved"]
    except KeyError as missing:
        print(f"obs_gate.py: {args.results} is missing {missing}",
              file=sys.stderr)
        return 2

    overhead = observed / bare - 1.0
    verdict = "OK" if overhead <= args.max_overhead else "FAIL"
    print(f"obs_gate.py: bare {bare / 1e6:.2f} ms, "
          f"observed {observed / 1e6:.2f} ms, "
          f"overhead {overhead * 100:+.2f}% "
          f"(limit {args.max_overhead * 100:.0f}%) {verdict}")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
