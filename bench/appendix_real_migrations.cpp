// Appendix-A companion: wall-clock cost of *real* migrations executed
// by the in-process TrainingCluster (actual parameter and optimizer
// state movement on the laptop-scale model), per migration kind. The
// absolute numbers are microseconds, not the paper's seconds — what
// carries over is the data-movement ordering the cost estimator
// assumes: intra-stage < inter-stage < pipeline re-shard. (The PS
// rollback is a same-depth restore: in-process it is a memcpy; the
// real system additionally pays the network pull from the PS hosts,
// which the cost estimator charges separately.)
#include <chrono>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "nn/dataset.h"
#include "runtime/training_cluster.h"

using namespace parcae;

namespace {

double time_us(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::header("Appendix A (real-math)",
                "wall-clock of actual migrations on the agent cluster");
  const auto dataset = nn::make_blobs(256, 16, 5, 0.5, 5150);
  TrainingClusterOptions options;
  options.layer_sizes = {16, 96, 64, 5};  // ~8k parameters
  options.epoch_size = dataset.size();
  options.batch_size = 32;
  options.initial_instances = 12;

  RunningStats intra, inter, pipeline, rollback;
  const int rounds = 40;
  for (int round = 0; round < rounds; ++round) {
    TrainingCluster cluster(options, &dataset);
    cluster.reconfigure({3, 3});
    for (int it = 0; it < 3; ++it) cluster.train_iteration();

    // Intra-stage: drop a pipeline after losing one replica.
    int victim = -1;
    for (const auto& agent : cluster.agents())
      if (agent.assigned() && agent.pipeline == 2 && agent.stage == 0)
        victim = agent.id;
    cluster.preempt({victim});
    intra.add(time_us([&] { cluster.reconfigure({2, 3}); }));

    // Inter-stage: lose a replica, refill from a spare.
    victim = -1;
    for (const auto& agent : cluster.agents())
      if (agent.assigned() && agent.pipeline == 1 && agent.stage == 1)
        victim = agent.id;
    cluster.preempt({victim});
    inter.add(time_us([&] { cluster.reconfigure({2, 3}); }));

    // Pipeline migration: re-shard to a different depth.
    pipeline.add(time_us([&] { cluster.reconfigure({3, 2}); }));

    // Rollback: wipe a whole stage, restore from ParcaePS.
    std::vector<int> stage_victims;
    for (const auto& agent : cluster.agents())
      if (agent.assigned() && agent.stage == 1)
        stage_victims.push_back(agent.id);
    cluster.preempt(stage_victims);
    rollback.add(time_us([&] { cluster.reconfigure({2, 2}); }));
  }

  TextTable table({"migration", "mean (us)", "min", "max"});
  auto row = [&](const char* name, const RunningStats& s) {
    table.row().add(name).add(s.mean(), 1).add(s.min(), 1).add(s.max(), 1);
  };
  row("intra-stage", intra);
  row("inter-stage", inter);
  row("pipeline re-shard", pipeline);
  row("PS rollback", rollback);
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Table 4's data-movement ordering (routing-only < state copy < "
      "re-shard) reproduced with real state movement; the rollback's "
      "network pull from the PS hosts is charged by the cost estimator, "
      "not visible in-process");
  return 0;
}
