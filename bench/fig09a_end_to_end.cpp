// Regenerates Figure 9a (and Figure 17, the VGG-19 panel): end-to-end
// training throughput of every model on every trace segment for
// Varuna, Bamboo, Parcae, and Parcae (Ideal), with the on-demand
// throughput as the reference line and the paper's speedup labels.
// Also prints Table 5 (Bamboo's fixed parallel configurations).
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 9a / Figure 17",
                "end-to-end throughput, 5 models x 4 traces");

  TextTable table({"model", "trace", "unit", "Varuna", "Bamboo", "Parcae",
                   "Parcae(Ideal)", "On-Demand", "vs Varuna", "vs Bamboo",
                   "% of ideal"});
  for (const ModelProfile& model : model_zoo()) {
    const SimulationResult ondemand =
        bench::run_ondemand(model, 3600.0);
    for (const SpotTrace& trace : all_canonical_segments()) {
      const SimulationResult varuna = bench::run_varuna(model, trace);
      const SimulationResult bamboo = bench::run_bamboo(model, trace);
      const SimulationResult parcae =
          bench::run_parcae(model, trace, PredictionMode::kArima);
      const SimulationResult ideal =
          bench::run_parcae(model, trace, PredictionMode::kOracle);
      auto speedup = [&](const SimulationResult& base) {
        return base.committed_samples > 0.0
                   ? format_double(
                         parcae.committed_samples / base.committed_samples,
                         1) + "x"
                   : std::string("inf");
      };
      table.row()
          .add(model.name)
          .add(trace.name())
          .add(model.sample_unit + "/s")
          .add(varuna.avg_unit_throughput, 0)
          .add(bamboo.avg_unit_throughput, 0)
          .add(parcae.avg_unit_throughput, 0)
          .add(ideal.avg_unit_throughput, 0)
          .add(ondemand.avg_unit_throughput, 0)
          .add(speedup(varuna))
          .add(speedup(bamboo))
          .add(100.0 * parcae.committed_samples /
                   std::max(1.0, ideal.committed_samples),
               0);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Figure 9a: Parcae outperforms Varuna/Bamboo on almost all "
      "model-trace pairs (avg 2.59x over Varuna, 3.02x over Bamboo; up to "
      "9.9x/10.8x on GPT-3); Varuna is closest on LA-SP (sparse "
      "preemptions favor checkpointing)");
  bench::paper_note(
      "Figure 17: VGG-19 rows — Varuna achieves comparable performance to "
      "Parcae on LA-SP");

  bench::header("Table 5", "Bamboo's fixed parallel configurations");
  TextTable t5({"Model", "D (at 32 instances)", "P"});
  for (const ModelProfile& model : model_zoo()) {
    const int p = bamboo_table5_depth(model);
    t5.row().add(model.name).add(32 / p).add(p);
  }
  std::printf("%s\n", t5.to_string().c_str());
  bench::paper_note("Table 5: D/P = 8/4, 8/4, 4/8, 2/16, 1/23");
  return 0;
}
