// Regenerates Figure 14: Parcae (proactive) vs Parcae-Reactive on
// synthetic traces that scale preemption intensity from 3 to 30
// events per hour while holding availability roughly constant
// (derived from the HA-SP regime, as in §10.4).
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 14",
                "proactive vs reactive under scaled preemption intensity");
  const ModelProfile model = gpt2_profile();

  TextTable table({"preemptions/h", "Proactive tokens/s", "Reactive tokens/s",
                   "gap %"});
  double low_gap = 0.0, high_gap = 0.0;
  for (int events : {3, 6, 12, 18, 24, 30}) {
    // Average a few seeds so the trend is not an artifact of one
    // random event placement.
    double proactive = 0.0, reactive = 0.0;
    const int seeds = 3;
    for (int s = 0; s < seeds; ++s) {
      Rng rng(1000 + 17 * static_cast<unsigned>(events) + s);
      SyntheticTraceOptions options;
      options.preemption_events = events;
      options.target_availability = 30.0;
      const SpotTrace trace = synthesize_trace(options, rng);
      proactive += bench::run_parcae(model, trace, PredictionMode::kArima)
                       .avg_unit_throughput;
      reactive += bench::run_parcae(model, trace, PredictionMode::kReactive)
                      .avg_unit_throughput;
    }
    proactive /= seeds;
    reactive /= seeds;
    const double gap = 100.0 * (proactive / reactive - 1.0);
    if (events == 3) low_gap = gap;
    if (events == 30) high_gap = gap;
    table.row()
        .add(events)
        .add(proactive, 0)
        .add(reactive, 0)
        .add(gap, 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("gap at 3 events: %.1f%%, at 30 events: %.1f%%\n", low_gap,
              high_gap);
  bench::paper_note(
      "Figure 14: the proactive/reactive gap widens as preemption "
      "intensity grows — proactive liveput optimization matters most "
      "under frequent preemptions");
  return 0;
}
