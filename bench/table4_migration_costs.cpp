// Regenerates Table 4 (Appendix A): the migration cost terms and
// their magnitudes, averaged over the five DNN models, per migration
// strategy.
#include <algorithm>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "migration/cost_model.h"
#include "model/memory_model.h"

using namespace parcae;

int main() {
  bench::header("Table 4", "migration cost terms (seconds)");

  struct TermStats {
    RunningStats start, rendezvous, cuda, data, build, comm, transfer;
  } agg;

  TextTable per_model({"model", "strategy", "start", "rendezvous",
                       "cuda-init", "load-data", "build-model", "comm-groups",
                       "state-transfer", "total"});
  for (const ModelProfile& model : model_zoo()) {
    const CostEstimator est(model);
    const int min_p =
        std::max(1, MemoryModel(model, MemorySpec::parcae())
                        .min_feasible_depth());
    const int p = std::min(model.partition_units, std::max(4, min_p));
    const ParallelConfig to{std::max(1, 24 / p), p};
    struct Named {
      const char* name;
      MigrationCostTerms terms;
    };
    const Named strategies[] = {
        {"intra-stage", est.intra_stage(to)},
        {"inter-stage", est.inter_stage(to, 3)},
        {"pipeline", est.pipeline_migration({1, std::min(
                                                    model.partition_units,
                                                    p + 1)},
                                            to)},
        {"instance-join", est.instance_join(to)},
        {"PS-rollback", est.checkpoint_rollback(to)},
    };
    for (const auto& [name, t] : strategies) {
      per_model.row()
          .add(model.name)
          .add(name)
          .add(t.start_process_s, 1)
          .add(t.rendezvous_s, 1)
          .add(t.cuda_init_s, 1)
          .add(t.load_data_s, 1)
          .add(t.build_model_s, 1)
          .add(t.comm_groups_s, 1)
          .add(t.state_transfer_s, 1)
          .add(t.total(), 1);
      agg.start.add(t.start_process_s);
      agg.rendezvous.add(t.rendezvous_s);
      agg.cuda.add(t.cuda_init_s);
      agg.data.add(t.load_data_s);
      agg.build.add(t.build_model_s);
      agg.comm.add(t.comm_groups_s);
      agg.transfer.add(t.state_transfer_s);
    }
  }
  std::printf("%s\n", per_model.to_string().c_str());

  TextTable summary({"Cost term", "magnitude (s)", "paper's range"});
  auto range = [](const RunningStats& s) {
    return format_double(s.min(), 1) + " ~ " + format_double(s.max(), 1);
  };
  summary.row().add("Start process").add(range(agg.start)).add("< 1");
  summary.row().add("Rendezvous").add(range(agg.rendezvous)).add("0 ~ 10");
  summary.row().add("Init CUDA context").add(range(agg.cuda)).add("0 ~ 10");
  summary.row().add("Load data").add(range(agg.data)).add("0 ~ 10");
  summary.row().add("Build model").add(range(agg.build)).add("0 ~ 10");
  summary.row().add("Update comm. groups").add(range(agg.comm)).add("0 ~ 20");
  summary.row()
      .add("Model states transfer")
      .add(range(agg.transfer))
      .add("0 ~ 60");
  std::printf("%s\n", summary.to_string().c_str());
  bench::paper_note(
      "Table 4: term magnitudes profiled on AWS, averaged over the five "
      "models — transfer dominates and varies with preemption scenario");
  return 0;
}
