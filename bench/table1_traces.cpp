// Regenerates Table 1 (the four evaluated trace segments and their
// statistics) and the Figure-8 availability series.
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Table 1 / Figure 8", "trace segments and availability");

  TextTable table({"Trace", "Availability", "Preemption intensity",
                   "#avg instances", "#preemption events",
                   "#allocation events", "length"});
  for (const SpotTrace& trace : all_canonical_segments()) {
    const TraceStats s = trace.stats();
    const bool high = s.avg_instances > 32 * 0.7;
    const bool dense = s.preemption_events + s.allocation_events >= 15;
    table.row()
        .add(trace.name())
        .add(high ? "High" : "Low")
        .add(dense ? "Dense" : "Sparse")
        .add(s.avg_instances, 2)
        .add(s.preemption_events)
        .add(s.allocation_events)
        .add("1h");
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Table 1: avg 27.05/29.63/16.82/14.60, preemptions 9/6/8/3, "
      "allocations 8/5/12/0 (matched exactly)");

  std::printf("\nFigure 8 series (instances per minute):\n");
  for (const SpotTrace& trace : all_canonical_segments()) {
    std::printf("%-6s:", trace.name().c_str());
    for (int n : trace.availability_series()) std::printf(" %d", n);
    std::printf("\n");
  }
  const SpotTrace day = full_day_trace();
  const TraceStats ds = day.stats();
  std::printf(
      "\nfull 12h trace: avg %.2f instances, %d preemption events, %d "
      "allocation events\n",
      ds.avg_instances, ds.preemption_events, ds.allocation_events);
  bench::paper_note("Figure 8: 12-hour, 32-instance p3.2xlarge spot trace");
  return 0;
}
