// Regenerates Figure 10: BERT training throughput and monetary cost
// for Parcae on single-GPU instances (Parcae-S) vs 4-GPU instances
// (Parcae-M), with the multi-GPU trace derived per §10.2 (which
// favors the multi-GPU setting in total GPU hours).
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 10", "single- vs multi-GPU instances (BERT)");
  const ModelProfile model = bert_large_profile();
  const ModelProfile node_model = as_multi_gpu_node(model, 4);

  TextTable table({"trace", "Parcae-S tokens/s", "Parcae-M tokens/s",
                   "S cost (1e-8 USD/token)", "M cost (1e-8 USD/token)"});
  for (const SpotTrace& trace : all_canonical_segments()) {
    const SimulationResult single =
        bench::run_parcae(model, trace, PredictionMode::kArima);

    const SpotTrace nodes = derive_multi_gpu_trace(trace, 4);
    ParcaePolicyOptions options;
    options.mode = PredictionMode::kArima;
    ParcaePolicy policy(node_model, options);
    SimulationOptions sim = bench::sim_options(node_model);
    sim.gpus_per_instance = 4;
    const SimulationResult multi = simulate(policy, nodes, sim);

    table.row()
        .add(trace.name())
        .add(single.avg_unit_throughput, 0)
        .add(multi.avg_unit_throughput, 0)
        .add(single.cost_per_unit * 1e8, 2)
        .add(multi.cost_per_unit * 1e8, 2);
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Figure 10: Parcae-S beats Parcae-M on both throughput and cost — "
      "one 4-GPU preemption interrupts 4 pipelines and idle 4-GPU "
      "instances waste 4x the capacity");
  return 0;
}
