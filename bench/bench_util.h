// Shared helpers for the benchmark harnesses that regenerate the
// paper's tables and figures. Each bench prints a `paper:` reference
// line per result so EXPERIMENTS.md can record paper-vs-measured.
#pragma once

#include <cstdio>
#include <string>

#include "baselines/bamboo_policy.h"
#include "baselines/ondemand_policy.h"
#include "baselines/varuna_policy.h"
#include "model/model_profile.h"
#include "runtime/cluster_sim.h"
#include "runtime/parcae_policy.h"
#include "trace/spot_trace.h"

namespace parcae::bench {

inline SimulationOptions sim_options(const ModelProfile& m,
                                     bool ondemand = false) {
  SimulationOptions options;
  options.units_per_sample = m.tokens_per_sample;
  options.instances_are_ondemand = ondemand;
  return options;
}

inline SimulationResult run_parcae(const ModelProfile& m,
                                   const SpotTrace& trace,
                                   PredictionMode mode,
                                   ParcaePolicyOptions options = {}) {
  options.mode = mode;
  ParcaePolicy policy(m, options, &trace);
  return simulate(policy, trace, sim_options(m));
}

inline SimulationResult run_varuna(const ModelProfile& m,
                                   const SpotTrace& trace) {
  VarunaPolicy policy(m);
  return simulate(policy, trace, sim_options(m));
}

inline SimulationResult run_bamboo(const ModelProfile& m,
                                   const SpotTrace& trace) {
  BambooPolicy policy(m);
  return simulate(policy, trace, sim_options(m));
}

inline SimulationResult run_ondemand(const ModelProfile& m,
                                     double duration_s,
                                     int instances = 32) {
  OnDemandPolicy policy(m);
  return simulate(policy, flat_trace(instances, duration_s),
                  sim_options(m, /*ondemand=*/true));
}

inline void header(const char* id, const char* what) {
  std::printf("==== %s: %s ====\n", id, what);
}

inline void paper_note(const char* note) { std::printf("paper: %s\n", note); }

}  // namespace parcae::bench
