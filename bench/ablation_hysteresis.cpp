// Ablation: the voluntary depth-change hysteresis (see
// ParcaePolicyOptions). Without it, forecast noise makes the policy
// thrash between pipeline depths (the §10.4 reactive pathology); too
// much of it freezes the configuration and forgoes real improvements.
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Ablation", "depth-change hysteresis threshold");
  const ModelProfile model = gpt2_profile();

  TextTable table({"hysteresis", "HA-DP tokens (M)", "LA-DP tokens (M)",
                   "LA-SP tokens (M)"});
  for (double h : {0.0, 0.05, 0.15, 0.30, 0.60}) {
    ParcaePolicyOptions options;
    options.depth_change_hysteresis = h;
    auto run = [&](TraceSegment segment) {
      return bench::run_parcae(model, canonical_segment(segment),
                               PredictionMode::kArima, options)
                 .committed_units /
             1e6;
    };
    table.row()
        .add(h, 2)
        .add(run(TraceSegment::kHighAvailDense), 1)
        .add(run(TraceSegment::kLowAvailDense), 1)
        .add(run(TraceSegment::kLowAvailSparse), 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "design ablation (DESIGN.md): a moderate threshold (~0.15) suppresses "
      "forecast-noise thrash; the paper's case study shows the same "
      "behaviour qualitatively (Parcae holds depth 7 for 8 intervals)");
  return 0;
}
