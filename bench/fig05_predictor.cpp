// Regenerates Figure 5: (a) normalized L1 forecast error of ARIMA vs
// the lightweight statistical baselines (H = 12), and (b) the
// ARIMA-predicted trajectory against the ground-truth trace (I = 4).
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "predict/adaptive.h"
#include "predict/arima.h"
#include "predict/evaluation.h"
#include "predict/guards.h"
#include "predict/predictor.h"

using namespace parcae;

int main() {
  bench::header("Figure 5a", "availability predictor comparison (H=12)");

  std::vector<std::unique_ptr<AvailabilityPredictor>> predictors;
  predictors.push_back(make_parcae_predictor(32.0));  // guarded ARIMA
  predictors.push_back(std::make_unique<NaivePredictor>());
  predictors.push_back(std::make_unique<MovingAveragePredictor>(8));
  predictors.push_back(std::make_unique<ExponentialSmoothingPredictor>(0.4));
  predictors.push_back(std::make_unique<HoltPredictor>());
  predictors.push_back(std::make_unique<LinearTrendPredictor>());
  predictors.push_back(std::make_unique<DriftPredictor>());
  {
    std::vector<std::unique_ptr<AvailabilityPredictor>> members;
    members.push_back(make_parcae_predictor(32.0));
    members.push_back(std::make_unique<NaivePredictor>());
    members.push_back(std::make_unique<MovingAveragePredictor>(8));
    predictors.push_back(
        std::make_unique<MedianEnsemblePredictor>(std::move(members)));
  }
  predictors.push_back(AdaptivePredictor::standard_pool(32.0));

  std::vector<std::string> header{"predictor"};
  for (const SpotTrace& trace : all_canonical_segments())
    header.push_back(trace.name());
  header.push_back("12h trace");
  header.push_back("drift trace");
  TextTable table(std::move(header));

  const SpotTrace day = full_day_trace();
  const SpotTrace drift = synthesize_drift_trace({});
  for (const auto& predictor : predictors) {
    auto& row = table.row().add(predictor->name());
    for (const SpotTrace& trace : all_canonical_segments()) {
      const auto eval = evaluate_predictor(
          *predictor, trace.availability_series_d(), 12, 12);
      row.add(eval.normalized_l1, 4);
    }
    for (const SpotTrace* t : {&day, &drift}) {
      const auto eval =
          evaluate_predictor(*predictor, t->availability_series_d(), 12, 12);
      row.add(eval.normalized_l1, 4);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "Figure 5a: ARIMA has the lowest normalized L1 distance among the "
      "lightweight predictors (lower is better)");
  std::printf(
      "note: the Table-1-matched segments are piecewise-constant with "
      "independent jumps, for which last-value carry is Bayes-optimal; on "
      "the drift trace (gradual drains/refills, the regime of the paper's "
      "collected trace) ARIMA leads as in the paper.\n");

  bench::header("Figure 5b", "ARIMA-predicted trace vs ground truth (I=4)");
  const SpotTrace trace = canonical_segment(TraceSegment::kHighAvailDense);
  const auto series = trace.availability_series_d();
  auto arima = make_parcae_predictor(32.0);
  const auto predicted = predicted_trajectory(*arima, series, 12, 12, 4);
  TextTable traj({"minute", "actual", "ARIMA"});
  for (std::size_t i = 0; i < series.size(); i += 2)
    traj.row()
        .add(static_cast<int>(i))
        .add(series[i], 0)
        .add(predicted[i], 1);
  std::printf("%s\n", traj.to_string().c_str());
  bench::paper_note(
      "Figure 5b: the ARIMA forecast faithfully follows the tendency of "
      "instance availability");
  return 0;
}
