// FleetArbiter microbenchmarks for the bench-regression harness
// (bench/run_benches.sh): the per-interval arbitration pass at fleet
// sizes of 10, 50 and 100 jobs over a churning pool. This is the
// decision-path cost a fleet scheduler pays every interval boundary —
// it must stay far below the 60 s interval, and it must not regress
// when the arbitration heuristics evolve.
#include <benchmark/benchmark.h>

#include <vector>

#include "fleet/fleet_arbiter.h"
#include "model/model_profile.h"
#include "parallel/throughput_model.h"

namespace parcae::fleet {
namespace {

// The standard heterogeneous mix (fleet_sim's standard_fleet): models
// cycle GPT-2 / BERT-Large / ResNet-152 / VGG-19, weights 1/2/1/0.5.
std::vector<ArbiterJobSpec> bench_fleet(int num_jobs, int capacity) {
  const ModelProfile profiles[] = {gpt2_profile(), bert_large_profile(),
                                   resnet152_profile(), vgg19_profile()};
  const double weights[] = {1.0, 2.0, 1.0, 0.5};
  // Value tables are per-model; build each once and reuse.
  JobValueTable tables[4];
  for (int m = 0; m < 4; ++m)
    tables[m] =
        value_table_from_model(ThroughputModel(profiles[m], {}), capacity);
  std::vector<ArbiterJobSpec> jobs(static_cast<std::size_t>(num_jobs));
  for (int j = 0; j < num_jobs; ++j) {
    jobs[j].job_id = j;
    jobs[j].weight = weights[j % 4];
    jobs[j].values = tables[j % 4];
  }
  return jobs;
}

// One rebalance per pool level of a deterministic churn pattern that
// exercises all three paths (shrink-arbitration, growth water-fill,
// value swaps).
void BM_FleetRebalance(benchmark::State& state) {
  const int num_jobs = static_cast<int>(state.range(0));
  const int capacity = 32;
  const std::vector<ArbiterJobSpec> jobs = bench_fleet(num_jobs, capacity);
  const int pool[] = {32, 24, 28, 8, 0, 12, 32, 20, 30, 16};
  int interval = 0;
  FleetArbiterOptions options;
  options.capacity = capacity;
  FleetArbiter arbiter(jobs, options);
  for (auto _ : state) {
    const std::vector<int>& grants =
        arbiter.rebalance(interval, pool[interval % 10]);
    benchmark::DoNotOptimize(grants.data());
    ++interval;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetRebalance)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// Arbiter construction (hulls + ledger) — the one-time fleet-admission
// cost, dominated by the concave-hull builds.
void BM_FleetArbiterConstruct(benchmark::State& state) {
  const int num_jobs = static_cast<int>(state.range(0));
  const std::vector<ArbiterJobSpec> jobs = bench_fleet(num_jobs, 32);
  for (auto _ : state) {
    FleetArbiter arbiter(jobs, {});
    benchmark::DoNotOptimize(&arbiter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetArbiterConstruct)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace parcae::fleet

BENCHMARK_MAIN();
