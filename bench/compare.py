#!/usr/bin/env python3
"""Threshold comparison of two google-benchmark JSON files.

Usage:
    compare.py BASELINE.json CURRENT.json [--threshold 2.0]
               [--filter REGEX] [--exclude REGEX]

Exits non-zero when any benchmark present in BOTH files regressed by
more than --threshold x in real_time. Benchmarks present in only one
file are reported but never fail the check (the suite may grow or
retire cases). Times are normalized across time_unit fields.

--filter/--exclude restrict which benchmark names participate
(unanchored regex search), so one suite can be gated at two
thresholds: run once with --exclude PATTERN at the default threshold
and once with --filter PATTERN at a stricter one (run_benches.sh does
this for the incremental-DP cases).

The committed baseline under bench/baselines/ is machine-relative:
re-record it (bench/run_benches.sh --rebaseline) when moving to new
hardware instead of comparing across machines.
"""
import argparse
import json
import re
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        out[name] = b["real_time"] * UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current > threshold * baseline "
                             "(default 2.0)")
    parser.add_argument("--filter", default=None, metavar="REGEX",
                        help="only compare benchmarks whose name matches "
                             "this regex (unanchored search)")
    parser.add_argument("--exclude", default=None, metavar="REGEX",
                        help="skip benchmarks whose name matches this "
                             "regex (applied after --filter)")
    args = parser.parse_args()

    def selected(name):
        if args.filter and not re.search(args.filter, name):
            return False
        if args.exclude and re.search(args.exclude, name):
            return False
        return True

    base = {n: t for n, t in load(args.baseline).items() if selected(n)}
    cur = {n: t for n, t in load(args.current).items() if selected(n)}
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("compare.py: no common benchmarks between "
              f"{args.baseline} and {args.current}"
              + (" after --filter/--exclude" if args.filter or args.exclude
                 else ""), file=sys.stderr)
        return 2

    failures = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in shared:
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if ratio > args.threshold:
            failures.append(name)
            flag = f"  REGRESSION (> {args.threshold:.2f}x)"
        print(f"{name:<{width}}  {base[name] / 1e6:>10.3f}ms  "
              f"{cur[name] / 1e6:>10.3f}ms  {ratio:5.2f}x{flag}")

    for name in sorted(set(base) - set(cur)):
        print(f"note: '{name}' only in baseline (retired?)")
    for name in sorted(set(cur) - set(base)):
        print(f"note: '{name}' only in current (new; no baseline yet)")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.2f}x: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.2f}x "
          f"({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
