// Ablation: how many Monte-Carlo preemption samples does the liveput
// optimizer need (§7.3)? Sweeps the trial count and reports plan
// quality (committed tokens on HA-DP, GPT-2) and optimization time.
#include <chrono>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/liveput_optimizer.h"

using namespace parcae;

int main() {
  bench::header("Ablation", "Monte-Carlo trial count for the sampler");
  const ModelProfile model = gpt2_profile();
  const SpotTrace trace = canonical_segment(TraceSegment::kHighAvailDense);

  TextTable table({"MC trials", "tokens committed (M)", "optimize time (ms)"});
  for (int trials : {16, 64, 256, 1024}) {
    ParcaePolicyOptions options;
    options.mc_trials = trials;
    const SimulationResult r =
        bench::run_parcae(model, trace, PredictionMode::kArima, options);

    // Wall-clock of one optimization at this trial count.
    const ThroughputModel tm(model, {});
    LiveputOptimizer optimizer(&tm, CostEstimator(model),
                               LiveputOptimizerOptions{60.0, trials, 17});
    const std::vector<int> predicted(12, 26);
    const auto t0 = std::chrono::steady_clock::now();
    optimizer.optimize(tm.best_config(27), 27, predicted);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    table.row()
        .add(trials)
        .add(r.committed_units / 1e6, 1)
        .add(ms, 2);
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::paper_note(
      "design ablation (DESIGN.md): plan quality saturates by ~256 trials "
      "while cost grows linearly — 256 is the default");
  return 0;
}
