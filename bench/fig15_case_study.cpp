// Regenerates Figure 15: the case study comparing liveput-optimized
// Parcae with throughput-optimized Parcae-Reactive on GPT-2 over a
// 40-minute window of the HA-DP trace — per-interval availability,
// chosen D x P, and throughput (15a), plus cumulative tokens (15b).
#include "bench/bench_util.h"
#include "common/table.h"

using namespace parcae;

int main() {
  bench::header("Figure 15", "case study: Parcae vs Parcae-Reactive (GPT-2)");
  const ModelProfile model = gpt2_profile();
  const SpotTrace full = canonical_segment(TraceSegment::kHighAvailDense);
  const SpotTrace trace = full.slice(0.0, 40 * 60.0, "HA-DP[0:40min]");

  const SimulationResult proactive =
      bench::run_parcae(model, trace, PredictionMode::kArima);
  const SimulationResult reactive =
      bench::run_parcae(model, trace, PredictionMode::kReactive);

  std::printf("Figure 15a — per-interval behaviour:\n");
  TextTable table({"min", "avail", "reactive DxP", "reactive tok/s",
                   "proactive DxP", "proactive tok/s"});
  for (std::size_t i = 0; i < proactive.timeline.size(); ++i) {
    table.row()
        .add(static_cast<int>(i))
        .add(proactive.timeline[i].available)
        .add(reactive.timeline[i].config.to_string())
        .add(reactive.timeline[i].throughput * model.tokens_per_sample, 0)
        .add(proactive.timeline[i].config.to_string())
        .add(proactive.timeline[i].throughput * model.tokens_per_sample, 0);
  }
  std::printf("%s\n", table.to_string().c_str());

  int reactive_depth_changes = 0, proactive_depth_changes = 0;
  for (std::size_t i = 1; i < proactive.timeline.size(); ++i) {
    if (reactive.timeline[i].config.pp != reactive.timeline[i - 1].config.pp)
      ++reactive_depth_changes;
    if (proactive.timeline[i].config.pp !=
        proactive.timeline[i - 1].config.pp)
      ++proactive_depth_changes;
  }
  std::printf("pipeline-depth changes: reactive %d, proactive %d\n",
              reactive_depth_changes, proactive_depth_changes);

  std::printf("\nFigure 15b — accumulated tokens (millions):\n");
  TextTable cumulative({"minute", "Parcae-Reactive", "Parcae-Proactive"});
  for (std::size_t i = 4; i < proactive.timeline.size(); i += 5) {
    const double scale = model.tokens_per_sample / 1e6;
    cumulative.row()
        .add(static_cast<int>(i + 1))
        .add(reactive.timeline[i].cumulative_samples * scale, 1)
        .add(proactive.timeline[i].cumulative_samples * scale, 1);
  }
  std::printf("%s\n", cumulative.to_string().c_str());
  std::printf("proactive vs reactive after 40 min: %+.1f%%\n",
              100.0 * (proactive.committed_samples /
                           reactive.committed_samples -
                       1.0));
  bench::paper_note(
      "Figure 15: reactive greedily flips pipeline depth (e.g. 8 vs 13) "
      "and pays reconfigurations; Parcae holds stable depths, uses "
      "lightweight inter/intra-stage migrations, and accumulates ~16% "
      "more tokens within 40 minutes");
  return 0;
}
