file(REMOVE_RECURSE
  "libparcae_predict.a"
)
