# Empty dependencies file for parcae_predict.
# This may be replaced when dependencies are built.
