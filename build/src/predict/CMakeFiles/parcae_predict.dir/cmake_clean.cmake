file(REMOVE_RECURSE
  "CMakeFiles/parcae_predict.dir/adaptive.cpp.o"
  "CMakeFiles/parcae_predict.dir/adaptive.cpp.o.d"
  "CMakeFiles/parcae_predict.dir/arima.cpp.o"
  "CMakeFiles/parcae_predict.dir/arima.cpp.o.d"
  "CMakeFiles/parcae_predict.dir/evaluation.cpp.o"
  "CMakeFiles/parcae_predict.dir/evaluation.cpp.o.d"
  "CMakeFiles/parcae_predict.dir/guards.cpp.o"
  "CMakeFiles/parcae_predict.dir/guards.cpp.o.d"
  "CMakeFiles/parcae_predict.dir/predictor.cpp.o"
  "CMakeFiles/parcae_predict.dir/predictor.cpp.o.d"
  "libparcae_predict.a"
  "libparcae_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
