# Empty compiler generated dependencies file for parcae_predict.
# This may be replaced when dependencies are built.
