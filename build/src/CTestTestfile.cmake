# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("trace")
subdirs("net")
subdirs("model")
subdirs("parallel")
subdirs("predict")
subdirs("nn")
subdirs("migration")
subdirs("core")
subdirs("runtime")
subdirs("baselines")
subdirs("analysis")
