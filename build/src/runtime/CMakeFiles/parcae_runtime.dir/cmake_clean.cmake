file(REMOVE_RECURSE
  "CMakeFiles/parcae_runtime.dir/checkpoint.cpp.o"
  "CMakeFiles/parcae_runtime.dir/checkpoint.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/cloud_provider.cpp.o"
  "CMakeFiles/parcae_runtime.dir/cloud_provider.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/cluster_sim.cpp.o"
  "CMakeFiles/parcae_runtime.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/kv_store.cpp.o"
  "CMakeFiles/parcae_runtime.dir/kv_store.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/parcae_policy.cpp.o"
  "CMakeFiles/parcae_runtime.dir/parcae_policy.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/parcae_ps.cpp.o"
  "CMakeFiles/parcae_runtime.dir/parcae_ps.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/sample_manager.cpp.o"
  "CMakeFiles/parcae_runtime.dir/sample_manager.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/spot_driver.cpp.o"
  "CMakeFiles/parcae_runtime.dir/spot_driver.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/telemetry.cpp.o"
  "CMakeFiles/parcae_runtime.dir/telemetry.cpp.o.d"
  "CMakeFiles/parcae_runtime.dir/training_cluster.cpp.o"
  "CMakeFiles/parcae_runtime.dir/training_cluster.cpp.o.d"
  "libparcae_runtime.a"
  "libparcae_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
