# Empty dependencies file for parcae_runtime.
# This may be replaced when dependencies are built.
