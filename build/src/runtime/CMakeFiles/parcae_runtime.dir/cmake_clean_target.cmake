file(REMOVE_RECURSE
  "libparcae_runtime.a"
)
