
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/checkpoint.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/checkpoint.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/checkpoint.cpp.o.d"
  "/root/repo/src/runtime/cloud_provider.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/cloud_provider.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/cloud_provider.cpp.o.d"
  "/root/repo/src/runtime/cluster_sim.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/cluster_sim.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/runtime/kv_store.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/kv_store.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/kv_store.cpp.o.d"
  "/root/repo/src/runtime/parcae_policy.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/parcae_policy.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/parcae_policy.cpp.o.d"
  "/root/repo/src/runtime/parcae_ps.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/parcae_ps.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/parcae_ps.cpp.o.d"
  "/root/repo/src/runtime/sample_manager.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/sample_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/sample_manager.cpp.o.d"
  "/root/repo/src/runtime/spot_driver.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/spot_driver.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/spot_driver.cpp.o.d"
  "/root/repo/src/runtime/telemetry.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/telemetry.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/telemetry.cpp.o.d"
  "/root/repo/src/runtime/training_cluster.cpp" "src/runtime/CMakeFiles/parcae_runtime.dir/training_cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/parcae_runtime.dir/training_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parcae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcae_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/parcae_model.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcae_net.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/parcae_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/parcae_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/parcae_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parcae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/parcae_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
