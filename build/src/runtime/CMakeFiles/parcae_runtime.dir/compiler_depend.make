# Empty compiler generated dependencies file for parcae_runtime.
# This may be replaced when dependencies are built.
