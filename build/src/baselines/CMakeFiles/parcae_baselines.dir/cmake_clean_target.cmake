file(REMOVE_RECURSE
  "libparcae_baselines.a"
)
