file(REMOVE_RECURSE
  "CMakeFiles/parcae_baselines.dir/bamboo_policy.cpp.o"
  "CMakeFiles/parcae_baselines.dir/bamboo_policy.cpp.o.d"
  "CMakeFiles/parcae_baselines.dir/checkfreq_policy.cpp.o"
  "CMakeFiles/parcae_baselines.dir/checkfreq_policy.cpp.o.d"
  "CMakeFiles/parcae_baselines.dir/elastic_dp_policy.cpp.o"
  "CMakeFiles/parcae_baselines.dir/elastic_dp_policy.cpp.o.d"
  "CMakeFiles/parcae_baselines.dir/hybrid_policy.cpp.o"
  "CMakeFiles/parcae_baselines.dir/hybrid_policy.cpp.o.d"
  "CMakeFiles/parcae_baselines.dir/ondemand_policy.cpp.o"
  "CMakeFiles/parcae_baselines.dir/ondemand_policy.cpp.o.d"
  "CMakeFiles/parcae_baselines.dir/oobleck_policy.cpp.o"
  "CMakeFiles/parcae_baselines.dir/oobleck_policy.cpp.o.d"
  "CMakeFiles/parcae_baselines.dir/varuna_policy.cpp.o"
  "CMakeFiles/parcae_baselines.dir/varuna_policy.cpp.o.d"
  "libparcae_baselines.a"
  "libparcae_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
