# Empty compiler generated dependencies file for parcae_baselines.
# This may be replaced when dependencies are built.
