# Empty compiler generated dependencies file for parcae_analysis.
# This may be replaced when dependencies are built.
