file(REMOVE_RECURSE
  "libparcae_analysis.a"
)
