file(REMOVE_RECURSE
  "CMakeFiles/parcae_analysis.dir/experiment.cpp.o"
  "CMakeFiles/parcae_analysis.dir/experiment.cpp.o.d"
  "libparcae_analysis.a"
  "libparcae_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
