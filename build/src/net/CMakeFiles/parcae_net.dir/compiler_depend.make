# Empty compiler generated dependencies file for parcae_net.
# This may be replaced when dependencies are built.
