file(REMOVE_RECURSE
  "CMakeFiles/parcae_net.dir/network_model.cpp.o"
  "CMakeFiles/parcae_net.dir/network_model.cpp.o.d"
  "libparcae_net.a"
  "libparcae_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
