file(REMOVE_RECURSE
  "libparcae_net.a"
)
