# Empty dependencies file for parcae_common.
# This may be replaced when dependencies are built.
