file(REMOVE_RECURSE
  "CMakeFiles/parcae_common.dir/log.cpp.o"
  "CMakeFiles/parcae_common.dir/log.cpp.o.d"
  "CMakeFiles/parcae_common.dir/rng.cpp.o"
  "CMakeFiles/parcae_common.dir/rng.cpp.o.d"
  "CMakeFiles/parcae_common.dir/stats.cpp.o"
  "CMakeFiles/parcae_common.dir/stats.cpp.o.d"
  "CMakeFiles/parcae_common.dir/table.cpp.o"
  "CMakeFiles/parcae_common.dir/table.cpp.o.d"
  "libparcae_common.a"
  "libparcae_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
