# Empty compiler generated dependencies file for parcae_common.
# This may be replaced when dependencies are built.
