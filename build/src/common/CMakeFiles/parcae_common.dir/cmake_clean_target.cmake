file(REMOVE_RECURSE
  "libparcae_common.a"
)
