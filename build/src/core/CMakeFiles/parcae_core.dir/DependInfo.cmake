
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/extended_search.cpp" "src/core/CMakeFiles/parcae_core.dir/extended_search.cpp.o" "gcc" "src/core/CMakeFiles/parcae_core.dir/extended_search.cpp.o.d"
  "/root/repo/src/core/liveput.cpp" "src/core/CMakeFiles/parcae_core.dir/liveput.cpp.o" "gcc" "src/core/CMakeFiles/parcae_core.dir/liveput.cpp.o.d"
  "/root/repo/src/core/liveput_optimizer.cpp" "src/core/CMakeFiles/parcae_core.dir/liveput_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/parcae_core.dir/liveput_optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parcae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/parcae_model.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcae_net.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/parcae_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/parcae_migration.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
