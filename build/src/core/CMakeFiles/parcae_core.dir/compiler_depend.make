# Empty compiler generated dependencies file for parcae_core.
# This may be replaced when dependencies are built.
