file(REMOVE_RECURSE
  "libparcae_core.a"
)
