file(REMOVE_RECURSE
  "CMakeFiles/parcae_core.dir/extended_search.cpp.o"
  "CMakeFiles/parcae_core.dir/extended_search.cpp.o.d"
  "CMakeFiles/parcae_core.dir/liveput.cpp.o"
  "CMakeFiles/parcae_core.dir/liveput.cpp.o.d"
  "CMakeFiles/parcae_core.dir/liveput_optimizer.cpp.o"
  "CMakeFiles/parcae_core.dir/liveput_optimizer.cpp.o.d"
  "libparcae_core.a"
  "libparcae_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
