file(REMOVE_RECURSE
  "CMakeFiles/parcae_trace.dir/spot_market.cpp.o"
  "CMakeFiles/parcae_trace.dir/spot_market.cpp.o.d"
  "CMakeFiles/parcae_trace.dir/spot_trace.cpp.o"
  "CMakeFiles/parcae_trace.dir/spot_trace.cpp.o.d"
  "CMakeFiles/parcae_trace.dir/trace_analysis.cpp.o"
  "CMakeFiles/parcae_trace.dir/trace_analysis.cpp.o.d"
  "CMakeFiles/parcae_trace.dir/trace_io.cpp.o"
  "CMakeFiles/parcae_trace.dir/trace_io.cpp.o.d"
  "libparcae_trace.a"
  "libparcae_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
