# Empty compiler generated dependencies file for parcae_trace.
# This may be replaced when dependencies are built.
