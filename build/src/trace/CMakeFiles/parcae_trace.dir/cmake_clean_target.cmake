file(REMOVE_RECURSE
  "libparcae_trace.a"
)
