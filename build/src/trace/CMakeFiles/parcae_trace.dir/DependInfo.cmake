
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/spot_market.cpp" "src/trace/CMakeFiles/parcae_trace.dir/spot_market.cpp.o" "gcc" "src/trace/CMakeFiles/parcae_trace.dir/spot_market.cpp.o.d"
  "/root/repo/src/trace/spot_trace.cpp" "src/trace/CMakeFiles/parcae_trace.dir/spot_trace.cpp.o" "gcc" "src/trace/CMakeFiles/parcae_trace.dir/spot_trace.cpp.o.d"
  "/root/repo/src/trace/trace_analysis.cpp" "src/trace/CMakeFiles/parcae_trace.dir/trace_analysis.cpp.o" "gcc" "src/trace/CMakeFiles/parcae_trace.dir/trace_analysis.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/parcae_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/parcae_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parcae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
