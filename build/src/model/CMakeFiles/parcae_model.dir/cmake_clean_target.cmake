file(REMOVE_RECURSE
  "libparcae_model.a"
)
