file(REMOVE_RECURSE
  "CMakeFiles/parcae_model.dir/memory_model.cpp.o"
  "CMakeFiles/parcae_model.dir/memory_model.cpp.o.d"
  "CMakeFiles/parcae_model.dir/model_profile.cpp.o"
  "CMakeFiles/parcae_model.dir/model_profile.cpp.o.d"
  "libparcae_model.a"
  "libparcae_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
