# Empty dependencies file for parcae_model.
# This may be replaced when dependencies are built.
