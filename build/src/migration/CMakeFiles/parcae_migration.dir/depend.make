# Empty dependencies file for parcae_migration.
# This may be replaced when dependencies are built.
