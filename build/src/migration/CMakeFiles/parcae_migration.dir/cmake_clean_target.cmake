file(REMOVE_RECURSE
  "libparcae_migration.a"
)
