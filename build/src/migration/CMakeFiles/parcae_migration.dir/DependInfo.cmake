
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/migration/cost_model.cpp" "src/migration/CMakeFiles/parcae_migration.dir/cost_model.cpp.o" "gcc" "src/migration/CMakeFiles/parcae_migration.dir/cost_model.cpp.o.d"
  "/root/repo/src/migration/exact_preemption.cpp" "src/migration/CMakeFiles/parcae_migration.dir/exact_preemption.cpp.o" "gcc" "src/migration/CMakeFiles/parcae_migration.dir/exact_preemption.cpp.o.d"
  "/root/repo/src/migration/planner.cpp" "src/migration/CMakeFiles/parcae_migration.dir/planner.cpp.o" "gcc" "src/migration/CMakeFiles/parcae_migration.dir/planner.cpp.o.d"
  "/root/repo/src/migration/preemption.cpp" "src/migration/CMakeFiles/parcae_migration.dir/preemption.cpp.o" "gcc" "src/migration/CMakeFiles/parcae_migration.dir/preemption.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parcae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/parcae_model.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcae_net.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/parcae_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
