file(REMOVE_RECURSE
  "CMakeFiles/parcae_migration.dir/cost_model.cpp.o"
  "CMakeFiles/parcae_migration.dir/cost_model.cpp.o.d"
  "CMakeFiles/parcae_migration.dir/exact_preemption.cpp.o"
  "CMakeFiles/parcae_migration.dir/exact_preemption.cpp.o.d"
  "CMakeFiles/parcae_migration.dir/planner.cpp.o"
  "CMakeFiles/parcae_migration.dir/planner.cpp.o.d"
  "CMakeFiles/parcae_migration.dir/preemption.cpp.o"
  "CMakeFiles/parcae_migration.dir/preemption.cpp.o.d"
  "libparcae_migration.a"
  "libparcae_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
