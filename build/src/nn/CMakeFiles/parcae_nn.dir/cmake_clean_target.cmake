file(REMOVE_RECURSE
  "libparcae_nn.a"
)
