
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/parcae_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/parcae_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/parcae_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/parcae_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/parcae_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/parcae_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/parcae_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/parcae_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/parcae_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/parcae_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/stage.cpp" "src/nn/CMakeFiles/parcae_nn.dir/stage.cpp.o" "gcc" "src/nn/CMakeFiles/parcae_nn.dir/stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parcae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/parcae_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
