# Empty dependencies file for parcae_nn.
# This may be replaced when dependencies are built.
