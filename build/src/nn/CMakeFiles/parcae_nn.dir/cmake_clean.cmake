file(REMOVE_RECURSE
  "CMakeFiles/parcae_nn.dir/dataset.cpp.o"
  "CMakeFiles/parcae_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/parcae_nn.dir/layers.cpp.o"
  "CMakeFiles/parcae_nn.dir/layers.cpp.o.d"
  "CMakeFiles/parcae_nn.dir/matrix.cpp.o"
  "CMakeFiles/parcae_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/parcae_nn.dir/mlp.cpp.o"
  "CMakeFiles/parcae_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/parcae_nn.dir/optimizer.cpp.o"
  "CMakeFiles/parcae_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/parcae_nn.dir/stage.cpp.o"
  "CMakeFiles/parcae_nn.dir/stage.cpp.o.d"
  "libparcae_nn.a"
  "libparcae_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
