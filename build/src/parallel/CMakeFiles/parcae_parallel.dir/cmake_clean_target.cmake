file(REMOVE_RECURSE
  "libparcae_parallel.a"
)
