file(REMOVE_RECURSE
  "CMakeFiles/parcae_parallel.dir/pipeline_schedule.cpp.o"
  "CMakeFiles/parcae_parallel.dir/pipeline_schedule.cpp.o.d"
  "CMakeFiles/parcae_parallel.dir/throughput_model.cpp.o"
  "CMakeFiles/parcae_parallel.dir/throughput_model.cpp.o.d"
  "libparcae_parallel.a"
  "libparcae_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
