# Empty compiler generated dependencies file for parcae_parallel.
# This may be replaced when dependencies are built.
