# Empty dependencies file for pipeline_viz.
# This may be replaced when dependencies are built.
