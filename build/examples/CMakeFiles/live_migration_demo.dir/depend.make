# Empty dependencies file for live_migration_demo.
# This may be replaced when dependencies are built.
