file(REMOVE_RECURSE
  "CMakeFiles/live_migration_demo.dir/live_migration_demo.cpp.o"
  "CMakeFiles/live_migration_demo.dir/live_migration_demo.cpp.o.d"
  "live_migration_demo"
  "live_migration_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_migration_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
