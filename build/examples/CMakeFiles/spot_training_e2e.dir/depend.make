# Empty dependencies file for spot_training_e2e.
# This may be replaced when dependencies are built.
