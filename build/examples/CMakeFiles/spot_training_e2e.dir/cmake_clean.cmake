file(REMOVE_RECURSE
  "CMakeFiles/spot_training_e2e.dir/spot_training_e2e.cpp.o"
  "CMakeFiles/spot_training_e2e.dir/spot_training_e2e.cpp.o.d"
  "spot_training_e2e"
  "spot_training_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_training_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
