file(REMOVE_RECURSE
  "CMakeFiles/availability_forecast.dir/availability_forecast.cpp.o"
  "CMakeFiles/availability_forecast.dir/availability_forecast.cpp.o.d"
  "availability_forecast"
  "availability_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
