# Empty compiler generated dependencies file for availability_forecast.
# This may be replaced when dependencies are built.
