file(REMOVE_RECURSE
  "CMakeFiles/custom_model_advisor.dir/custom_model_advisor.cpp.o"
  "CMakeFiles/custom_model_advisor.dir/custom_model_advisor.cpp.o.d"
  "custom_model_advisor"
  "custom_model_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_model_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
