# Empty compiler generated dependencies file for custom_model_advisor.
# This may be replaced when dependencies are built.
