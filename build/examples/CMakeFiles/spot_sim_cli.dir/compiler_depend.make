# Empty compiler generated dependencies file for spot_sim_cli.
# This may be replaced when dependencies are built.
