file(REMOVE_RECURSE
  "CMakeFiles/spot_sim_cli.dir/spot_sim_cli.cpp.o"
  "CMakeFiles/spot_sim_cli.dir/spot_sim_cli.cpp.o.d"
  "spot_sim_cli"
  "spot_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
