# Empty dependencies file for fig18b_optimizer_time.
# This may be replaced when dependencies are built.
