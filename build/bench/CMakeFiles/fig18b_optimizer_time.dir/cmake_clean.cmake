file(REMOVE_RECURSE
  "CMakeFiles/fig18b_optimizer_time.dir/fig18b_optimizer_time.cpp.o"
  "CMakeFiles/fig18b_optimizer_time.dir/fig18b_optimizer_time.cpp.o.d"
  "fig18b_optimizer_time"
  "fig18b_optimizer_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18b_optimizer_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
