file(REMOVE_RECURSE
  "CMakeFiles/ablation_hysteresis.dir/ablation_hysteresis.cpp.o"
  "CMakeFiles/ablation_hysteresis.dir/ablation_hysteresis.cpp.o.d"
  "ablation_hysteresis"
  "ablation_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
