# Empty dependencies file for ablation_hysteresis.
# This may be replaced when dependencies are built.
