file(REMOVE_RECURSE
  "CMakeFiles/fig09a_end_to_end.dir/fig09a_end_to_end.cpp.o"
  "CMakeFiles/fig09a_end_to_end.dir/fig09a_end_to_end.cpp.o.d"
  "fig09a_end_to_end"
  "fig09a_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
