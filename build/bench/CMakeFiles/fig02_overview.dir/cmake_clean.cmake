file(REMOVE_RECURSE
  "CMakeFiles/fig02_overview.dir/fig02_overview.cpp.o"
  "CMakeFiles/fig02_overview.dir/fig02_overview.cpp.o.d"
  "fig02_overview"
  "fig02_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
