# Empty compiler generated dependencies file for fig02_overview.
# This may be replaced when dependencies are built.
