# Empty compiler generated dependencies file for table4_migration_costs.
# This may be replaced when dependencies are built.
