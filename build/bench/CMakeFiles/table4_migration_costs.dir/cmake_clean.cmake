file(REMOVE_RECURSE
  "CMakeFiles/table4_migration_costs.dir/table4_migration_costs.cpp.o"
  "CMakeFiles/table4_migration_costs.dir/table4_migration_costs.cpp.o.d"
  "table4_migration_costs"
  "table4_migration_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_migration_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
