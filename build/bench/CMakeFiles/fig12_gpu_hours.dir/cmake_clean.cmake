file(REMOVE_RECURSE
  "CMakeFiles/fig12_gpu_hours.dir/fig12_gpu_hours.cpp.o"
  "CMakeFiles/fig12_gpu_hours.dir/fig12_gpu_hours.cpp.o.d"
  "fig12_gpu_hours"
  "fig12_gpu_hours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_gpu_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
