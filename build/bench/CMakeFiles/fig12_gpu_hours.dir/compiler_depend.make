# Empty compiler generated dependencies file for fig12_gpu_hours.
# This may be replaced when dependencies are built.
