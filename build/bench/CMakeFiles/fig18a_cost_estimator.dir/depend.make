# Empty dependencies file for fig18a_cost_estimator.
# This may be replaced when dependencies are built.
