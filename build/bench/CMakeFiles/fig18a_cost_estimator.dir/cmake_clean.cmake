file(REMOVE_RECURSE
  "CMakeFiles/fig18a_cost_estimator.dir/fig18a_cost_estimator.cpp.o"
  "CMakeFiles/fig18a_cost_estimator.dir/fig18a_cost_estimator.cpp.o.d"
  "fig18a_cost_estimator"
  "fig18a_cost_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18a_cost_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
