file(REMOVE_RECURSE
  "CMakeFiles/ablation_mc_trials.dir/ablation_mc_trials.cpp.o"
  "CMakeFiles/ablation_mc_trials.dir/ablation_mc_trials.cpp.o.d"
  "ablation_mc_trials"
  "ablation_mc_trials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mc_trials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
