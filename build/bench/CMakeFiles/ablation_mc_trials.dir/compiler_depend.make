# Empty compiler generated dependencies file for ablation_mc_trials.
# This may be replaced when dependencies are built.
