file(REMOVE_RECURSE
  "CMakeFiles/fig15_case_study.dir/fig15_case_study.cpp.o"
  "CMakeFiles/fig15_case_study.dir/fig15_case_study.cpp.o.d"
  "fig15_case_study"
  "fig15_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
