# Empty dependencies file for fig15_case_study.
# This may be replaced when dependencies are built.
