# Empty dependencies file for fig14_proactive_reactive.
# This may be replaced when dependencies are built.
