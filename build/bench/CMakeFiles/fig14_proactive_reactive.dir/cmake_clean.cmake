file(REMOVE_RECURSE
  "CMakeFiles/fig14_proactive_reactive.dir/fig14_proactive_reactive.cpp.o"
  "CMakeFiles/fig14_proactive_reactive.dir/fig14_proactive_reactive.cpp.o.d"
  "fig14_proactive_reactive"
  "fig14_proactive_reactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_proactive_reactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
