file(REMOVE_RECURSE
  "CMakeFiles/appendix_real_migrations.dir/appendix_real_migrations.cpp.o"
  "CMakeFiles/appendix_real_migrations.dir/appendix_real_migrations.cpp.o.d"
  "appendix_real_migrations"
  "appendix_real_migrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_real_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
