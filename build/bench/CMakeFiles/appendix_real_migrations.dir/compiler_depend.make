# Empty compiler generated dependencies file for appendix_real_migrations.
# This may be replaced when dependencies are built.
