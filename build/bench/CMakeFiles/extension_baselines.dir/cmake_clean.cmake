file(REMOVE_RECURSE
  "CMakeFiles/extension_baselines.dir/extension_baselines.cpp.o"
  "CMakeFiles/extension_baselines.dir/extension_baselines.cpp.o.d"
  "extension_baselines"
  "extension_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
