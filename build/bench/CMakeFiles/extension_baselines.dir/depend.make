# Empty dependencies file for extension_baselines.
# This may be replaced when dependencies are built.
