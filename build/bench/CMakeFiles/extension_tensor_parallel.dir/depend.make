# Empty dependencies file for extension_tensor_parallel.
# This may be replaced when dependencies are built.
