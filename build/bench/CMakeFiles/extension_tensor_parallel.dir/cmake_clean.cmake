file(REMOVE_RECURSE
  "CMakeFiles/extension_tensor_parallel.dir/extension_tensor_parallel.cpp.o"
  "CMakeFiles/extension_tensor_parallel.dir/extension_tensor_parallel.cpp.o.d"
  "extension_tensor_parallel"
  "extension_tensor_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tensor_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
