file(REMOVE_RECURSE
  "CMakeFiles/ablation_schedule_model.dir/ablation_schedule_model.cpp.o"
  "CMakeFiles/ablation_schedule_model.dir/ablation_schedule_model.cpp.o.d"
  "ablation_schedule_model"
  "ablation_schedule_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schedule_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
