file(REMOVE_RECURSE
  "CMakeFiles/fig05_predictor.dir/fig05_predictor.cpp.o"
  "CMakeFiles/fig05_predictor.dir/fig05_predictor.cpp.o.d"
  "fig05_predictor"
  "fig05_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
