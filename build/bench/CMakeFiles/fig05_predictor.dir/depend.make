# Empty dependencies file for fig05_predictor.
# This may be replaced when dependencies are built.
