file(REMOVE_RECURSE
  "CMakeFiles/fig11_prediction_rate.dir/fig11_prediction_rate.cpp.o"
  "CMakeFiles/fig11_prediction_rate.dir/fig11_prediction_rate.cpp.o.d"
  "fig11_prediction_rate"
  "fig11_prediction_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_prediction_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
