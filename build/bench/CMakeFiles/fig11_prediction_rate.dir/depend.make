# Empty dependencies file for fig11_prediction_rate.
# This may be replaced when dependencies are built.
