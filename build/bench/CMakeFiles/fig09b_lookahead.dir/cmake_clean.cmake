file(REMOVE_RECURSE
  "CMakeFiles/fig09b_lookahead.dir/fig09b_lookahead.cpp.o"
  "CMakeFiles/fig09b_lookahead.dir/fig09b_lookahead.cpp.o.d"
  "fig09b_lookahead"
  "fig09b_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
