# Empty compiler generated dependencies file for fig09b_lookahead.
# This may be replaced when dependencies are built.
