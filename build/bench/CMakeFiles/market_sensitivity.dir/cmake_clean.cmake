file(REMOVE_RECURSE
  "CMakeFiles/market_sensitivity.dir/market_sensitivity.cpp.o"
  "CMakeFiles/market_sensitivity.dir/market_sensitivity.cpp.o.d"
  "market_sensitivity"
  "market_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
