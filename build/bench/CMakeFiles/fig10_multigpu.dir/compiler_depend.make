# Empty compiler generated dependencies file for fig10_multigpu.
# This may be replaced when dependencies are built.
