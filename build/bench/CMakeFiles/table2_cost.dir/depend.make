# Empty dependencies file for table2_cost.
# This may be replaced when dependencies are built.
