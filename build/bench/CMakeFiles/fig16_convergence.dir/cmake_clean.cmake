file(REMOVE_RECURSE
  "CMakeFiles/fig16_convergence.dir/fig16_convergence.cpp.o"
  "CMakeFiles/fig16_convergence.dir/fig16_convergence.cpp.o.d"
  "fig16_convergence"
  "fig16_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
