# Empty dependencies file for spot_driver_test.
# This may be replaced when dependencies are built.
