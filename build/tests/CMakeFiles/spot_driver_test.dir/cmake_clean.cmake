file(REMOVE_RECURSE
  "CMakeFiles/spot_driver_test.dir/spot_driver_test.cpp.o"
  "CMakeFiles/spot_driver_test.dir/spot_driver_test.cpp.o.d"
  "spot_driver_test"
  "spot_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
