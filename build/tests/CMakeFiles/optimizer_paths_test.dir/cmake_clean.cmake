file(REMOVE_RECURSE
  "CMakeFiles/optimizer_paths_test.dir/optimizer_paths_test.cpp.o"
  "CMakeFiles/optimizer_paths_test.dir/optimizer_paths_test.cpp.o.d"
  "optimizer_paths_test"
  "optimizer_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
