# Empty dependencies file for optimizer_paths_test.
# This may be replaced when dependencies are built.
