
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extra_baselines_test.cpp" "tests/CMakeFiles/extra_baselines_test.dir/extra_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/extra_baselines_test.dir/extra_baselines_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parcae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcae_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcae_net.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/parcae_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/parcae_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/parcae_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/parcae_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/parcae_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parcae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/parcae_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/parcae_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/parcae_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
