file(REMOVE_RECURSE
  "CMakeFiles/extended_search_test.dir/extended_search_test.cpp.o"
  "CMakeFiles/extended_search_test.dir/extended_search_test.cpp.o.d"
  "extended_search_test"
  "extended_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
