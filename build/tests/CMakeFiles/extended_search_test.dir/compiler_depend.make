# Empty compiler generated dependencies file for extended_search_test.
# This may be replaced when dependencies are built.
