file(REMOVE_RECURSE
  "CMakeFiles/exact_preemption_test.dir/exact_preemption_test.cpp.o"
  "CMakeFiles/exact_preemption_test.dir/exact_preemption_test.cpp.o.d"
  "exact_preemption_test"
  "exact_preemption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_preemption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
