# Empty dependencies file for exact_preemption_test.
# This may be replaced when dependencies are built.
