# Empty dependencies file for training_cluster_test.
# This may be replaced when dependencies are built.
