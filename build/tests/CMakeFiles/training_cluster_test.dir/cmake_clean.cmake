file(REMOVE_RECURSE
  "CMakeFiles/training_cluster_test.dir/training_cluster_test.cpp.o"
  "CMakeFiles/training_cluster_test.dir/training_cluster_test.cpp.o.d"
  "training_cluster_test"
  "training_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
