// ParcaeAgent as a real operating-system process.
//
// Usage:
//   parcae_agent port=<int> id=<name> [key=value ...]
//
//   port=<int>          scheduler hub's TCP port (required)
//   id=<name>           agent id; registers <ns>agent/<id> (required)
//   ns=<prefix>         KV namespace (default "parcae/")
//   ttl=<float>         liveness lease TTL in *logical* seconds
//                       (default 5.0; the scheduler's clock advances
//                       interval_s per tick)
//   heartbeat_ms=<int>  wall ms between keepalive/poll rounds (30)
//   max_wall_s=<float>  wall-clock cap; exit 3 when it lapses (120)
//   deadline_s=<float>  per-RPC response deadline (0.25)
//
// The agent's whole contract with the scheduler is the KV rendezvous:
// register a key under a TTL lease, keep the lease alive, poll the
// advised configuration, ack it under <ns>ack/<id> (a separate prefix
// — the agent/ listing is the liveness census and must contain only
// live agents). No goodbye path exists on purpose: a SIGKILLed agent
// is detected by lease expiry alone.
//
// Crash-survivable by reconnect: the RpcClient runs in reconnect mode
// with real backoff sleeps, so when the scheduler dies and a standby
// takes over the same port, in-flight calls fail, the client re-dials
// until the new listener is up, and a keepalive against the replayed
// store either succeeds (lease survived in the WAL) or returns false
// — in which case the agent re-registers from scratch.
//
// Exit codes: 0 clean shutdown (<ns>control/shutdown observed),
// 2 bad arguments, 3 wall-clock cap (the run outlived the agent's
// patience — a harness timeout, not a protocol outcome).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "rpc/kv_service.h"
#include "rpc/rpc.h"
#include "rpc/transport.h"

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept GNU-style spellings (--port=9000) for every key.
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parcae;
  const auto args = parse_args(argc, argv);
  if (args.find("port") == args.end() || args.find("id") == args.end()) {
    std::fprintf(stderr, "usage: parcae_agent port=<int> id=<name> "
                         "[ns= ttl= heartbeat_ms= max_wall_s= deadline_s=]\n");
    return 2;
  }
  const int port = std::stoi(args.at("port"));
  const std::string id = args.at("id");
  const std::string ns = get(args, "ns", "parcae/");
  const double ttl_s = std::stod(get(args, "ttl", "5.0"));
  const int heartbeat_ms = std::stoi(get(args, "heartbeat_ms", "30"));
  const double max_wall_s = std::stod(get(args, "max_wall_s", "120"));
  const double deadline_s = std::stod(get(args, "deadline_s", "0.25"));

  auto transport = rpc::make_tcp_dial_transport(port, /*connect_timeout_s=*/1.0);

  rpc::RpcClientOptions copt;
  copt.deadline_s = deadline_s;
  copt.reconnect = true;
  copt.sleep_on_retry = true;
  // Enough real backoff (~5s accumulated) to ride out a scheduler
  // restart or standby takeover within one call's retry loop.
  copt.retry.max_attempts = 8;
  copt.retry.budget_s = 20.0;
  rpc::RpcClient client(*transport, "agent-" + id, copt);
  rpc::KvClient kv(client);

  const std::string agent_key = ns + "agent/" + id;
  const std::string ack_key = ns + "ack/" + id;

  std::uint64_t lease = 0;
  const auto register_self = [&] {
    lease = kv.lease_grant(ttl_s);
    if (kv.put_with_lease(agent_key, "alive", lease) == 0) lease = 0;
  };

  const double t0 = wall_s();
  std::string last_advised;
  while (wall_s() - t0 < max_wall_s) {
    try {
      if (lease == 0 || !kv.lease_keepalive(lease)) {
        // Expired (a slow takeover, a dropped heartbeat run) — the
        // old key is tombstoned; re-register as a fresh arrival.
        register_self();
        if (lease == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(heartbeat_ms));
          continue;
        }
      }

      if (kv.get(ns + "control/shutdown").has_value()) return 0;

      // Poll the advised configuration; ack changes under ack/ (NOT
      // agent/ — the census prefix must only ever list live agents).
      if (const auto advised = kv.get(ns + "scheduler/advised");
          advised.has_value() && advised->value != last_advised) {
        if (kv.put_with_lease(ack_key, advised->value, lease) != 0)
          last_advised = advised->value;
        else
          lease = 0;  // lease died mid-ack; re-register next round
      }
    } catch (const std::exception&) {
      // Transport retry budget spent (scheduler down longer than the
      // backoff window). Keep trying: the standby may still be coming.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(heartbeat_ms));
  }
  return 3;
}
