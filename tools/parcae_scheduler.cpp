// ParcaeScheduler as a real operating-system process: primary or
// standby (docs/robustness.md, "multi-process runtime").
//
// Usage:
//   parcae_scheduler wal=<path> port=<int> [key=value ...]
//
//   role=primary|standby  (default primary) — a standby probes the
//                         primary's endpoint and takes over from the
//                         shared WAL when it goes silent
//   wal=<path>            append-only WAL file, shared between the
//                         primary and the standby (required)
//   port=<int>            TCP port for the KV service (required; the
//                         standby takes this same port over)
//   intervals=<int>       decision intervals in the run (default 16)
//   interval_s=<float>    logical seconds per interval (2.0)
//   tick_ms=<int>         wall ms between ticks (100)
//   seat_ttl=<float>      scheduler/primary seat TTL, logical s (6.0)
//   takeover_s=<float>    probe silence before takeover, wall s (0.75)
//   probe_ms=<int>        standby probe period, wall ms (50)
//   agents=<int>          expected agent count (loss scale; 4)
//   ns=<prefix>           KV namespace (default "parcae/")
//   name=<str>            seat candidate / report label
//   seed=<int>            decision-core seed (123)
//   report=<path>         also write the run report to this file
//   faults=<spec>         fault-injection spec (docs/robustness.md),
//                         e.g. faults=kv.wal_write:nth=5 — the
//                         PARCAE_FAULTS env var is the fallback
//   faults_seed=<int>     injector seed (default 0xfa017)
//
// Exit codes: 0 run completed (or, for a standby, primary completed
// without dying), 1 WAL/port failure, 2 bad arguments.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/fault.h"
#include "runtime/scheduler_process.h"

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept GNU-style spellings (--wal=run.wal) for every key.
    arg.erase(0, arg.find_first_not_of('-'));
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parcae;
  const auto args = parse_args(argc, argv);
  if (args.find("wal") == args.end() || args.find("port") == args.end()) {
    std::fprintf(stderr,
                 "usage: parcae_scheduler wal=<path> port=<int> "
                 "[role=primary|standby intervals= interval_s= tick_ms= "
                 "seat_ttl= takeover_s= probe_ms= agents= ns= name= seed= "
                 "report= faults=]\n");
    return 2;
  }
  const std::string role = get(args, "role", "primary");
  if (role != "primary" && role != "standby") {
    std::fprintf(stderr, "parcae_scheduler: unknown role '%s'\n",
                 role.c_str());
    return 2;
  }

  SchedulerProcessOptions options;
  options.wal_path = args.at("wal");
  options.port = std::stoi(args.at("port"));
  options.intervals = std::stoi(get(args, "intervals", "16"));
  options.interval_s = std::stod(get(args, "interval_s", "2.0"));
  options.tick_wall_ms = std::stoi(get(args, "tick_ms", "100"));
  options.seat_ttl_s = std::stod(get(args, "seat_ttl", "6.0"));
  options.takeover_after_s = std::stod(get(args, "takeover_s", "0.75"));
  options.probe_interval_ms = std::stoi(get(args, "probe_ms", "50"));
  options.requested_instances = std::stoi(get(args, "agents", "4"));
  options.kv_namespace = get(args, "ns", "parcae/");
  options.name = get(args, "name", role);
  options.seed = std::stoull(get(args, "seed", "123"));
  options.report_path = get(args, "report", "");

  // Fault spec: the explicit key wins; PARCAE_FAULTS is the fallback
  // (same contract as the in-process drivers).
  std::string spec = get(args, "faults", "");
  if (spec.empty()) {
    if (const char* env = std::getenv("PARCAE_FAULTS");
        env != nullptr && *env != '\0')
      spec = env;
  }
  std::unique_ptr<FaultInjector> faults;
  if (!spec.empty()) {
    faults = std::make_unique<FaultInjector>(
        std::stoull(get(args, "faults_seed", "1024023")));
    std::string error;
    if (!faults->arm_from_spec(spec, &error)) {
      std::fprintf(stderr, "parcae_scheduler: bad faults spec: %s\n",
                   error.c_str());
      return 2;
    }
    options.faults = faults.get();
  }

  SchedulerProcess scheduler(options);
  const int rc =
      role == "standby" ? scheduler.run_standby() : scheduler.run_primary();
  std::fputs(scheduler.report().to_text().c_str(), stdout);
  return rc;
}
