#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) file.

Usage:
    validate_prom.py metrics.prom [more.prom ...]

Checks the grammar the obs.metrics endpoint promises (src/obs/
exporter.h): HELP/TYPE headers precede their family's samples, metric
and label names are legal, sample values parse as floats, histogram
families carry cumulative le-buckets ending at +Inf plus _sum/_count,
and counter sample names end in _total. Exits non-zero with one line
per violation — no Prometheus installation required, so CI can gate
the exporter on any runner.
"""
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\d+))?$")
LABEL_PAIR = re.compile(r'^(?P<key>[^=]+)="(?P<val>(?:[^"\\]|\\.)*)"$')


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)


def validate(path):
    errors = []
    types = {}          # family -> declared type
    helped = set()
    samples = {}        # family -> [(labels dict, value)]
    declared_order = []

    def err(lineno, what):
        errors.append(f"{path}:{lineno}: {what}")

    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                if len(parts) < 4 or not METRIC_NAME.match(parts[2]):
                    err(lineno, f"malformed HELP line: {line!r}")
                else:
                    helped.add(parts[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if (len(parts) != 4 or not METRIC_NAME.match(parts[2]) or
                        parts[3] not in ("counter", "gauge", "histogram",
                                         "summary", "untyped")):
                    err(lineno, f"malformed TYPE line: {line!r}")
                    continue
                family, kind = parts[2], parts[3]
                if family in types:
                    err(lineno, f"duplicate TYPE for {family}")
                types[family] = kind
                declared_order.append(family)
                continue
            if line.startswith("#"):
                continue  # free-form comment
            m = SAMPLE.match(line)
            if m is None:
                err(lineno, f"unparsable sample line: {line!r}")
                continue
            name = m.group("name")
            labels = {}
            if m.group("labels"):
                for pair in m.group("labels").split(","):
                    lm = LABEL_PAIR.match(pair)
                    if lm is None or not LABEL_NAME.match(lm.group("key")):
                        err(lineno, f"malformed label {pair!r} in {line!r}")
                        continue
                    labels[lm.group("key")] = lm.group("val")
            try:
                value = parse_value(m.group("value"))
            except ValueError:
                err(lineno, f"bad sample value {m.group('value')!r}")
                continue
            # Resolve the family this sample belongs to: histogram
            # samples use <family>_bucket/_sum/_count.
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                base = name[:-len(suffix)] if name.endswith(suffix) else None
                if base and types.get(base) == "histogram":
                    family = base
                    break
            if family not in types:
                err(lineno, f"sample {name!r} has no preceding TYPE")
                continue
            if types[family] == "counter" and not name.endswith("_total"):
                err(lineno, f"counter sample {name!r} must end in _total")
            samples.setdefault(family, []).append((name, labels, value))

    for family in declared_order:
        if family not in helped:
            errors.append(f"{path}: family {family} has TYPE but no HELP")
        rows = samples.get(family, [])
        if not rows:
            errors.append(f"{path}: family {family} declared but empty")
            continue
        if types[family] != "histogram":
            continue
        # Cumulative buckets per label-set (minus `le`), +Inf last,
        # counts non-decreasing, plus one _sum and one _count each.
        series = {}
        for name, labels, value in rows:
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            series.setdefault(key, {"buckets": [], "sum": 0, "count": 0})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"{path}: {family} bucket without le")
                    continue
                series[key]["buckets"].append(
                    (parse_value(labels["le"]), value))
            elif name.endswith("_sum"):
                series[key]["sum"] += 1
            elif name.endswith("_count"):
                series[key]["count"] += 1
        for key, s in series.items():
            where = f"{family}{dict(key) if key else ''}"
            buckets = s["buckets"]
            if not buckets or buckets[-1][0] != float("inf"):
                errors.append(f"{path}: {where} buckets must end at +Inf")
            uppers = [b[0] for b in buckets]
            counts = [b[1] for b in buckets]
            if uppers != sorted(uppers):
                errors.append(f"{path}: {where} le bounds not ascending")
            if counts != sorted(counts):
                errors.append(f"{path}: {where} bucket counts not cumulative")
            if s["sum"] != 1 or s["count"] != 1:
                errors.append(
                    f"{path}: {where} needs exactly one _sum and _count")

    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in sys.argv[1:]:
        errors = validate(path)
        for e in errors:
            print(e, file=sys.stderr)
        if errors:
            failures += 1
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
