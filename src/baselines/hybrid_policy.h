// Snape-style hybrid baseline (related work, §11): mix a small
// *on-demand* core with spot expansion. The on-demand core (P
// instances, one full pipeline) can never be preempted, so training
// always makes progress; spot instances add data-parallel pipelines on
// top. Costs mix the two price classes. This quantifies the obvious
// alternative to Parcae: "just buy a reliable core".
#pragma once

#include <memory>

#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "runtime/cluster_sim.h"
#include "runtime/interval_accountant.h"
#include "runtime/parcae_policy.h"

namespace parcae {

struct HybridOptions {
  // On-demand instances reserved for the core pipeline; one pipeline
  // of depth = max(min feasible depth, core_depth).
  int core_depth = 0;  // 0 = use the model's minimum feasible depth
  double regroup_stall_s = 8.0;  // adding/dropping spot pipelines
  ThroughputModelOptions throughput{
      NetworkModel{}, MemorySpec::parcae(), 0.5, 0.0, 1};
};

class HybridSpotPolicy final : public SpotTrainingPolicy {
 public:
  explicit HybridSpotPolicy(ModelProfile model, HybridOptions options = {});

  std::string name() const override { return "Hybrid(OD+spot)"; }
  void reset() override;
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;
  // The on-demand core is billed at the on-demand rate on top of the
  // spot bill the simulator computes.
  double support_cost_usd_per_hour() const override;

  int core_depth() const { return core_depth_; }

 private:
  ModelProfile model_;
  HybridOptions options_;
  ThroughputModel throughput_;
  int core_depth_;
  ParallelConfig current_ = kIdleConfig;
  IntervalAccountant accountant_;
};

}  // namespace parcae
