#include "baselines/varuna_policy.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "runtime/pricing.h"

namespace parcae {

VarunaPolicy::VarunaPolicy(ModelProfile model, VarunaOptions options)
    : model_(std::move(model)),
      options_(options),
      throughput_(model_, options.throughput) {
  accountant_.set_metrics(&obs::default_registry(), options_.metric_prefix);
}

void VarunaPolicy::reset() {
  current_ = kIdleConfig;
  unsaved_samples_ = 0.0;
  train_since_save_s_ = 0.0;
  accountant_.reset();
}

double VarunaPolicy::checkpoint_save_time_s() const {
  return model_.parameters * options_.checkpoint_bytes_per_param /
         options_.storage_bandwidth_bytes_per_s;
}

double VarunaPolicy::support_cost_usd_per_hour() const {
  return Pricing{}.cloud_storage_usd_per_hour;
}

IntervalDecision VarunaPolicy::on_interval(int interval_index,
                                           const AvailabilityEvent& event,
                                           double interval_s) {
  IntervalDecision decision;
  const double T = interval_s;

  const bool availability_changed =
      event.preempted > 0 || event.allocated > 0 || interval_index == 0;

  if (event.preempted > 0 && current_.valid()) {
    // Roll back to the last completed checkpoint: everything trained
    // since is lost; the restart reloads the checkpoint from storage.
    decision.samples_lost = unsaved_samples_;
    unsaved_samples_ = 0.0;
    train_since_save_s_ = 0.0;
  }

  if (availability_changed) {
    // Job morphing to the throughput-optimal configuration.
    const ParallelConfig target = throughput_.best_config(event.available);
    if (target != current_ || event.preempted > 0) {
      if (target.valid()) {
        accountant_.add_stall(
            checkpoint_save_time_s()  // reload = same volume
            + options_.reconfigure_fixed_s);
      }
      current_ = target;
    }
  }

  // Consume as much of the outstanding stall as fits this interval.
  double stall = accountant_.charge(T);

  double tput = 0.0;
  if (current_.valid()) {
    tput = throughput_.throughput(current_);
    double train_s = std::max(0.0, T - stall);
    // Periodic checkpointing: each save stalls training for the
    // unoverlapped fraction of the save time.
    const double save_time = checkpoint_save_time_s();
    const double period = options_.checkpoint_period_s;
    double saves = 0.0;
    if (period > 0.0 && train_s > 0.0) {
      double progressed = train_since_save_s_ + train_s;
      while (progressed >= period) {
        progressed -= period;
        saves += 1.0;
      }
    }
    accountant_.add_stall(saves * save_time * options_.save_stall_fraction);
    const double save_stall = accountant_.charge(train_s);
    train_s -= save_stall;
    stall += save_stall;

    // Update checkpoint bookkeeping: a completed save persists all
    // samples up to its point in time.
    train_since_save_s_ += train_s;
    unsaved_samples_ += tput * train_s;
    if (saves > 0.0 && period > 0.0) {
      const double leftover = std::fmod(train_since_save_s_, period);
      train_since_save_s_ = leftover;
      unsaved_samples_ = tput * leftover;
    }
  }

  IntervalAccountant::settle(decision, current_, tput, stall, T);
  if (availability_changed && current_.valid())
    decision.note = transition_note("morph", current_);
  else if (!current_.valid())
    decision.note = "suspended (no feasible pipeline)";
  return decision;
}

}  // namespace parcae
