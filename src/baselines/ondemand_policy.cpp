#include "baselines/ondemand_policy.h"

#include "obs/metrics.h"
#include "runtime/interval_accountant.h"

namespace parcae {

SpotTrace flat_trace(int instances, double duration_s,
                     const std::string& name) {
  return SpotTrace(name, instances, instances, duration_s, {});
}

OnDemandPolicy::OnDemandPolicy(ModelProfile model,
                               ThroughputModelOptions options)
    : model_(std::move(model)), throughput_(model_, options) {}

IntervalDecision OnDemandPolicy::on_interval(int interval_index,
                                             const AvailabilityEvent& event,
                                             double interval_s) {
  (void)interval_index;
  IntervalDecision decision;
  const ParallelConfig config = throughput_.best_config(event.available);
  IntervalAccountant::settle(decision, config, throughput_.throughput(config),
                             0.0, interval_s);
  obs::default_registry().counter("policy.OnDemand.intervals").inc();
  return decision;
}

}  // namespace parcae
