// On-demand baseline: a fixed fleet of dedicated instances, the
// throughput-optimal configuration, no preemptions, no stalls. Run it
// over flat_trace() and price it with
// SimulationOptions::instances_are_ondemand = true.
#pragma once

#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "runtime/cluster_sim.h"

namespace parcae {

// A constant-availability trace (for the on-demand baseline).
SpotTrace flat_trace(int instances, double duration_s,
                     const std::string& name = "on-demand");

class OnDemandPolicy final : public SpotTrainingPolicy {
 public:
  explicit OnDemandPolicy(ModelProfile model,
                          ThroughputModelOptions options = {
                              NetworkModel{}, MemorySpec::parcae(), 0.5, 0.0,
                              1});

  std::string name() const override { return "On-Demand"; }
  void reset() override {}
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;

  const ThroughputModel& throughput_model() const { return throughput_; }

 private:
  ModelProfile model_;
  ThroughputModel throughput_;
};

}  // namespace parcae
