// Varuna-style baseline (checkpoint-based, throughput-optimized,
// reactive) following the paper's characterization (§1, §2.2, §10.2):
//   - periodically saves full training state to cloud storage
//     (partially overlapped with training),
//   - on any availability change, "job morphing" reconfigures to the
//     throughput-optimal (D, P) for the new instance count,
//   - a preemption rolls training back to the last completed
//     checkpoint (losing the progress since) and restarts by loading
//     the checkpoint from storage,
//   - its memory stack keeps full Adam states on the GPU, giving the
//     deepest minimum pipeline depth of the three systems.
#pragma once

#include <string>

#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "runtime/cluster_sim.h"
#include "runtime/interval_accountant.h"

namespace parcae {

struct VarunaOptions {
  double checkpoint_period_s = 300.0;  // training time between saves
  // S3-class aggregate bandwidth; shard loads are partially parallel
  // across instances, so the effective rate exceeds one connection.
  double storage_bandwidth_bytes_per_s = 600e6;
  // Fraction of a save not hidden behind training.
  double save_stall_fraction = 0.25;
  // Fixed reconfiguration cost on top of the checkpoint load
  // (process respawn, rendezvous, model rebuild).
  double reconfigure_fixed_s = 35.0;
  // Bytes of training state checkpointed per parameter (fp16 weights
  // + fp32 master + Adam moments).
  double checkpoint_bytes_per_param = 14.0;
  // Prefix for the stall instruments in obs::default_registry();
  // CheckFreq reuses this policy under its own name.
  std::string metric_prefix = "policy.Varuna";
  ThroughputModelOptions throughput{
      NetworkModel{}, MemorySpec::varuna(), 0.5, 0.0, 1};
};

class VarunaPolicy final : public SpotTrainingPolicy {
 public:
  explicit VarunaPolicy(ModelProfile model, VarunaOptions options = {});

  std::string name() const override { return "Varuna"; }
  void reset() override;
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;
  double support_cost_usd_per_hour() const override;

  const ThroughputModel& throughput_model() const { return throughput_; }
  double checkpoint_save_time_s() const;

 private:
  ModelProfile model_;
  VarunaOptions options_;
  ThroughputModel throughput_;

  ParallelConfig current_ = kIdleConfig;
  double unsaved_samples_ = 0.0;
  double train_since_save_s_ = 0.0;
  // Large checkpoint reloads span several intervals for big models;
  // the accountant carries the spillover.
  IntervalAccountant accountant_;
};

}  // namespace parcae
