// TorchElastic-style baseline (§2.2): elastic *data parallelism only*.
// Feasible only when the whole model (with optimizer states) fits one
// GPU; on availability changes the process group is re-formed and the
// in-flight iteration is lost. Demonstrates why pipeline parallelism
// is mandatory for the large models.
#pragma once

#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "runtime/cluster_sim.h"
#include "runtime/interval_accountant.h"

namespace parcae {

struct ElasticDpOptions {
  double regroup_stall_s = 9.0;  // rendezvous + process-group rebuild
  ThroughputModelOptions throughput{
      NetworkModel{}, MemorySpec::parcae(), 0.5, 0.0, 1};
};

class ElasticDpPolicy final : public SpotTrainingPolicy {
 public:
  explicit ElasticDpPolicy(ModelProfile model, ElasticDpOptions options = {});

  std::string name() const override { return "Elastic-DP"; }
  void reset() override;
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;

  // Whether the model fits a single GPU at all.
  bool model_fits() const { return throughput_.min_pipeline_depth() == 1; }

 private:
  ModelProfile model_;
  ElasticDpOptions options_;
  ThroughputModel throughput_;
  ParallelConfig current_ = kIdleConfig;
  IntervalAccountant accountant_;
};

}  // namespace parcae
