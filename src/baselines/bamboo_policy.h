// Bamboo-style baseline (redundancy-based, reactive) following the
// paper's characterization (§1, §2.2, §10.2, Table 5):
//   - fixed pipeline depth P per model; the number of pipelines is
//     floor(N / P) (instances beyond D*P sit idle),
//   - every instance redundantly computes its successor's layers;
//     the overhead cannot be fully hidden in pipeline bubbles and
//     shows up as a throughput tax and as redundant GPU hours,
//   - redundant states double per-instance memory, forcing the deep
//     fixed pipelines of Table 5,
//   - preemptions are recovered quickly from the redundant copies
//     (small stall, no lost progress) unless fewer than P instances
//     remain, in which case training cannot proceed at all.
#pragma once

#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "runtime/cluster_sim.h"
#include "runtime/interval_accountant.h"

namespace parcae {

struct BambooOptions {
  int fixed_depth = 0;  // 0 = use the Table-5 depth for the model
  // Extra compute per stage from redundant forward(+backward) work
  // that pipeline bubbles cannot absorb, plus the synchronization
  // between redundant and normal modules. Calibrated so redundant
  // work is >40% of Bamboo's GPU hours, as the paper measures
  // (Figure 12).
  double redundant_compute_fraction = 0.65;
  double recovery_stall_s = 12.0;   // per preemption event
  double join_stall_s = 6.0;        // incorporate new instances
  ThroughputModelOptions throughput{
      NetworkModel{}, MemorySpec::bamboo(), 0.5, 0.65, 1};
};

// Table 5 of the paper.
int bamboo_table5_depth(const ModelProfile& model);

class BambooPolicy final : public SpotTrainingPolicy {
 public:
  explicit BambooPolicy(ModelProfile model, BambooOptions options = {});

  std::string name() const override { return "Bamboo"; }
  void reset() override;
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;

  const ThroughputModel& throughput_model() const { return throughput_; }
  int depth() const { return depth_; }

 private:
  ModelProfile model_;
  BambooOptions options_;
  ThroughputModel throughput_;
  int depth_;
  ParallelConfig current_ = kIdleConfig;
  IntervalAccountant accountant_;
};

}  // namespace parcae
