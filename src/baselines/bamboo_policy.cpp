#include "baselines/bamboo_policy.h"

#include <algorithm>

#include "obs/metrics.h"

namespace parcae {

int bamboo_table5_depth(const ModelProfile& model) {
  if (model.name == "ResNet-152") return 4;
  if (model.name == "VGG-19") return 4;
  if (model.name == "BERT-Large") return 8;
  if (model.name == "GPT-2") return 16;
  if (model.name == "GPT-3") return 23;
  // Unknown model: twice the memory-model minimum as a heuristic.
  return 8;
}

BambooPolicy::BambooPolicy(ModelProfile model, BambooOptions options)
    : model_(std::move(model)),
      options_(options),
      throughput_(model_,
                  [&] {
                    auto t = options.throughput;
                    t.redundant_compute_fraction =
                        options.redundant_compute_fraction;
                    return t;
                  }()),
      depth_(options.fixed_depth > 0 ? options.fixed_depth
                                     : bamboo_table5_depth(model_)) {
  accountant_.set_metrics(&obs::default_registry(), "policy.Bamboo");
}

void BambooPolicy::reset() {
  current_ = kIdleConfig;
  accountant_.reset();
}

IntervalDecision BambooPolicy::on_interval(int interval_index,
                                           const AvailabilityEvent& event,
                                           double interval_s) {
  (void)interval_index;
  IntervalDecision decision;
  const double T = interval_s;

  const int max_pipelines =
      std::max(1, model_.mini_batch / model_.micro_batch);
  const int d = std::min(event.available / depth_, max_pipelines);
  ParallelConfig target = d >= 1 ? ParallelConfig{d, depth_} : kIdleConfig;
  // The fixed depth must itself be memory-feasible (it is for the
  // Table-5 depths; a user-supplied shallower depth may not be).
  if (target.valid() && !throughput_.feasible(target)) target = kIdleConfig;

  if (event.preempted > 0 && current_.valid())
    accountant_.add_stall(options_.recovery_stall_s);
  if ((event.allocated > 0 || target != current_) && target.valid())
    accountant_.add_stall(options_.join_stall_s);
  const double stall = accountant_.charge(T);

  IntervalAccountant::settle(decision, target,
                             target.valid() ? throughput_.throughput(target)
                                            : 0.0,
                             stall, T);
  if (target.valid()) {
    // Redundant share of the compute actually performed.
    const double r = options_.redundant_compute_fraction;
    decision.gpu_s_redundant = static_cast<double>(target.instances()) *
                               std::max(0.0, T - stall) * r / (1.0 + r);
  } else {
    decision.note = "suspended (fewer than P instances)";
  }
  current_ = target;
  return decision;
}

}  // namespace parcae
