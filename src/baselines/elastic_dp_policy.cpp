#include "baselines/elastic_dp_policy.h"

#include <algorithm>

#include "obs/metrics.h"

namespace parcae {

ElasticDpPolicy::ElasticDpPolicy(ModelProfile model, ElasticDpOptions options)
    : model_(std::move(model)),
      options_(options),
      throughput_(model_, options.throughput) {
  accountant_.set_metrics(&obs::default_registry(), "policy.ElasticDP");
}

void ElasticDpPolicy::reset() {
  current_ = kIdleConfig;
  accountant_.reset();
}

IntervalDecision ElasticDpPolicy::on_interval(int interval_index,
                                              const AvailabilityEvent& event,
                                              double interval_s) {
  (void)interval_index;
  IntervalDecision decision;
  const double T = interval_s;
  if (!model_fits()) {
    decision.note = "model does not fit a single GPU";
    return decision;
  }
  const int max_pipelines =
      std::max(1, model_.mini_batch / model_.micro_batch);
  const int d = std::min(event.available, max_pipelines);
  const ParallelConfig target = d >= 1 ? ParallelConfig{d, 1} : kIdleConfig;

  double lost = 0.0;
  const double tput = target.valid() ? throughput_.throughput(target) : 0.0;
  if (target != current_ && target.valid()) {
    accountant_.add_stall(options_.regroup_stall_s);
    if (event.preempted > 0 && current_.valid()) {
      // In-flight iteration is abandoned on a shrink.
      lost = static_cast<double>(model_.mini_batch);
    }
  }
  const double stall = accountant_.charge(T);

  IntervalAccountant::settle(decision, target, tput, stall, T);
  decision.samples_lost = lost;
  current_ = target;
  return decision;
}

}  // namespace parcae
