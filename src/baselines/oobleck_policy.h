// Oobleck-style baseline (related work, §11): resilient training via
// *precomputed pipeline templates*.
//
// At job start, Oobleck precomputes a set of pipeline templates (one
// per feasible pipeline depth); on a failure it re-instantiates
// pipelines from the templates instead of re-planning, which makes
// recovery fast (template switch) but still *reactive*: it always
// picks the template maximizing instantaneous throughput and pays the
// instantiation cost whenever the template changes. Checkpoints are
// not needed (like Parcae it keeps redundant state lineage across
// pipeline replicas; a full template switch only reshuffles shards).
#pragma once

#include <vector>

#include "migration/cost_model.h"
#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "runtime/cluster_sim.h"
#include "runtime/interval_accountant.h"

namespace parcae {

struct OobleckOptions {
  // Same-template recovery (borrow a replica / drop a pipeline):
  // planned ahead, peer-to-peer, no checkpoint round-trip.
  double recovery_stall_s = 8.0;
  // Lineage only survives while another pipeline replica holds the
  // stage. Running a single pipeline, a preemption destroys state and
  // falls back to the periodic remote checkpoint.
  double checkpoint_period_s = 300.0;
  double storage_bandwidth_bytes_per_s = 600e6;
  double checkpoint_bytes_per_param = 14.0;
  // Templates precomputed at job start: one per depth in this list
  // that is memory-feasible (empty = all feasible depths).
  std::vector<int> template_depths;
  ThroughputModelOptions throughput{
      NetworkModel{}, MemorySpec::parcae(), 0.5, 0.0, 1};
};

class OobleckPolicy final : public SpotTrainingPolicy {
 public:
  explicit OobleckPolicy(ModelProfile model, OobleckOptions options = {});

  std::string name() const override { return "Oobleck"; }
  void reset() override;
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;
  // Coordinator node + checkpoint storage.
  double support_cost_usd_per_hour() const override { return 0.68 + 0.1; }

  const std::vector<int>& templates() const { return templates_; }

 private:
  // Best (throughput-max) instantiation of any template for N nodes.
  ParallelConfig best_instantiation(int available) const;

  ModelProfile model_;
  OobleckOptions options_;
  ThroughputModel throughput_;
  CostEstimator estimator_;
  std::vector<int> templates_;
  ParallelConfig current_ = kIdleConfig;
  IntervalAccountant accountant_;
  double unsaved_samples_ = 0.0;
  double train_since_save_s_ = 0.0;
};

}  // namespace parcae
