#include "baselines/oobleck_policy.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace parcae {

OobleckPolicy::OobleckPolicy(ModelProfile model, OobleckOptions options)
    : model_(std::move(model)),
      options_(options),
      throughput_(model_, options.throughput),
      estimator_(model_) {
  // Precompute templates: every memory-feasible depth (or the
  // user-specified subset).
  const int min_depth = std::max(1, throughput_.min_pipeline_depth());
  if (options_.template_depths.empty()) {
    for (int p = min_depth;
         p <= std::min(32, model_.partition_units); ++p)
      templates_.push_back(p);
  } else {
    for (int p : options_.template_depths)
      if (p >= min_depth && p <= model_.partition_units)
        templates_.push_back(p);
  }
  accountant_.set_metrics(&obs::default_registry(), "policy.Oobleck");
}

void OobleckPolicy::reset() {
  current_ = kIdleConfig;
  accountant_.reset();
  unsaved_samples_ = 0.0;
  train_since_save_s_ = 0.0;
}

ParallelConfig OobleckPolicy::best_instantiation(int available) const {
  ParallelConfig best = kIdleConfig;
  double best_tput = 0.0;
  const int max_pipelines =
      std::max(1, model_.mini_batch / model_.micro_batch);
  for (int p : templates_) {
    const int d = std::min(available / p, max_pipelines);
    if (d < 1) continue;
    const ParallelConfig c{d, p};
    const double tput = throughput_.throughput(c);
    if (tput > best_tput) {
      best_tput = tput;
      best = c;
    }
  }
  return best;
}

IntervalDecision OobleckPolicy::on_interval(int interval_index,
                                            const AvailabilityEvent& event,
                                            double interval_s) {
  (void)interval_index;
  IntervalDecision decision;
  const double T = interval_s;
  const ParallelConfig target = best_instantiation(event.available);

  // With a single pipeline, no replica holds the preempted stage's
  // lineage: fall back to the periodic remote checkpoint (reload and
  // lose the unsaved window).
  if (event.preempted > 0 && current_.valid() && current_.dp <= 1) {
    accountant_.add_stall(model_.parameters *
                          options_.checkpoint_bytes_per_param /
                          options_.storage_bandwidth_bytes_per_s);
    decision.samples_lost = unsaved_samples_;
    unsaved_samples_ = 0.0;
    train_since_save_s_ = 0.0;
    decision.note = "single-pipeline state lost: checkpoint reload";
  } else if (target.valid()) {
    if (current_.valid() && target.pp != current_.pp) {
      // Re-instantiating a different template re-shards the model —
      // planned ahead, but the bytes still move.
      accountant_.add_stall(
          estimator_.pipeline_migration(current_, target).total());
      decision.note = transition_note("template switch", target);
    } else if (event.preempted > 0 || target != current_) {
      accountant_.add_stall(options_.recovery_stall_s);
    }
  }
  const double stall = accountant_.charge(T);

  IntervalAccountant::settle(decision, target,
                             target.valid() ? throughput_.throughput(target)
                                            : 0.0,
                             stall, T);
  if (target.valid()) {
    // Periodic checkpoint bookkeeping (only matters at D=1).
    const double train_s = std::max(0.0, T - stall);
    train_since_save_s_ += train_s;
    unsaved_samples_ += decision.samples_committed;
    if (train_since_save_s_ >= options_.checkpoint_period_s) {
      const double leftover =
          std::fmod(train_since_save_s_, options_.checkpoint_period_s);
      unsaved_samples_ = decision.throughput * leftover;
      train_since_save_s_ = leftover;
    }
  } else {
    decision.note = "no template fits the available instances";
  }
  current_ = target;
  return decision;
}

}  // namespace parcae
