#include "baselines/checkfreq_policy.h"

namespace parcae {

VarunaOptions CheckFreqPolicy::checkfreq_options() {
  VarunaOptions options;
  // Frequent, almost fully overlapped snapshots: tiny rollback window.
  options.checkpoint_period_s = 60.0;
  options.save_stall_fraction = 0.04;
  // Restores still come from object storage: a preempted instance's
  // local snapshot cache disappears with it.
  options.metric_prefix = "policy.CheckFreq";
  return options;
}

CheckFreqPolicy::CheckFreqPolicy(ModelProfile model)
    : inner_(std::move(model), checkfreq_options()) {}

}  // namespace parcae
