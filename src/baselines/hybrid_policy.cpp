#include "baselines/hybrid_policy.h"

#include <algorithm>

#include "obs/metrics.h"
#include "runtime/pricing.h"

namespace parcae {

HybridSpotPolicy::HybridSpotPolicy(ModelProfile model, HybridOptions options)
    : model_(std::move(model)),
      options_(options),
      throughput_(model_, options.throughput),
      core_depth_(options.core_depth > 0
                      ? options.core_depth
                      : std::max(1, throughput_.min_pipeline_depth())) {
  accountant_.set_metrics(&obs::default_registry(), "policy.HybridSpot");
}

void HybridSpotPolicy::reset() {
  current_ = kIdleConfig;
  accountant_.reset();
}

double HybridSpotPolicy::support_cost_usd_per_hour() const {
  return core_depth_ * Pricing{}.ondemand_gpu_usd_per_hour;
}

IntervalDecision HybridSpotPolicy::on_interval(int interval_index,
                                               const AvailabilityEvent& event,
                                               double interval_s) {
  (void)interval_index;
  IntervalDecision decision;
  const double T = interval_s;
  // One on-demand pipeline is always there; spot instances contribute
  // whole extra pipelines of the same depth.
  const int max_pipelines =
      std::max(1, model_.mini_batch / model_.micro_batch);
  const int spot_pipelines =
      std::min(event.available / core_depth_, max_pipelines - 1);
  const ParallelConfig target{1 + spot_pipelines, core_depth_};

  if (current_.valid() && target.dp != current_.dp) {
    // Spot pipelines joined or left: process-group rebuild; the core
    // pipeline keeps the model state so nothing is ever lost.
    accountant_.add_stall(options_.regroup_stall_s);
    decision.note = transition_note("regroup", target);
  }
  const double stall = accountant_.charge(T);

  IntervalAccountant::settle(decision, target, throughput_.throughput(target),
                             stall, T);
  current_ = target;
  return decision;
}

}  // namespace parcae
