// CheckFreq-style baseline (§1, [32]): Varuna's checkpointing replaced
// by fine-grained, pipelined checkpointing — snapshots are taken every
// few iterations and the copy overlaps training almost entirely. The
// paper's point (§5.2 of its intro discussion) is that even this
// "best-case checkpointing" remains reactive: preemptions still roll
// back (a little) and every availability change still forces a full
// reconfiguration with a storage round-trip.
#pragma once

#include "baselines/varuna_policy.h"

namespace parcae {

// Implemented as a configuration of the checkpoint-based policy: very
// short checkpoint period, near-total save overlap, and a warm
// restore cache that halves the reload time.
class CheckFreqPolicy final : public SpotTrainingPolicy {
 public:
  explicit CheckFreqPolicy(ModelProfile model);

  std::string name() const override { return "CheckFreq"; }
  void reset() override { inner_.reset(); }
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override {
    IntervalDecision d = inner_.on_interval(interval_index, event,
                                            interval_s);
    return d;
  }
  double support_cost_usd_per_hour() const override {
    return inner_.support_cost_usd_per_hour();
  }

 private:
  static VarunaOptions checkfreq_options();
  VarunaPolicy inner_;
};

}  // namespace parcae
