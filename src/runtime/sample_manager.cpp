#include "runtime/sample_manager.h"

#include <algorithm>
#include <cassert>

namespace parcae {

SampleManager::SampleManager(std::size_t epoch_size, std::uint64_t seed,
                             bool shuffle)
    : epoch_size_(epoch_size), rng_(seed), shuffle_(shuffle) {
  refill_pool();
}

void SampleManager::refill_pool() {
  pool_.resize(epoch_size_);
  for (std::size_t i = 0; i < epoch_size_; ++i) pool_[i] = i;
  if (shuffle_) rng_.shuffle(pool_);
  committed_ = 0;
  committed_order_.clear();
}

SampleManager::Lease SampleManager::lease(std::size_t batch) {
  Lease out;
  if (pool_.empty() || batch == 0) return out;
  const std::size_t take = std::min(batch, pool_.size());
  out.id = next_lease_id_++;
  out.samples.assign(pool_.end() - static_cast<std::ptrdiff_t>(take),
                     pool_.end());
  pool_.resize(pool_.size() - take);
  leases_[out.id] = out.samples;
  return out;
}

void SampleManager::commit(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  committed_ += it->second.size();
  committed_order_.insert(committed_order_.end(), it->second.begin(),
                          it->second.end());
  leases_.erase(it);
}

void SampleManager::abort(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  // Aborted samples rejoin the pool; they will be re-leased later in
  // a different order, which is exactly the reordering §9.1 argues is
  // statistically harmless.
  pool_.insert(pool_.begin(), it->second.begin(), it->second.end());
  leases_.erase(it);
}

bool SampleManager::epoch_complete() const {
  return committed_ == epoch_size_ && leases_.empty();
}

void SampleManager::start_next_epoch() {
  assert(epoch_complete());
  ++epoch_;
  refill_pool();
}

}  // namespace parcae
