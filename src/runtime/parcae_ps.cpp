#include "runtime/parcae_ps.h"

#include <cassert>

#include "common/fault.h"

namespace parcae {

ParcaePs::ParcaePs(std::vector<float> initial, float lr, float beta1,
                   float beta2, float eps)
    : params_(1, initial.size()),
      grads_(1, initial.size()),
      adam_(lr, beta1, beta2, eps) {
  params_.raw() = std::move(initial);
}

void ParcaePs::restore(const std::vector<float>& parameters,
                       const std::vector<float>& optimizer_state) {
  std::lock_guard lock(mu_);
  assert(parameters.size() == params_.size());
  params_.raw() = parameters;
  std::vector<nn::ParamRef> refs{{&params_, &grads_}};
  adam_.initialize(refs);
  adam_.load_state(optimizer_state);
}

void ParcaePs::push_gradients(const std::vector<float>& grads) {
  std::lock_guard lock(mu_);
  // Fail before any mutation: a caller's retry re-pushes the same
  // gradient without double-applying it.
  if (faults_ != nullptr) faults_->maybe_throw("ps.push");
  assert(grads.size() == params_.size());
  grads_.raw() = grads;
  std::vector<nn::ParamRef> refs{{&params_, &grads_}};
  adam_.step(refs);
  ++version_;
}

std::vector<float> ParcaePs::parameters_snapshot() const {
  std::lock_guard lock(mu_);
  return params_.raw();
}

long long ParcaePs::version() const {
  std::lock_guard lock(mu_);
  return version_;
}

std::vector<float> ParcaePs::optimizer_state() const {
  std::lock_guard lock(mu_);
  return adam_.state();
}

void ParcaePs::set_fault_injector(FaultInjector* faults) {
  std::lock_guard lock(mu_);
  faults_ = faults;
}

}  // namespace parcae
