#include "runtime/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "obs/metrics.h"
#include "rpc/serializer.h"
#include "runtime/kv_store.h"

namespace parcae {

namespace {

// 8-byte file header: magic + format version, padded.
constexpr char kHeader[8] = {'P', 'W', 'A', 'L', '\x01', 0, 0, 0};
constexpr std::size_t kHeaderSize = sizeof(kHeader);
constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc
// A record is a handful of keys and small values; anything bigger is
// framing corruption, not data.
constexpr std::uint32_t kMaxRecord = 16u << 20;

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

void store_u32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

// Writes all of buf (restarting on EINTR / short writes).
bool write_fully(int fd, const char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, buf + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i)
    c = crc_table()[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

const char* wal_record_type_name(WalRecordType type) {
  switch (type) {
    case WalRecordType::kPut: return "kv.put";
    case WalRecordType::kPutWithLease: return "kv.put_with_lease";
    case WalRecordType::kCas: return "kv.cas";
    case WalRecordType::kErase: return "kv.erase";
    case WalRecordType::kLeaseGrant: return "kv.lease_grant";
    case WalRecordType::kLeaseKeepalive: return "kv.lease_keepalive";
    case WalRecordType::kLeaseRevoke: return "kv.lease_revoke";
    case WalRecordType::kAdvanceClock: return "kv.advance_clock";
    case WalRecordType::kDecision: return "scheduler.decision";
  }
  return "unknown";
}

std::string WalRecord::encode() const {
  rpc::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  switch (type) {
    case WalRecordType::kPut:
      w.str(key);
      w.str(value);
      break;
    case WalRecordType::kPutWithLease:
      w.str(key);
      w.str(value);
      w.u64(lease_id);
      break;
    case WalRecordType::kCas:
      w.str(key);
      w.u64(expected_version);
      w.str(value);
      break;
    case WalRecordType::kErase:
      w.str(key);
      break;
    case WalRecordType::kLeaseGrant:
      w.f64(ttl_s);
      break;
    case WalRecordType::kLeaseKeepalive:
    case WalRecordType::kLeaseRevoke:
      w.u64(lease_id);
      break;
    case WalRecordType::kAdvanceClock:
      w.f64(dt_s);
      break;
    case WalRecordType::kDecision:
      w.u64(static_cast<std::uint64_t>(interval));
      w.i64(available);
      w.i64(preempted);
      w.i64(allocated);
      w.i64(advised_dp);
      w.i64(advised_pp);
      w.f64(stall_s);
      w.u32(static_cast<std::uint32_t>(agents.size()));
      for (const std::string& id : agents) w.str(id);
      break;
  }
  return w.take();
}

std::optional<WalRecord> WalRecord::decode(const std::string& payload) {
  try {
    rpc::ByteReader r(payload);
    WalRecord rec;
    const std::uint8_t raw = r.u8();
    if (raw < 1 || raw > static_cast<std::uint8_t>(WalRecordType::kDecision))
      return std::nullopt;
    rec.type = static_cast<WalRecordType>(raw);
    switch (rec.type) {
      case WalRecordType::kPut:
        rec.key = r.str();
        rec.value = r.str();
        break;
      case WalRecordType::kPutWithLease:
        rec.key = r.str();
        rec.value = r.str();
        rec.lease_id = r.u64();
        break;
      case WalRecordType::kCas:
        rec.key = r.str();
        rec.expected_version = r.u64();
        rec.value = r.str();
        break;
      case WalRecordType::kErase:
        rec.key = r.str();
        break;
      case WalRecordType::kLeaseGrant:
        rec.ttl_s = r.f64();
        break;
      case WalRecordType::kLeaseKeepalive:
      case WalRecordType::kLeaseRevoke:
        rec.lease_id = r.u64();
        break;
      case WalRecordType::kAdvanceClock:
        rec.dt_s = r.f64();
        break;
      case WalRecordType::kDecision: {
        rec.interval = static_cast<int>(r.u64());
        rec.available = static_cast<int>(r.i64());
        rec.preempted = static_cast<int>(r.i64());
        rec.allocated = static_cast<int>(r.i64());
        rec.advised_dp = static_cast<int>(r.i64());
        rec.advised_pp = static_cast<int>(r.i64());
        rec.stall_s = r.f64();
        const std::uint32_t n = r.u32();
        rec.agents.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) rec.agents.push_back(r.str());
        break;
      }
    }
    r.expect_done();
    return rec;
  } catch (const rpc::SerializeError&) {
    return std::nullopt;
  }
}

WalRecord WalRecord::put(std::string key, std::string value) {
  WalRecord r;
  r.type = WalRecordType::kPut;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

WalRecord WalRecord::put_with_lease(std::string key, std::string value,
                                    std::uint64_t lease_id) {
  WalRecord r;
  r.type = WalRecordType::kPutWithLease;
  r.key = std::move(key);
  r.value = std::move(value);
  r.lease_id = lease_id;
  return r;
}

WalRecord WalRecord::cas(std::string key, std::uint64_t expected_version,
                         std::string value) {
  WalRecord r;
  r.type = WalRecordType::kCas;
  r.key = std::move(key);
  r.expected_version = expected_version;
  r.value = std::move(value);
  return r;
}

WalRecord WalRecord::erase(std::string key) {
  WalRecord r;
  r.type = WalRecordType::kErase;
  r.key = std::move(key);
  return r;
}

WalRecord WalRecord::lease_grant(double ttl_s) {
  WalRecord r;
  r.type = WalRecordType::kLeaseGrant;
  r.ttl_s = ttl_s;
  return r;
}

WalRecord WalRecord::lease_keepalive(std::uint64_t lease_id) {
  WalRecord r;
  r.type = WalRecordType::kLeaseKeepalive;
  r.lease_id = lease_id;
  return r;
}

WalRecord WalRecord::lease_revoke(std::uint64_t lease_id) {
  WalRecord r;
  r.type = WalRecordType::kLeaseRevoke;
  r.lease_id = lease_id;
  return r;
}

WalRecord WalRecord::advance_clock(double dt_s) {
  WalRecord r;
  r.type = WalRecordType::kAdvanceClock;
  r.dt_s = dt_s;
  return r;
}

// ---- writer -----------------------------------------------------------

bool WalWriter::open(const std::string& path, std::string* error) {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    path_.clear();
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    if (error != nullptr)
      *error = std::string("open: ") + std::strerror(errno);
    return false;
  }
  struct stat st{};
  if (fstat(fd_, &st) != 0) {
    if (error != nullptr)
      *error = std::string("fstat: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  path_ = path;
  torn_ = false;
  if (st.st_size == 0) {
    if (!write_fully(fd_, kHeader, kHeaderSize)) {
      if (error != nullptr)
        *error = std::string("write header: ") + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      path_.clear();
      return false;
    }
    end_offset_ = kHeaderSize;
  } else {
    end_offset_ = static_cast<std::uint64_t>(st.st_size);
    ::lseek(fd_, 0, SEEK_END);
  }
  return true;
}

void WalWriter::close() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

void WalWriter::append(const WalRecord& record) {
  std::lock_guard lock(mu_);
  if (fd_ < 0) throw std::runtime_error("wal: append on closed writer");
  if (torn_) {
    // Self-heal: drop the torn frame a failed append left behind, the
    // way a real log writer resets its tail before retrying.
    if (ftruncate(fd_, static_cast<off_t>(end_offset_)) != 0)
      throw std::runtime_error(std::string("wal: ftruncate: ") +
                               std::strerror(errno));
    ::lseek(fd_, static_cast<off_t>(end_offset_), SEEK_SET);
    torn_ = false;
  }
  const std::string payload = record.encode();
  std::string frame(kFrameHeader, '\0');
  store_u32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  store_u32(frame.data() + 4, crc32(payload.data(), payload.size()));
  frame.append(payload);

  if (faults_ != nullptr && faults_->should_fire("kv.wal_write")) {
    // Torn write: only a prefix of the frame reaches the file — what a
    // crash mid-write leaves. The mutation is NOT applied (the store
    // appends write-ahead); the caller's retry path re-appends and the
    // truncate above repairs the tail.
    const std::size_t torn_bytes = frame.size() / 2;
    write_fully(fd_, frame.data(), torn_bytes);
    torn_ = true;
    throw InjectedFault("kv.wal_write", faults_->hits("kv.wal_write"));
  }

  if (!write_fully(fd_, frame.data(), frame.size()))
    throw std::runtime_error(std::string("wal: write: ") +
                             std::strerror(errno));
  end_offset_ += frame.size();
  bytes_written_ += frame.size();
  ++records_appended_;
  if (options_.fsync_each) ::fsync(fd_);
  if (metrics_ != nullptr) metrics_->counter("kv.wal_records").inc();
}

void WalWriter::sync() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) ::fsync(fd_);
}

// ---- reader -----------------------------------------------------------

WalReadResult read_wal(const std::string& path, bool repair) {
  WalReadResult result;
  const int fd = ::open(path.c_str(), repair ? O_RDWR : O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      result.valid_bytes = 0;
      return result;  // fresh log: ok, zero records
    }
    result.error = std::string("open: ") + std::strerror(errno);
    return result;
  }
  std::string buf;
  {
    char chunk[65536];
    while (true) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        result.error = std::string("read: ") + std::strerror(errno);
        ::close(fd);
        return result;
      }
      if (n == 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  if (buf.size() < kHeaderSize ||
      std::memcmp(buf.data(), kHeader, kHeaderSize) != 0) {
    result.missing_header = true;
    if (!buf.empty()) {
      // Not a WAL (or a crash before the header finished): the whole
      // file is a torn tail.
      result.truncated_records = 1;
      result.truncated_bytes = buf.size();
    }
    result.valid_bytes = 0;
    ::close(fd);
    return result;
  }

  std::size_t pos = kHeaderSize;
  result.valid_bytes = pos;
  while (pos < buf.size()) {
    if (buf.size() - pos < kFrameHeader) break;  // torn frame header
    const std::uint32_t len = load_u32(buf.data() + pos);
    const std::uint32_t crc = load_u32(buf.data() + pos + 4);
    if (len > kMaxRecord) break;                          // corrupt length
    if (buf.size() - pos - kFrameHeader < len) break;     // torn payload
    const std::string payload = buf.substr(pos + kFrameHeader, len);
    if (crc32(payload.data(), payload.size()) != crc) break;  // bit rot
    auto record = WalRecord::decode(payload);
    if (!record.has_value()) break;  // framed but undecodable
    result.records.push_back(std::move(*record));
    pos += kFrameHeader + len;
    result.valid_bytes = pos;
  }
  if (result.valid_bytes < buf.size()) {
    result.truncated_records = 1;
    result.truncated_bytes = buf.size() - result.valid_bytes;
    if (repair) {
      if (ftruncate(fd, static_cast<off_t>(result.valid_bytes)) != 0)
        result.error = std::string("ftruncate: ") + std::strerror(errno);
    }
  }
  ::close(fd);
  return result;
}

WalReplayStats replay_wal(const std::string& path, KvStore& store,
                          std::vector<WalRecord>* decisions,
                          obs::MetricsRegistry* metrics, bool repair) {
  WalReplayStats stats;
  WalReadResult read = read_wal(path, repair);
  if (!read.ok()) {
    stats.error = read.error;
    stats.clean = false;
    return stats;
  }
  stats.truncated_records = read.truncated_records;
  stats.clean = read.truncated_records == 0;
  if (metrics != nullptr && read.truncated_records > 0)
    metrics->counter("kv.wal_truncated_records")
        .add(static_cast<double>(read.truncated_records));
  for (const WalRecord& rec : read.records) {
    ++stats.records;
    switch (rec.type) {
      case WalRecordType::kPut:
        store.put(rec.key, rec.value);
        ++stats.kv_applied;
        break;
      case WalRecordType::kPutWithLease:
        store.put_with_lease(rec.key, rec.value, rec.lease_id);
        ++stats.kv_applied;
        break;
      case WalRecordType::kCas:
        store.cas(rec.key, rec.expected_version, rec.value);
        ++stats.kv_applied;
        break;
      case WalRecordType::kErase:
        store.erase(rec.key);
        ++stats.kv_applied;
        break;
      case WalRecordType::kLeaseGrant:
        store.lease_grant(rec.ttl_s);
        ++stats.kv_applied;
        break;
      case WalRecordType::kLeaseKeepalive:
        store.lease_keepalive(rec.lease_id);
        ++stats.kv_applied;
        break;
      case WalRecordType::kLeaseRevoke:
        store.lease_revoke(rec.lease_id);
        ++stats.kv_applied;
        break;
      case WalRecordType::kAdvanceClock:
        store.advance_clock(rec.dt_s);
        ++stats.kv_applied;
        break;
      case WalRecordType::kDecision:
        if (decisions != nullptr) decisions->push_back(rec);
        ++stats.decisions;
        break;
    }
  }
  if (metrics != nullptr)
    metrics->counter("kv.wal_replayed_records")
        .add(static_cast<double>(stats.records));
  return stats;
}

}  // namespace parcae
