#include "runtime/training_cluster.h"

#include <algorithm>
#include <cassert>

#include "nn/mlp.h"
#include "obs/metrics.h"

namespace parcae {
namespace {

// Slices a full layer-major vector into per-stage pieces given each
// stage's parameter count.
std::vector<std::vector<float>> slice_by_counts(
    const std::vector<float>& full, const std::vector<std::size_t>& counts) {
  std::vector<std::vector<float>> out;
  std::size_t offset = 0;
  for (std::size_t count : counts) {
    assert(offset + count <= full.size());
    out.emplace_back(full.begin() + static_cast<std::ptrdiff_t>(offset),
                     full.begin() + static_cast<std::ptrdiff_t>(offset + count));
    offset += count;
  }
  assert(offset == full.size());
  return out;
}

std::size_t stage_param_count(const std::vector<std::size_t>& dims) {
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    n += dims[i] * dims[i + 1] + dims[i + 1];
  return n;
}

}  // namespace

TrainingCluster::TrainingCluster(TrainingClusterOptions options,
                                 const nn::Dataset* dataset)
    : options_(std::move(options)),
      agent_key_prefix_(options_.kv_namespace + "agent/"),
      dataset_(dataset),
      samples_(options_.epoch_size, options_.seed ^ 0x5511ull),
      rng_(options_.seed ^ 0xc1u) {
  // Bring up the hub endpoint (KvStore + ParcaePS pool behind an
  // RpcServer) and the one agent-side client before any agent exists:
  // allocate() below already registers through the wire.
  if (options_.transport == "tcp") {
    transport_ = rpc::make_tcp_transport(options_.rpc_port);
  } else if (options_.transport == "inproc") {
    transport_ = std::make_unique<rpc::InProcTransport>();
  } else {
    throw std::invalid_argument("TrainingCluster: unknown transport '" +
                                options_.transport + "' (inproc|tcp)");
  }
  server_ = std::make_unique<rpc::RpcServer>(*transport_);
  kv_service_ = std::make_unique<rpc::KvService>(kv_);
  ps_service_ = std::make_unique<rpc::PsService>();
  kv_service_->bind(*server_);
  ps_service_->bind(*server_);
  server_->start();
  rpc::RpcClientOptions client_options;
  client_options.deadline_s = options_.rpc_deadline_s;
  client_options.retry = options_.rpc_retry;
  rpc_client_ = std::make_unique<rpc::RpcClient>(*transport_, "agents",
                                                 client_options);
  kv_client_ = std::make_unique<rpc::KvClient>(*rpc_client_);
  ps_client_ = std::make_unique<rpc::PsClient>(*rpc_client_);
  allocate(options_.initial_instances);
}

TrainingCluster::~TrainingCluster() {
  // The metrics/fault sinks usually belong to the driver's decision
  // core, which is destroyed before this member — detach them so the
  // teardown path (connection close, server stop) cannot touch them.
  set_metrics(nullptr);
  set_fault_injector(nullptr);
  rpc_client_->close();
  server_->stop();
}

std::vector<int> TrainingCluster::allocate(int count) {
  std::vector<int> ids;
  for (int i = 0; i < count; ++i) {
    ParcaeAgent agent;
    agent.id = next_agent_id_++;
    agent.alive = true;
    try {
      agent.lease = kv_client_->lease_grant(options_.agent_lease_ttl_s);
    } catch (const std::exception&) {
      // Wire failure at registration: the agent runs lease-less until
      // the next heartbeat re-grants (counted; the driver may see a
      // false-positive death in between).
      agent.lease = 0;
      this->count("cluster.lease_grants_dropped");
    }
    ids.push_back(agent.id);
    if (agent.lease != 0)
      kv_put_retried(agent_key_prefix_ + std::to_string(agent.id), "spare",
                     agent.lease);
    agents_.push_back(std::move(agent));
  }
  return ids;
}

void TrainingCluster::preempt(const std::vector<int>& agent_ids) {
  for (int id : agent_ids) {
    for (auto& agent : agents_) {
      if (agent.id != id) continue;
      // A notice can arrive for an agent a fault already killed
      // silently; the notice is authoritative, so clean up its stale
      // coordination state instead of waiting for the lease to expire.
      if (!agent.alive && agent.lease == 0) continue;
      agent.alive = false;
      agent.module.reset();
      agent.optimizer.reset();
      agent.pipeline = agent.stage = -1;
      // Graceful: the scheduler was told, so the coordination state is
      // cleaned up eagerly (revoke erases the leased key with a
      // tombstone; the record is then rewritten lease-free).
      try {
        kv_client_->lease_revoke(agent.lease);
      } catch (const std::exception&) {
        // Revocation lost on the wire: the lease expires on its own
        // later, so cleanup is merely delayed.
        count("cluster.kv_publish_dropped");
      }
      agent.lease = 0;
      kv_put_retried(agent_key_prefix_ + std::to_string(id), "preempted");
    }
  }
}

void TrainingCluster::kill(const std::vector<int>& agent_ids) {
  for (int id : agent_ids) {
    for (auto& agent : agents_) {
      if (agent.id != id || !agent.alive) continue;
      agent.alive = false;
      agent.module.reset();
      agent.optimizer.reset();
      agent.pipeline = agent.stage = -1;
      // Silent death: no KvStore write, no lease revocation. The
      // heartbeats stop and the lease expires on its own — that
      // expiry is how the rest of the system finds out.
      count("cluster.unpredicted_kills");
    }
  }
}

int TrainingCluster::kill_random_alive() {
  std::vector<int> candidates;
  for (const auto& agent : agents_)
    if (agent.assigned()) candidates.push_back(agent.id);
  if (candidates.empty())
    for (const auto& agent : agents_)
      if (agent.alive) candidates.push_back(agent.id);
  if (candidates.empty() || faults_ == nullptr) return -1;
  const int victim = candidates[static_cast<std::size_t>(
      faults_->pick(candidates.size()))];
  kill({victim});
  return victim;
}

void TrainingCluster::set_fault_injector(FaultInjector* faults) {
  faults_ = faults;
  kv_.set_fault_injector(faults);
  ps_service_->set_fault_injector(faults);
  transport_->set_fault_injector(faults);
}

void TrainingCluster::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  transport_->set_metrics(metrics);
  server_->set_metrics(metrics);
  rpc_client_->set_metrics(metrics);
}

void TrainingCluster::set_tracers(obs::TraceWriter* agent_tracer,
                                  obs::TraceWriter* hub_tracer) {
  rpc_client_->set_tracer(agent_tracer);
  server_->set_tracer(hub_tracer);
}

void TrainingCluster::heartbeat() {
  for (auto& agent : agents_) {
    if (!agent.alive) continue;
    bool renewed = false;
    if (agent.lease != 0) {
      try {
        renewed =
            with_retry(options_.retry, "kv.keepalive", metrics_,
                       [&] { return kv_client_->lease_keepalive(agent.lease); });
      } catch (const InjectedFault&) {
        // Heartbeat lost this interval; the lease may now expire
        // spuriously (a false-positive death the driver will observe).
        count("cluster.heartbeats_dropped");
        continue;
      } catch (const rpc::TransportError&) {
        count("cluster.heartbeats_dropped");
        continue;
      }
    }
    if (!renewed) {
      // The lease already expired (e.g. dropped heartbeats) or was
      // never granted (a dropped registration): a live agent cannot
      // revive it and must re-register.
      try {
        agent.lease = kv_client_->lease_grant(options_.agent_lease_ttl_s);
      } catch (const std::exception&) {
        agent.lease = 0;
        count("cluster.lease_grants_dropped");
        continue;
      }
      kv_put_retried(agent_key_prefix_ + std::to_string(agent.id),
                     agent.assigned()
                         ? "p" + std::to_string(agent.pipeline) + "s" +
                               std::to_string(agent.stage)
                         : "spare",
                     agent.lease);
      count("cluster.leases_reregistered");
    }
  }
}

void TrainingCluster::kv_put_retried(const std::string& key,
                                     const std::string& value) {
  try {
    with_retry(options_.retry, "kv.put", metrics_,
               [&] { kv_client_->put(key, value); });
  } catch (const InjectedFault&) {
    // Coordination state goes stale; liveness still flows through the
    // lease machinery, so this is survivable (and counted).
    count("cluster.kv_publish_dropped");
  } catch (const rpc::TransportError&) {
    count("cluster.kv_publish_dropped");
  }
}

void TrainingCluster::kv_put_retried(const std::string& key,
                                     const std::string& value,
                                     std::uint64_t lease_id) {
  try {
    with_retry(options_.retry, "kv.put", metrics_,
               [&] { kv_client_->put_with_lease(key, value, lease_id); });
  } catch (const InjectedFault&) {
    count("cluster.kv_publish_dropped");
  } catch (const rpc::TransportError&) {
    count("cluster.kv_publish_dropped");
  }
}

void TrainingCluster::record_event(EventCategory category,
                                   std::string message,
                                   std::map<std::string, std::string> fields) {
  if (events_ != nullptr)
    events_->record(now_s_, category, std::move(message), std::move(fields));
}

void TrainingCluster::count(const char* name) {
  if (metrics_ != nullptr) metrics_->counter(name).inc();
}

void TrainingCluster::preempt_random(int count, Rng& rng) {
  std::vector<int> alive;
  for (const auto& agent : agents_)
    if (agent.alive) alive.push_back(agent.id);
  rng.shuffle(alive);
  alive.resize(std::min<std::size_t>(alive.size(),
                                     static_cast<std::size_t>(count)));
  preempt(alive);
}

int TrainingCluster::alive_count() const {
  int n = 0;
  for (const auto& agent : agents_) n += agent.alive ? 1 : 0;
  return n;
}

int TrainingCluster::spare_count() const {
  int n = 0;
  for (const auto& agent : agents_) n += (agent.alive && !agent.assigned());
  return n;
}

int TrainingCluster::pipeline_depth_limit() const {
  return static_cast<int>(options_.layer_sizes.size()) - 1;
}

ParcaeAgent* TrainingCluster::agent_at(int pipeline, int stage) {
  for (auto& agent : agents_)
    if (agent.assigned() && agent.pipeline == pipeline &&
        agent.stage == stage)
      return &agent;
  return nullptr;
}

const ParcaeAgent* TrainingCluster::agent_at(int pipeline, int stage) const {
  return const_cast<TrainingCluster*>(this)->agent_at(pipeline, stage);
}

TrainingCluster::StageState TrainingCluster::normalized(StageState state) {
  // A never-stepped Adam serializes as [t] alone (moments are lazily
  // allocated); anything but a full [t, m..., v...] record is treated
  // as a fresh optimizer. Fault-driven reconfigures can observe such
  // states (a kill before the first iteration of a new config).
  if (state.optimizer_state.size() != 1 + 2 * state.parameters.size())
    state.optimizer_state.clear();
  return state;
}

TrainingCluster::StageState TrainingCluster::stage_state_from_ps(
    int stage) const {
  assert(stage >= 0 && stage < ps_service_->stage_count());
  // A rollback restore must not fail on a flaky wire: stack the
  // application-level schedule on the client's own resend budget
  // (metrics-less — the pinned retry.* counters track only the §8
  // recoverable operations).
  const rpc::PsStageState pulled =
      with_retry(options_.rpc_retry, "ps.pull", nullptr,
                 [&] { return ps_client_->pull(stage); });
  StageState state;
  state.parameters = pulled.parameters;
  state.optimizer_state = pulled.optimizer_state;
  return normalized(std::move(state));
}

std::vector<TrainingCluster::StageState> TrainingCluster::collect_stage_states(
    bool& used_ps) {
  std::vector<StageState> states;
  if (!config_.valid()) {
    // Suspended or never started: everything comes from ParcaePS (or
    // the genesis initialization at first start, handled by caller).
    const int stages = ps_service_->stage_count();
    for (int s = 0; s < stages; ++s) {
      states.push_back(stage_state_from_ps(s));
      used_ps = true;
    }
    return states;
  }
  for (int s = 0; s < config_.pp; ++s) {
    const ParcaeAgent* survivor = nullptr;
    for (int d = 0; d < config_.dp && survivor == nullptr; ++d)
      survivor = agent_at(d, s);
    if (survivor != nullptr) {
      StageState state;
      state.parameters = survivor->module->flat_parameters();
      state.optimizer_state = survivor->optimizer->state();
      states.push_back(normalized(std::move(state)));
    } else {
      states.push_back(stage_state_from_ps(s));
      used_ps = true;
      ++rollbacks_;
    }
  }
  return states;
}

void TrainingCluster::publish_assignments() {
  kv_put_retried(options_.kv_namespace + "cluster/config",
                 config_.valid() ? config_.to_string() : "suspended");
  for (const auto& agent : agents_) {
    if (!agent.alive) continue;
    kv_put_retried(agent_key_prefix_ + std::to_string(agent.id),
                   agent.assigned()
                       ? "p" + std::to_string(agent.pipeline) + "s" +
                             std::to_string(agent.stage)
                       : "spare");
  }
}

MigrationKind TrainingCluster::reconfigure(ParallelConfig target) {
  if (!target.valid()) {
    for (auto& agent : agents_) {
      if (!agent.assigned()) continue;
      agent.pipeline = agent.stage = -1;
      agent.module.reset();
      agent.optimizer.reset();
    }
    // State survives in ParcaePS; training resumes from there later.
    config_ = kIdleConfig;
    publish_assignments();
    return MigrationKind::kSuspend;
  }
  assert(target.pp >= 1 && target.pp <= pipeline_depth_limit());
  assert(target.instances() <= alive_count());

  bool used_ps = false;
  MigrationKind kind = MigrationKind::kNone;

  const bool depth_change = !config_.valid() || target.pp != config_.pp;

  // Per-stage state for the *target* partition.
  std::vector<StageState> new_states;
  if (depth_change) {
    // Assemble the full model and re-shard it.
    std::vector<float> full_params;
    std::vector<float> full_m;
    std::vector<float> full_v;
    long long opt_t = 0;
    if (!config_.valid() && ps_service_->stage_count() == 0) {
      // Genesis: initialize exactly like the monolithic Mlp would, so
      // distributed training is comparable to serial training.
      nn::Mlp reference(options_.layer_sizes,
                        std::make_unique<nn::Sgd>(0.0f), options_.seed);
      full_params = reference.flat_parameters();
    } else {
      const std::vector<StageState> old = collect_stage_states(used_ps);
      for (const auto& s : old)
        full_params.insert(full_params.end(), s.parameters.begin(),
                           s.parameters.end());
      // Optimizer states: [t, m..., v...] per stage; concatenate the
      // m and v halves in stage (= layer) order.
      bool any_state = false;
      for (const auto& s : old) any_state |= !s.optimizer_state.empty();
      if (any_state) {
        for (const auto& s : old) {
          if (s.optimizer_state.empty()) {
            // Fresh stage (should not happen mid-run); zero-fill.
            full_m.insert(full_m.end(), s.parameters.size(), 0.0f);
            full_v.insert(full_v.end(), s.parameters.size(), 0.0f);
            continue;
          }
          opt_t = static_cast<long long>(s.optimizer_state[0]);
          const std::size_t n = s.parameters.size();
          assert(s.optimizer_state.size() == 1 + 2 * n);
          full_m.insert(full_m.end(), s.optimizer_state.begin() + 1,
                        s.optimizer_state.begin() + 1 +
                            static_cast<std::ptrdiff_t>(n));
          full_v.insert(full_v.end(),
                        s.optimizer_state.begin() + 1 +
                            static_cast<std::ptrdiff_t>(n),
                        s.optimizer_state.end());
        }
      }
    }

    stage_dims_ = nn::split_layer_dims(options_.layer_sizes, target.pp);
    assert(static_cast<int>(stage_dims_.size()) == target.pp);
    std::vector<std::size_t> counts;
    for (const auto& dims : stage_dims_) counts.push_back(stage_param_count(dims));
    const auto param_slices = slice_by_counts(full_params, counts);
    std::vector<std::vector<float>> m_slices, v_slices;
    if (!full_m.empty()) {
      m_slices = slice_by_counts(full_m, counts);
      v_slices = slice_by_counts(full_v, counts);
    }
    for (int s = 0; s < target.pp; ++s) {
      StageState state;
      state.parameters = param_slices[static_cast<std::size_t>(s)];
      if (!m_slices.empty()) {
        state.optimizer_state.push_back(static_cast<float>(opt_t));
        state.optimizer_state.insert(state.optimizer_state.end(),
                                     m_slices[static_cast<std::size_t>(s)]
                                         .begin(),
                                     m_slices[static_cast<std::size_t>(s)]
                                         .end());
        state.optimizer_state.insert(state.optimizer_state.end(),
                                     v_slices[static_cast<std::size_t>(s)]
                                         .begin(),
                                     v_slices[static_cast<std::size_t>(s)]
                                         .end());
      }
      new_states.push_back(std::move(state));
    }
    kind = used_ps ? MigrationKind::kRollback : MigrationKind::kPipeline;

    // Drop all current assignments (everyone rebuilds).
    for (auto& agent : agents_) {
      if (!agent.assigned()) continue;
      agent.pipeline = agent.stage = -1;
      agent.module.reset();
      agent.optimizer.reset();
    }
  } else {
    // Same depth: recover in place. First demote surplus replicas.
    for (auto& agent : agents_) {
      if (agent.assigned() && agent.pipeline >= target.dp) {
        agent.pipeline = agent.stage = -1;
        agent.module.reset();
        agent.optimizer.reset();
        kind = std::max(kind, MigrationKind::kIntraStage);
      }
    }
    // Collect states for stages that need new replicas.
    new_states.resize(static_cast<std::size_t>(target.pp));
    for (int s = 0; s < target.pp; ++s) {
      const ParcaeAgent* survivor = nullptr;
      for (int d = 0; d < config_.dp && survivor == nullptr; ++d)
        survivor = agent_at(d, s);
      if (survivor != nullptr) {
        StageState state;
        state.parameters = survivor->module->flat_parameters();
        state.optimizer_state = survivor->optimizer->state();
        new_states[static_cast<std::size_t>(s)] =
            normalized(std::move(state));
      } else {
        new_states[static_cast<std::size_t>(s)] = stage_state_from_ps(s);
        used_ps = true;
        ++rollbacks_;
      }
    }
  }

  // Rebuild the per-stage ParcaePS replicas for the new partition
  // *before* enacting the plan: an aborted migration falls back to
  // restoring every slot from exactly these replicas. ps.reset is the
  // one call that must not be lost (a missing pool fails every later
  // pull), so it stacks the retry schedules like the rollback pull.
  if (depth_change || ps_service_->stage_count() != target.pp) {
    std::vector<rpc::PsStageState> stages;
    for (int s = 0; s < target.pp; ++s) {
      rpc::PsStageState stage;
      stage.parameters = new_states[static_cast<std::size_t>(s)].parameters;
      stage.optimizer_state =
          new_states[static_cast<std::size_t>(s)].optimizer_state;
      stages.push_back(std::move(stage));
    }
    with_retry(options_.rpc_retry, "ps.reset", nullptr, [&] {
      ps_client_->reset(options_.learning_rate, stages);
    });
  }

  // Installs a stage replica on the first free agent.
  const auto install = [&](int d, int s, const StageState& state) {
    ParcaeAgent* recruit = nullptr;
    for (auto& agent : agents_)
      if (agent.alive && !agent.assigned()) {
        recruit = &agent;
        break;
      }
    assert(recruit != nullptr);  // guaranteed by the instances() check
    recruit->pipeline = d;
    recruit->stage = s;
    recruit->module = std::make_unique<nn::StageModule>(
        stage_dims_[static_cast<std::size_t>(s)],
        s + 1 == target.pp, /*seed=*/1);
    recruit->module->set_flat_parameters(state.parameters);
    recruit->optimizer = std::make_unique<nn::Adam>(options_.learning_rate);
    if (!state.optimizer_state.empty()) {
      recruit->optimizer->initialize(recruit->module->params());
      recruit->optimizer->load_state(state.optimizer_state);
    }
  };

  // Fill every (pipeline, stage) slot, reusing surviving replicas. A
  // "cluster.kill_mid_migration" firing lands between two slot copies
  // — a preemption arriving while the plan is half-executed.
  bool aborted = false;
  for (int d = 0; d < target.dp && !aborted; ++d) {
    for (int s = 0; s < target.pp && !aborted; ++s) {
      if (!depth_change && agent_at(d, s) != nullptr) continue;  // intact
      if (faults_ != nullptr &&
          faults_->should_fire("cluster.kill_mid_migration")) {
        const int victim = kill_random_alive();
        count("cluster.migrations_aborted");
        record_event(EventCategory::kWarning,
                     "mid-migration kill: plan aborted",
                     {{"victim", std::to_string(victim)},
                      {"target", target.to_string()}});
        aborted = true;
        break;
      }
      install(d, s, new_states[static_cast<std::size_t>(s)]);
      if (!depth_change && kind < MigrationKind::kInterStage)
        kind = MigrationKind::kInterStage;
    }
  }

  if (aborted) {
    // Abandon the partially-executed plan: drop every assignment, then
    // fall back to a full kRollback restore from the ParcaePS replicas
    // (which mirror every committed iteration, so nothing is lost).
    for (auto& agent : agents_) {
      if (!agent.assigned()) continue;
      agent.pipeline = agent.stage = -1;
      agent.module.reset();
      agent.optimizer.reset();
    }
    if (target.instances() > alive_count()) {
      // The kill made the target infeasible; pause and hold until the
      // scheduler re-plans with the new availability.
      config_ = kIdleConfig;
      publish_assignments();
      record_event(EventCategory::kMigration,
                   "rollback infeasible after mid-migration kill; suspended",
                   {{"target", target.to_string()}});
      return MigrationKind::kSuspend;
    }
    for (int s = 0; s < target.pp; ++s) {
      const StageState state = stage_state_from_ps(s);
      for (int d = 0; d < target.dp; ++d) install(d, s, state);
    }
    ++rollbacks_;
    used_ps = true;
    record_event(EventCategory::kMigration,
                 "aborted migration recovered via ParcaePS rollback",
                 {{"target", target.to_string()}});
  }

  if (used_ps) kind = MigrationKind::kRollback;

  config_ = target;
  publish_assignments();
  return kind;
}

bool TrainingCluster::assignment_intact() const {
  if (!config_.valid()) return false;
  for (int d = 0; d < config_.dp; ++d)
    for (int s = 0; s < config_.pp; ++s)
      if (agent_at(d, s) == nullptr) return false;
  return true;
}

std::optional<IterationOutcome> TrainingCluster::train_iteration() {
  if (!assignment_intact()) return std::nullopt;
  if (samples_.epoch_complete()) samples_.start_next_epoch();
  const SampleManager::Lease lease = samples_.lease(options_.batch_size);
  if (lease.id == 0) return std::nullopt;

  const int dp = config_.dp;
  const int pp = config_.pp;
  const std::size_t n = lease.samples.size();

  // Per-stage weighted-mean gradients across the data-parallel shards.
  std::vector<std::vector<float>> grad_sums(static_cast<std::size_t>(pp));
  double loss_sum = 0.0;

  const std::size_t base = n / static_cast<std::size_t>(dp);
  const std::size_t remainder = n % static_cast<std::size_t>(dp);
  std::size_t cursor = 0;
  for (int d = 0; d < dp; ++d) {
    const std::size_t share =
        base + (static_cast<std::size_t>(d) < remainder ? 1 : 0);
    if (share == 0) continue;
    const std::vector<std::size_t> shard(
        lease.samples.begin() + static_cast<std::ptrdiff_t>(cursor),
        lease.samples.begin() + static_cast<std::ptrdiff_t>(cursor + share));
    cursor += share;

    nn::Matrix act = dataset_->gather(shard);
    const std::vector<int> labels = dataset_->gather_labels(shard);
    for (int s = 0; s < pp; ++s) {
      ParcaeAgent* agent = agent_at(d, s);
      assert(agent != nullptr);
      agent->module->zero_grad();
      act = agent->module->forward(act);
    }
    nn::SoftmaxCrossEntropy loss;
    const float shard_loss = loss.forward(act, labels);
    const double weight = static_cast<double>(share) / static_cast<double>(n);
    loss_sum += weight * shard_loss;
    nn::Matrix grad = loss.backward();
    for (int s = pp; s-- > 0;) {
      ParcaeAgent* agent = agent_at(d, s);
      grad = agent->module->backward(grad);
      const std::vector<float> g = agent->module->flat_gradients();
      auto& sum = grad_sums[static_cast<std::size_t>(s)];
      if (sum.empty()) sum.assign(g.size(), 0.0f);
      for (std::size_t i = 0; i < g.size(); ++i)
        sum[i] += static_cast<float>(weight) * g[i];
    }
  }

  // An unpredicted zero-grace kill landing here destroys the in-flight
  // iteration: no optimizer state has changed yet, so the lease is
  // abandoned and its samples rejoin the pool for re-leasing —
  // exactly-once accounting is preserved by construction.
  if (faults_ != nullptr &&
      faults_->should_fire("cluster.kill_mid_iteration")) {
    const int victim = kill_random_alive();
    samples_.abort(lease.id);
    count("cluster.mid_iteration_kills");
    record_event(EventCategory::kWarning,
                 "mid-iteration kill: in-flight lease aborted",
                 {{"victim", std::to_string(victim)},
                  {"samples", std::to_string(n)}});
    return std::nullopt;
  }

  // Synchronous update: every replica of a stage applies the same
  // averaged gradient with its own (identical) Adam replica, keeping
  // replicas bit-for-bit consistent; ParcaePS mirrors the update.
  for (int s = 0; s < pp; ++s) {
    const auto& g = grad_sums[static_cast<std::size_t>(s)];
    for (int d = 0; d < dp; ++d) {
      ParcaeAgent* agent = agent_at(d, s);
      agent->module->set_flat_gradients(g);
      agent->optimizer->step(agent->module->params());
    }
    // Push budget exhausted (below): the trainer already stepped, so
    // the replica is refreshed from the trainer's post-update state (a
    // full-state upload instead of the cheap gradient push) — the
    // checkpoint never lags a committed iteration.
    const auto refresh_from_trainer = [&] {
      ParcaeAgent* agent = agent_at(0, s);
      try {
        ps_client_->restore(s, agent->module->flat_parameters(),
                            agent->optimizer->state());
        count("cluster.ps_refreshes");
        record_event(EventCategory::kCheckpoint,
                     "ps push exhausted retries; replica refreshed from "
                     "trainer state",
                     {{"stage", std::to_string(s)}});
      } catch (const std::exception&) {
        // Even the refresh was lost on the wire. The replica now lags
        // this iteration; the next successful push or refresh catches
        // it up, and a rollback meanwhile replays one extra batch.
        count("cluster.ps_refreshes_dropped");
      }
    };
    try {
      with_retry(options_.retry, "ps.push", metrics_,
                 [&] { ps_client_->push(s, g); });
    } catch (const InjectedFault&) {
      refresh_from_trainer();
    } catch (const rpc::TransportError&) {
      refresh_from_trainer();
    }
  }

  samples_.commit(lease.id);
  IterationOutcome outcome;
  outcome.loss = static_cast<float>(loss_sum);
  outcome.samples = n;
  outcome.epoch_finished = samples_.epoch_complete();
  return outcome;
}

float TrainingCluster::eval_loss(const nn::Matrix& x,
                                 const std::vector<int>& labels) {
  assert(config_.valid());
  nn::Matrix act = x;
  for (int s = 0; s < config_.pp; ++s) {
    ParcaeAgent* agent = agent_at(0, s);
    assert(agent != nullptr);
    act = agent->module->forward(act);
  }
  nn::SoftmaxCrossEntropy loss;
  return loss.forward(act, labels);
}

bool TrainingCluster::replicas_consistent() const {
  if (!config_.valid()) return true;
  for (int s = 0; s < config_.pp; ++s) {
    const ParcaeAgent* reference = agent_at(0, s);
    if (reference == nullptr) return false;
    const std::vector<float> expect = reference->module->flat_parameters();
    for (int d = 1; d < config_.dp; ++d) {
      const ParcaeAgent* replica = agent_at(d, s);
      if (replica == nullptr) return false;
      if (replica->module->flat_parameters() != expect) return false;
    }
  }
  return true;
}

std::vector<float> TrainingCluster::assembled_parameters() const {
  std::vector<float> out;
  if (!config_.valid()) return out;
  for (int s = 0; s < config_.pp; ++s) {
    const ParcaeAgent* agent = agent_at(0, s);
    assert(agent != nullptr);
    const std::vector<float> p = agent->module->flat_parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace parcae
