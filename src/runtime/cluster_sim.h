// Cluster simulator: replays a spot-availability trace against a
// training policy and accounts committed samples, GPU hours by
// category (Figure 12), and money (Table 2).
//
// The simulation is interval-quantized with the paper's T = 60 s
// scheduling interval (§5.2 assumes preemptions/allocations take
// effect at interval boundaries; the collected traces are minute-
// aligned). Each interval the policy sees the actual availability and
// returns what it ran, how long it stalled, and what it committed;
// the simulator integrates the ledgers.
#pragma once

#include <string>
#include <vector>

#include "fleet/instance_pool.h"
#include "obs/metrics.h"
#include "parallel/parallel_config.h"
#include "runtime/pricing.h"
#include "trace/spot_trace.h"

namespace parcae {

class FaultInjector;
class SloEngine;

namespace obs {
class TraceWriter;
class TimeSeriesRecorder;
}  // namespace obs

// What a policy decided/experienced during one interval.
struct IntervalDecision {
  ParallelConfig config;          // configuration run this interval
  double stall_s = 0.0;           // time spent not training
  double throughput = 0.0;        // samples/s while training
  double samples_committed = 0.0; // net new committed samples
  double samples_lost = 0.0;      // previously earned progress destroyed
  double gpu_s_redundant = 0.0;   // redundant computation (Bamboo)
  std::string note;               // human-readable event description
};

// Availability change the policy is informed about.
struct AvailabilityEvent {
  int available = 0;    // instances available this interval
  int preempted = 0;    // instances lost at this interval boundary
  int allocated = 0;    // instances gained at this interval boundary
};

// Interface every training system implements (Parcae and baselines).
class SpotTrainingPolicy {
 public:
  virtual ~SpotTrainingPolicy() = default;

  virtual std::string name() const = 0;

  // Called once before the first interval.
  virtual void reset() = 0;

  // One scheduling interval of length `interval_s`.
  virtual IntervalDecision on_interval(int interval_index,
                                       const AvailabilityEvent& event,
                                       double interval_s) = 0;

  // $/hour of supporting on-demand resources (ParcaePS hosts, cloud
  // checkpoint storage). Charged for the whole run.
  virtual double support_cost_usd_per_hour() const { return 0.0; }
};

// ---------------------------------------------------------------------------

struct GpuHoursBreakdown {
  double effective = 0.0;    // committed computation
  double redundant = 0.0;    // Bamboo-style redundant computation
  double handling = 0.0;     // checkpoint/restart/migration stalls
  double lost = 0.0;         // destroyed work (rollbacks, preemptions)
  double unutilized = 0.0;   // idle instances

  double total() const {
    return effective + redundant + handling + lost + unutilized;
  }
};

struct IntervalRecord {
  double time_s = 0.0;
  int available = 0;
  ParallelConfig config;
  double throughput = 0.0;          // samples/s achieved (net of stall)
  double cumulative_samples = 0.0;
  std::string note;
};

struct SimulationResult {
  std::string policy;
  std::string trace;
  double duration_s = 0.0;
  double committed_samples = 0.0;
  double committed_units = 0.0;     // tokens or images
  double avg_sample_throughput = 0.0;
  double avg_unit_throughput = 0.0;
  GpuHoursBreakdown gpu_hours;
  double spot_cost_usd = 0.0;
  double support_cost_usd = 0.0;
  double total_cost_usd = 0.0;
  // USD per unit (token/image); infinity when nothing was committed.
  double cost_per_unit = 0.0;
  std::vector<IntervalRecord> timeline;
  // Everything recorded during the run: simulator-side instruments
  // plus whatever the policy wrote into the shared registry (the
  // injected one, else a run-local instance).
  obs::MetricsSnapshot metrics;
};

struct SimulationOptions {
  double interval_s = 60.0;
  double units_per_sample = 1.0;  // tokens per sample for NLP models
  Pricing pricing;
  bool record_timeline = true;
  bool instances_are_ondemand = false;  // the on-demand baseline
  int gpus_per_instance = 1;            // Fig 10: multi-GPU instances
  // Observability sinks (non-owning, all optional). Inject the same
  // registry into the policy (SchedulerCoreOptions::metrics) to get
  // one merged snapshot and the liveput-estimate column in the time
  // series. The recorder gains one row per scheduling interval; the
  // tracer gains execute-interval spans and per-interval counters.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* tracer = nullptr;
  obs::TimeSeriesRecorder* timeseries = nullptr;
  // Fault injection (non-owning, optional). Each interval where the
  // "sim.unpredicted_preempt" point fires, one instance vanishes
  // beyond what the trace says — a preemption no forecaster saw
  // coming. The injector is rewired to the run's registry so its
  // fault.* counters land in the result snapshot.
  FaultInjector* faults = nullptr;
  // SLO rule engine (non-owning, optional). simulate() points it at
  // the run's registry, time series, and fault injector, then
  // evaluates every rule at the end of each interval (after the
  // series row is recorded), so alerts carry the interval they fired
  // in. With a metric_prefix, rules naming counters/gauges must use
  // the prefixed names; series columns are unprefixed.
  SloEngine* slo = nullptr;
  // Prepended to every sim.* metric name and to the scheduler gauge
  // the time-series recorder reads — set it to the same per-job prefix
  // as the policy's SchedulerCoreOptions::metric_prefix when many
  // simulations share a registry. "" keeps the historical names.
  std::string metric_prefix;
};

// Runs `policy` over the instances `pool` grants it and returns the
// integrated result. The pool is the whole trace for a single job
// (TracePoolView) or an arbiter-granted lease slice for a fleet job
// (SeriesPoolView).
SimulationResult simulate(SpotTrainingPolicy& policy,
                          const InstancePoolView& pool,
                          const SimulationOptions& options);

// Trace-backed convenience: wraps `trace` in a TracePoolView
// (bit-identical to the historical direct-trace path).
SimulationResult simulate(SpotTrainingPolicy& policy, const SpotTrace& trace,
                          const SimulationOptions& options);

}  // namespace parcae
