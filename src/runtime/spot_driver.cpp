#include "runtime/spot_driver.h"

#include <algorithm>
#include <cmath>

#include <map>

#include "obs/profile_span.h"

namespace parcae {

SpotTrainingDriver::SpotTrainingDriver(TrainingClusterOptions cluster_options,
                                       const nn::Dataset* dataset,
                                       SpotDriverOptions options)
    : cluster_options_(cluster_options),
      options_(options),
      cluster_(cluster_options, dataset),
      profile_(derive_profile()),
      core_(profile_, core_options()) {}

ModelProfile SpotTrainingDriver::derive_profile() const {
  ModelProfile profile;
  profile.name = "mlp-in-cluster";
  // Count actual parameters from the layer sizes.
  double params = 0.0;
  const auto& sizes = cluster_options_.layer_sizes;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
    params += static_cast<double>(sizes[i] * sizes[i + 1] + sizes[i + 1]);
  profile.parameters = params;
  profile.partition_units = static_cast<int>(sizes.size()) - 1;
  profile.mini_batch = static_cast<int>(cluster_options_.batch_size);
  profile.micro_batch =
      std::max(1, static_cast<int>(cluster_options_.batch_size) / 8);
  // ~3 flops per parameter per sample (fwd 1x, bwd 2x).
  profile.fwd_flops_per_sample = params * 2.0;
  // Calibrated so one iteration is O(seconds): the optimizer's
  // decisions depend only on relative throughput.
  profile.effective_flops = params * 2.0;
  profile.boundary_activation_bytes =
      static_cast<double>(sizes[1]) * sizeof(float);
  profile.unit_activation_bytes = profile.boundary_activation_bytes * 3.0;
  profile.activation_recompute = false;
  profile.sample_unit = "sample";
  return profile;
}

SchedulerCoreOptions SpotTrainingDriver::core_options() const {
  SchedulerCoreOptions core = options_.scheduler;
  core.interval_s = options_.interval_s;
  core.lookahead = options_.lookahead;
  core.history = options_.history;
  core.seed = options_.seed;
  // The toy cluster can split only as deep as it has layers, and (with
  // ParcaePS restores) can always run a depth-1 pipeline.
  core.min_depth_override = 1;
  core.max_depth_override = cluster_.pipeline_depth_limit();
  return core;
}

SpotDriverReport SpotTrainingDriver::run(const SpotTrace& trace) {
  TraceCloudProvider cloud(trace, options_.seed ^ 0x9e1ull);
  return run(cloud, trace.duration_s());
}

SpotDriverReport SpotTrainingDriver::run(CloudProvider& cloud,
                                         double duration_s) {
  SpotDriverReport report;
  core_.reset();

  const auto intervals =
      static_cast<int>(duration_s / options_.interval_s + 0.5);

  cloud.request_instances(options_.requested_instances);
  // Cloud instance id -> cluster agent id.
  std::map<int, int> instance_to_agent;

  obs::MetricsRegistry& metrics = core_.metrics();
  for (int i = 0; i < intervals; ++i) {
    obs::ProfileSpan interval_span("execute-interval", &metrics,
                                   core_.tracer(), "driver");
    ++report.intervals;
    // -- cloud events for this interval. The grace period is long
    // enough to finish the in-flight mini-batch (the paper enforces
    // preemption at mini-batch boundaries), so a notice takes effect
    // at this interval's boundary.
    const double boundary = static_cast<double>(i) * options_.interval_s;
    AvailabilityObservation observed;
    for (const CloudEvent& event : cloud.advance(boundary)) {
      if (event.kind == CloudEvent::Kind::kInstanceGranted) {
        const std::vector<int> agents = cluster_.allocate(1);
        instance_to_agent[event.instance_id] = agents.front();
        ++observed.allocated;
      } else {
        const auto it = instance_to_agent.find(event.instance_id);
        if (it != instance_to_agent.end()) {
          cluster_.preempt({it->second});
          instance_to_agent.erase(it);
          ++observed.preempted;
        }
      }
    }
    observed.available = cluster_.alive_count();

    // -- one pass of Algorithm 1: adapt the plan to reality, plan the
    // migration, forecast and optimize the next interval.
    const SchedulerDecision advice =
        core_.step(i, observed, options_.interval_s);
    report.advised.push_back(advice.config);

    // -- execute the advised migration on real parameters.
    if (advice.config != cluster_.config() || !cluster_.assignment_intact()) {
      obs::ProfileSpan reconfigure_span("reconfigure", &metrics,
                                        core_.tracer(), "driver");
      const MigrationKind kind = cluster_.reconfigure(advice.config);
      ++report.migrations_by_kind[static_cast<std::size_t>(kind)];
      if (kind != MigrationKind::kNone && kind != MigrationKind::kSuspend) {
        metrics.counter("scheduler.migrations_executed").inc();
        metrics
            .counter(std::string("scheduler.migrations_executed.") +
                     migration_kind_name(kind))
            .inc();
      }
    }
    report.replicas_always_consistent =
        report.replicas_always_consistent && cluster_.replicas_consistent();

    // -- train.
    obs::ProfileSpan train_span("train", &metrics, core_.tracer(), "driver");
    for (int it = 0; it < options_.iterations_per_interval; ++it) {
      const auto outcome = cluster_.train_iteration();
      if (!outcome) break;
      ++report.iterations;
      report.final_loss = outcome->loss;
      if (outcome->epoch_finished) ++report.epochs_completed;
    }
  }
  report.ps_rollbacks = cluster_.rollbacks();
  report.telemetry = core_.telemetry();
  report.metrics = core_.metrics_snapshot();
  return report;
}

}  // namespace parcae
