#include "runtime/spot_driver.h"

#include <algorithm>
#include <cmath>

#include <map>

#include "predict/guards.h"

namespace parcae {

SpotTrainingDriver::SpotTrainingDriver(TrainingClusterOptions cluster_options,
                                       const nn::Dataset* dataset,
                                       SpotDriverOptions options)
    : cluster_options_(cluster_options),
      options_(options),
      cluster_(cluster_options, dataset),
      profile_(derive_profile()),
      throughput_(profile_, {}),
      optimizer_(&throughput_, CostEstimator(profile_),
                 LiveputOptimizerOptions{options.interval_s, 128,
                                         options.seed}),
      predictor_(make_parcae_predictor(64.0)),
      rng_(options.seed ^ 0x77aaull) {}

ModelProfile SpotTrainingDriver::derive_profile() const {
  ModelProfile profile;
  profile.name = "mlp-in-cluster";
  // Count actual parameters from the layer sizes.
  double params = 0.0;
  const auto& sizes = cluster_options_.layer_sizes;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
    params += static_cast<double>(sizes[i] * sizes[i + 1] + sizes[i + 1]);
  profile.parameters = params;
  profile.partition_units = static_cast<int>(sizes.size()) - 1;
  profile.mini_batch = static_cast<int>(cluster_options_.batch_size);
  profile.micro_batch =
      std::max(1, static_cast<int>(cluster_options_.batch_size) / 8);
  // ~3 flops per parameter per sample (fwd 1x, bwd 2x).
  profile.fwd_flops_per_sample = params * 2.0;
  // Calibrated so one iteration is O(seconds): the optimizer's
  // decisions depend only on relative throughput.
  profile.effective_flops = params * 2.0;
  profile.boundary_activation_bytes =
      static_cast<double>(sizes[1]) * sizeof(float);
  profile.unit_activation_bytes = profile.boundary_activation_bytes * 3.0;
  profile.activation_recompute = false;
  profile.sample_unit = "sample";
  return profile;
}

SpotDriverReport SpotTrainingDriver::run(const SpotTrace& trace) {
  TraceCloudProvider cloud(trace, options_.seed ^ 0x9e1ull);
  return run(cloud, trace.duration_s());
}

SpotDriverReport SpotTrainingDriver::run(CloudProvider& cloud,
                                         double duration_s) {
  SpotDriverReport report;
  std::vector<double> history;
  ParallelConfig planned = kIdleConfig;

  const int max_depth = cluster_.pipeline_depth_limit();
  const int max_pipelines =
      std::max(1, profile_.mini_batch / profile_.micro_batch);
  const auto intervals =
      static_cast<int>(duration_s / options_.interval_s + 0.5);

  cloud.request_instances(options_.requested_instances);
  // Cloud instance id -> cluster agent id.
  std::map<int, int> instance_to_agent;

  for (int i = 0; i < intervals; ++i) {
    ++report.intervals;
    // -- cloud events for this interval. The grace period is long
    // enough to finish the in-flight mini-batch (the paper enforces
    // preemption at mini-batch boundaries), so a notice takes effect
    // at this interval's boundary.
    const double boundary = static_cast<double>(i) * options_.interval_s;
    for (const CloudEvent& event : cloud.advance(boundary)) {
      if (event.kind == CloudEvent::Kind::kInstanceGranted) {
        const std::vector<int> agents = cluster_.allocate(1);
        instance_to_agent[event.instance_id] = agents.front();
      } else {
        const auto it = instance_to_agent.find(event.instance_id);
        if (it != instance_to_agent.end()) {
          cluster_.preempt({it->second});
          instance_to_agent.erase(it);
        }
      }
    }
    const int target_n = cluster_.alive_count();

    // -- adapt the planned configuration to reality (§8).
    ParallelConfig desired =
        planned.valid() ? planned : throughput_.best_config(target_n);
    ParallelConfig adapted = adapt_configuration(
        desired, target_n, /*min_depth=*/1, max_depth, max_pipelines);
    if (adapted.valid() && adapted.pp > max_depth)
      adapted = kIdleConfig;

    // -- execute the live migration on real parameters.
    if (adapted != cluster_.config() || !cluster_.assignment_intact()) {
      const MigrationKind kind = cluster_.reconfigure(adapted);
      ++report.migrations_by_kind[static_cast<std::size_t>(kind)];
    }
    report.replicas_always_consistent =
        report.replicas_always_consistent && cluster_.replicas_consistent();

    // -- train.
    for (int it = 0; it < options_.iterations_per_interval; ++it) {
      const auto outcome = cluster_.train_iteration();
      if (!outcome) break;
      ++report.iterations;
      report.final_loss = outcome->loss;
      if (outcome->epoch_finished) ++report.epochs_completed;
    }

    // -- forecast and plan the next interval (§5, §7).
    history.push_back(static_cast<double>(target_n));
    const std::size_t h = std::min(
        history.size(), static_cast<std::size_t>(options_.history));
    const std::vector<double> forecast = predictor_->forecast(
        std::span<const double>(history.data() + history.size() - h, h),
        options_.lookahead);
    std::vector<int> predicted;
    for (double f : forecast)
      predicted.push_back(std::clamp(static_cast<int>(std::lround(f)), 0,
                                     64));
    planned = optimizer_.advise(cluster_.config(), target_n, predicted);
    // The optimizer reasons over the full O(N log N) space; the toy
    // cluster can only split as deep as it has layers.
    if (planned.valid() && planned.pp > max_depth)
      planned = ParallelConfig{std::max(1, planned.instances() / max_depth),
                               max_depth};
  }
  report.ps_rollbacks = cluster_.rollbacks();
  return report;
}

}  // namespace parcae
