#include "runtime/spot_driver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <map>
#include <optional>

#include "core/slo.h"
#include "obs/profile_span.h"
#include "obs/trace_context.h"

namespace parcae {

namespace {

// Lease TTLs must track the driver's interval (heartbeats fire once
// per interval; 2.5 intervals tolerates one dropped heartbeat before a
// false-positive expiry). Callers who set a TTL explicitly keep it.
TrainingClusterOptions tuned_cluster_options(TrainingClusterOptions options,
                                             const SpotDriverOptions& driver) {
  if (options.agent_lease_ttl_s == TrainingClusterOptions{}.agent_lease_ttl_s)
    options.agent_lease_ttl_s = 2.5 * driver.interval_s;
  return options;
}

}  // namespace

SpotTrainingDriver::SpotTrainingDriver(TrainingClusterOptions cluster_options,
                                       const nn::Dataset* dataset,
                                       SpotDriverOptions options)
    : cluster_options_(tuned_cluster_options(cluster_options, options)),
      options_(options),
      cluster_(cluster_options_, dataset),
      profile_(derive_profile()),
      core_(profile_, core_options()) {
  faults_ = options_.faults;
  if (faults_ == nullptr) {
    if (const char* spec = std::getenv("PARCAE_FAULTS");
        spec != nullptr && *spec != '\0') {
      auto injector = std::make_unique<FaultInjector>(options_.seed ^ 0xfa017ull);
      std::string error;
      if (injector->arm_from_spec(spec, &error)) {
        owned_faults_ = std::move(injector);
        faults_ = owned_faults_.get();
      } else {
        std::fprintf(stderr, "spot_driver: PARCAE_FAULTS ignored: %s\n",
                     error.c_str());
      }
    }
  }
  // The cluster shares the core's registry and event log so one
  // report/dashboard covers decisions and fault recoveries alike.
  cluster_.set_metrics(&core_.metrics());
  cluster_.set_event_log(&core_.event_log());
  // Distributed tracing across the wire: agent-side rpc.call spans go
  // to the scheduler's writer (nesting under decision spans); hub-side
  // rpc.handle spans go to the separate hub writer, with its own
  // deterministic id stream — two files `trace_tool merge` fuses.
  if (options_.hub_tracer != nullptr) {
    options_.hub_tracer->enable_trace_ids(
        obs::fork_trace_seed(options_.seed, /*component=*/2));
    options_.hub_tracer->set_process(2, "hub");
  }
  if (options_.scheduler.tracer != nullptr)
    options_.scheduler.tracer->set_process(1, "scheduler");
  cluster_.set_tracers(options_.scheduler.tracer, options_.hub_tracer);
  if (faults_ != nullptr) {
    faults_->set_metrics(&core_.metrics());
    cluster_.set_fault_injector(faults_);
  }
  if (options_.slo != nullptr) {
    options_.slo->set_metrics(&core_.metrics());
    options_.slo->set_event_log(&core_.event_log());
    options_.slo->set_alert_metrics(&core_.metrics());
    options_.slo->set_fault_injector(faults_);
  }
}

ModelProfile SpotTrainingDriver::derive_profile() const {
  ModelProfile profile;
  profile.name = "mlp-in-cluster";
  // Count actual parameters from the layer sizes.
  double params = 0.0;
  const auto& sizes = cluster_options_.layer_sizes;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
    params += static_cast<double>(sizes[i] * sizes[i + 1] + sizes[i + 1]);
  profile.parameters = params;
  profile.partition_units = static_cast<int>(sizes.size()) - 1;
  profile.mini_batch = static_cast<int>(cluster_options_.batch_size);
  profile.micro_batch =
      std::max(1, static_cast<int>(cluster_options_.batch_size) / 8);
  // ~3 flops per parameter per sample (fwd 1x, bwd 2x).
  profile.fwd_flops_per_sample = params * 2.0;
  // Calibrated so one iteration is O(seconds): the optimizer's
  // decisions depend only on relative throughput.
  profile.effective_flops = params * 2.0;
  profile.boundary_activation_bytes =
      static_cast<double>(sizes[1]) * sizeof(float);
  profile.unit_activation_bytes = profile.boundary_activation_bytes * 3.0;
  profile.activation_recompute = false;
  profile.sample_unit = "sample";
  return profile;
}

SchedulerCoreOptions SpotTrainingDriver::core_options() const {
  SchedulerCoreOptions core = options_.scheduler;
  core.interval_s = options_.interval_s;
  core.lookahead = options_.lookahead;
  core.history = options_.history;
  core.seed = options_.seed;
  // The toy cluster can split only as deep as it has layers, and (with
  // ParcaePS restores) can always run a depth-1 pipeline.
  core.min_depth_override = 1;
  core.max_depth_override = cluster_.pipeline_depth_limit();
  return core;
}

ParallelConfig SpotTrainingDriver::clamp_to_alive(ParallelConfig advice,
                                                  int alive) {
  if (!advice.valid() || alive <= 0) return kIdleConfig;
  ParallelConfig clamped = advice;
  clamped.pp = std::min(clamped.pp, alive);
  clamped.dp = std::min(clamped.dp, alive / clamped.pp);
  return clamped.valid() ? clamped : kIdleConfig;
}

SpotDriverReport SpotTrainingDriver::run(const SpotTrace& trace) {
  TraceCloudProvider cloud(trace, options_.seed ^ 0x9e1ull);
  return run(cloud, trace.duration_s());
}

SpotDriverReport SpotTrainingDriver::run(const InstancePoolView& pool) {
  if (const SpotTrace* trace = pool.backing_trace(); trace != nullptr)
    return run(*trace);
  const SpotTrace lease_trace = SpotTrace::from_minute_series(
      pool.name(), pool.availability_series(options_.interval_s),
      pool.capacity(), options_.interval_s);
  return run(lease_trace);
}

SpotDriverReport SpotTrainingDriver::run(CloudProvider& cloud,
                                         double duration_s) {
  SpotDriverReport report;
  core_.reset();

  const auto intervals =
      static_cast<int>(duration_s / options_.interval_s + 0.5);

  cloud.request_instances(options_.requested_instances);
  // Cloud instance id -> cluster agent id.
  std::map<int, int> instance_to_agent;

  obs::MetricsRegistry& metrics = core_.metrics();

  // Tombstones of agent/ keys observed while the kv clock advances are
  // lease expiries — the only channel through which a silent kill()
  // surfaces (§8): the dead agent wrote nothing, its heartbeats just
  // stopped. (Graceful preemptions tombstone too, but outside the
  // advance_clock window, so they never land in this vector.)
  std::vector<std::string> expired_keys;
  const std::uint64_t watch_id = cluster_.kv().watch(
      cluster_.agent_key_prefix(),
      [&expired_keys](const std::string& key, const KvEntry& entry) {
        if (entry.deleted) expired_keys.push_back(key);
      });

  for (int i = 0; i < intervals; ++i) {
    // One trace per interval, id derived from (seed, interval): the
    // execute-interval span is the root, Algorithm 1's spans nest
    // under it, and every RPC the execution issues carries this trace
    // across the wire into the hub's handler spans.
    std::optional<obs::TraceContextScope> trace_root;
    if (core_.tracer() != nullptr && core_.tracer()->trace_ids_enabled())
      trace_root.emplace(obs::TraceContext{
          obs::derive_trace_id(options_.seed, static_cast<std::uint64_t>(i)),
          0});
    obs::ProfileSpan interval_span("execute-interval", &metrics,
                                   core_.tracer(), "driver");
    ++report.intervals;
    const double boundary = static_cast<double>(i) * options_.interval_s;
    if (faults_ != nullptr) faults_->set_interval(i);
    cluster_.set_time(boundary);

    // -- liveness. Advance the lease clock (expiring agents whose
    // heartbeats stopped since last interval), then renew everyone
    // still alive. Detected deaths join the preemption count the core
    // adapts to — the scheduler learns of them the same way it would
    // from a (late) preemption notice.
    expired_keys.clear();
    if (i > 0) cluster_.kv().advance_clock(options_.interval_s);
    const int detected_deaths = static_cast<int>(expired_keys.size());
    for (const std::string& key : expired_keys) {
      metrics.counter("driver.lease_expiries_detected").inc();
      core_.event_log().record(
          boundary, EventCategory::kWarning,
          "silent agent death detected via lease expiry", {{"key", key}});
      // Event-driven mode: a lease expiry is a (late) preemption
      // signal; enqueue the re-solve now (no-op on tick scheduling).
      core_.notify_event("lease-expiry", boundary);
    }
    cluster_.heartbeat();

    // -- cloud events for this interval. The grace period is long
    // enough to finish the in-flight mini-batch (the paper enforces
    // preemption at mini-batch boundaries), so a notice takes effect
    // at this interval's boundary. A notice for an agent a fault
    // already killed silently turns the silent death graceful (the
    // lease is revoked, so it won't be reported again at expiry); it
    // only counts as a preemption if the kv still thought it alive.
    AvailabilityObservation observed;
    for (const CloudEvent& event : cloud.advance(boundary)) {
      if (event.kind == CloudEvent::Kind::kInstanceGranted) {
        const std::vector<int> agents = cluster_.allocate(1);
        instance_to_agent[event.instance_id] = agents.front();
        ++observed.allocated;
        core_.notify_event("instance-granted", boundary);
      } else {
        const auto it = instance_to_agent.find(event.instance_id);
        if (it != instance_to_agent.end()) {
          const auto record = cluster_.kv().get(
              cluster_.agent_key_prefix() + std::to_string(it->second));
          cluster_.preempt({it->second});
          instance_to_agent.erase(it);
          if (record.has_value() && record->value != "preempted") {
            ++observed.preempted;
            core_.notify_event("preemption-notice", boundary);
          }
        }
      }
    }
    observed.preempted += detected_deaths;
    // The scheduler observes availability through the KvStore — the
    // registered agent records — not through ground truth: a silently
    // killed agent stays "available" here until its lease expires (or
    // a notice arrives), which is precisely why the execution path
    // below clamps the advice to the agents actually alive.
    int kv_available = 0;
    for (const std::string& key :
         cluster_.kv().list(cluster_.agent_key_prefix())) {
      const auto record = cluster_.kv().get(key);
      if (record.has_value() && record->value != "preempted") ++kv_available;
    }
    observed.available = kv_available;

    // -- one pass of Algorithm 1: adapt the plan to reality, plan the
    // migration, forecast and optimize the next interval.
    const SchedulerDecision advice =
        core_.step(i, observed, options_.interval_s);
    report.advised.push_back(advice.config);

    // -- graceful degradation: reconfigure() must never be handed more
    // instances than are alive (unpredicted kills can race the core's
    // view). Shrink the advice to fit; when even 1x1 won't fit, hold
    // at idle — the state stays safe in ParcaePS — and resume when the
    // cloud grants capacity back.
    ParallelConfig target =
        clamp_to_alive(advice.config, cluster_.alive_count());
    if (target != advice.config) {
      metrics.counter("driver.advice_clamped").inc();
      core_.event_log().record(
          boundary, EventCategory::kWarning,
          "advised config infeasible; degraded to fit alive agents",
          {{"advised", advice.config.to_string()},
           {"executed", target.to_string()}});
    }
    if (!target.valid() && advice.config.valid())
      metrics.counter("driver.paused_intervals").inc();

    // -- execute the (possibly degraded) migration on real parameters.
    if (target != cluster_.config() || !cluster_.assignment_intact()) {
      obs::ProfileSpan reconfigure_span("reconfigure", &metrics,
                                        core_.tracer(), "driver");
      const MigrationKind kind = cluster_.reconfigure(target);
      ++report.migrations_by_kind[static_cast<std::size_t>(kind)];
      if (kind != MigrationKind::kNone && kind != MigrationKind::kSuspend) {
        metrics.counter("scheduler.migrations_executed").inc();
        metrics
            .counter(std::string("scheduler.migrations_executed.") +
                     migration_kind_name(kind))
            .inc();
      }
    }
    report.replicas_always_consistent =
        report.replicas_always_consistent && cluster_.replicas_consistent();

    // -- train. A nullopt with a broken assignment is a zero-grace
    // kill that landed mid-iteration: the sample lease was already
    // abandoned (exactly-once holds), so re-plan around the hole and
    // keep going within the same interval. Each failed pass consumes
    // one iteration slot, so this converges.
    obs::ProfileSpan train_span("train", &metrics, core_.tracer(), "driver");
    for (int it = 0; it < options_.iterations_per_interval; ++it) {
      const auto outcome = cluster_.train_iteration();
      if (!outcome) {
        if (!cluster_.assignment_intact()) {
          metrics.counter("driver.kill_recoveries").inc();
          const ParallelConfig retry_target =
              clamp_to_alive(cluster_.config(), cluster_.alive_count());
          const MigrationKind kind = cluster_.reconfigure(retry_target);
          ++report.migrations_by_kind[static_cast<std::size_t>(kind)];
          report.replicas_always_consistent =
              report.replicas_always_consistent &&
              cluster_.replicas_consistent();
          if (retry_target.valid()) continue;
          metrics.counter("driver.paused_intervals").inc();
        }
        break;  // suspended, or the epoch pool is exhausted
      }
      ++report.iterations;
      report.final_loss = outcome->loss;
      if (outcome->epoch_finished) ++report.epochs_completed;
    }
    if (options_.slo != nullptr) options_.slo->evaluate(i, boundary);
  }
  cluster_.kv().unwatch(watch_id);

  report.ps_rollbacks = cluster_.rollbacks();
  report.telemetry = core_.telemetry();
  report.metrics = core_.metrics_snapshot();
  const auto counter = [&metrics](const char* name) {
    return static_cast<long long>(metrics.counter(name).value() + 0.5);
  };
  report.faults_injected = counter("fault.injected");
  report.unpredicted_kills_survived = counter("cluster.unpredicted_kills");
  report.mid_iteration_kills = counter("cluster.mid_iteration_kills");
  report.migrations_aborted = counter("cluster.migrations_aborted");
  report.ps_push_retries = counter("retry.ps.push.retries");
  report.ps_refreshes = counter("cluster.ps_refreshes");
  report.paused_intervals = counter("driver.paused_intervals");
  report.lease_expirations =
      static_cast<long long>(cluster_.kv().leases_expired());
  return report;
}

}  // namespace parcae
