#include "runtime/process_supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/fault.h"
#include "obs/metrics.h"

namespace parcae {

namespace {
constexpr double kPollIntervalS = 0.01;
}  // namespace

ProcessSupervisor::~ProcessSupervisor() {
  // No grace on teardown: the supervisor dying means the run is over,
  // and an orphaned agent would spin forever against a dead port.
  shutdown_all(0.0);
}

pid_t ProcessSupervisor::spawn(const SpawnSpec& spec) {
  if (faults_ != nullptr) faults_->maybe_throw("proc.spawn");

  // Build argv before forking: no allocation between fork and exec.
  std::vector<char*> argv;
  argv.reserve(spec.args.size() + 2);
  argv.push_back(const_cast<char*>(spec.binary.c_str()));
  for (const std::string& arg : spec.args)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    ::execv(spec.binary.c_str(), argv.data());
    // Exec failed; only async-signal-safe calls from here. 127 is the
    // shell's "command not found" convention.
    _exit(127);
  }

  {
    std::lock_guard lock(mu_);
    children_[pid] = Child{spec.name, true, {}};
  }
  if (metrics_ != nullptr) metrics_->counter("proc.spawned").inc();
  return pid;
}

void ProcessSupervisor::record_exit_locked(Child& child, int wait_status) {
  child.running = false;
  if (WIFSIGNALED(wait_status)) {
    child.exit.signaled = true;
    child.exit.term_signal = WTERMSIG(wait_status);
  } else {
    child.exit.exit_code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status)
                                                  : -1;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("proc.reaped").inc();
    if (!child.exit.signaled && child.exit.exit_code != 0)
      metrics_->counter("proc.exited_nonzero").inc();
  }
}

bool ProcessSupervisor::probe_locked(pid_t pid) {
  auto it = children_.find(pid);
  if (it == children_.end()) return false;
  if (!it->second.running) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r == 0) return true;  // still running
  if (r == pid) {
    record_exit_locked(it->second, status);
    return false;
  }
  // ECHILD: someone else reaped it (should not happen — we own our
  // children). Treat as dead with unknown status.
  it->second.running = false;
  it->second.exit.exit_code = -1;
  return false;
}

bool ProcessSupervisor::alive(pid_t pid) {
  std::lock_guard lock(mu_);
  return probe_locked(pid);
}

bool ProcessSupervisor::sigkill(pid_t pid) {
  {
    std::lock_guard lock(mu_);
    const auto it = children_.find(pid);
    if (it == children_.end() || !it->second.running) return false;
  }
  ::kill(pid, SIGKILL);
  if (metrics_ != nullptr) metrics_->counter("proc.sigkills").inc();
  return true;
}

bool ProcessSupervisor::signal(pid_t pid, int sig) {
  {
    std::lock_guard lock(mu_);
    const auto it = children_.find(pid);
    if (it == children_.end() || !it->second.running) return false;
  }
  ::kill(pid, sig);
  if (metrics_ != nullptr) metrics_->counter("proc.signals").inc();
  return true;
}

std::optional<ExitStatus> ProcessSupervisor::wait_exit(pid_t pid,
                                                       double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (true) {
    {
      std::lock_guard lock(mu_);
      const auto it = children_.find(pid);
      if (it == children_.end()) return std::nullopt;
      if (!probe_locked(pid)) return it->second.exit;
    }
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::duration<double>(kPollIntervalS));
  }
}

std::optional<ExitStatus> ProcessSupervisor::exit_status(pid_t pid) const {
  std::lock_guard lock(mu_);
  const auto it = children_.find(pid);
  if (it == children_.end() || it->second.running) return std::nullopt;
  return it->second.exit;
}

int ProcessSupervisor::shutdown_all(double grace_s) {
  std::vector<pid_t> live;
  {
    std::lock_guard lock(mu_);
    for (auto& [pid, child] : children_)
      if (probe_locked(pid)) live.push_back(pid);
  }
  if (live.empty()) return 0;

  if (grace_s > 0.0) {
    for (const pid_t pid : live) ::kill(pid, SIGTERM);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(grace_s);
    while (std::chrono::steady_clock::now() < deadline) {
      bool any = false;
      {
        std::lock_guard lock(mu_);
        for (const pid_t pid : live)
          if (probe_locked(pid)) any = true;
      }
      if (!any) return 0;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(kPollIntervalS));
    }
  }

  int killed = 0;
  for (const pid_t pid : live) {
    bool running;
    {
      std::lock_guard lock(mu_);
      running = probe_locked(pid);
    }
    if (!running) continue;
    ::kill(pid, SIGKILL);
    ++killed;
    if (metrics_ != nullptr) metrics_->counter("proc.sigkills").inc();
    // SIGKILL cannot be ignored; a blocking wait here terminates.
    int status = 0;
    ::waitpid(pid, &status, 0);
    std::lock_guard lock(mu_);
    record_exit_locked(children_[pid], status);
  }
  return killed;
}

std::vector<pid_t> ProcessSupervisor::running() const {
  std::lock_guard lock(mu_);
  std::vector<pid_t> out;
  for (const auto& [pid, child] : children_)
    if (child.running) out.push_back(pid);
  return out;
}

std::string ProcessSupervisor::name_of(pid_t pid) const {
  std::lock_guard lock(mu_);
  const auto it = children_.find(pid);
  return it == children_.end() ? std::string("<unknown>") : it->second.name;
}

}  // namespace parcae
