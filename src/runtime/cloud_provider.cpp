#include "runtime/cloud_provider.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parcae {

TraceCloudProvider::TraceCloudProvider(SpotTrace trace, std::uint64_t seed,
                                       double grace_s, double price_per_hour)
    : trace_(std::move(trace)),
      rng_(seed),
      grace_s_(grace_s),
      price_(price_per_hour) {
  // Instances present at t=0 are granted immediately once requested.
}

void TraceCloudProvider::request_instances(int count) { requested_ = count; }

std::vector<CloudEvent> TraceCloudProvider::advance(double until_s) {
  std::vector<CloudEvent> events;
  // Capacity the trace allows at a time t.
  auto emit_grants = [&](double t) {
    const int capacity = trace_.instances_at(t);
    while (static_cast<int>(held_.size()) < std::min(requested_, capacity)) {
      CloudEvent event;
      event.kind = CloudEvent::Kind::kInstanceGranted;
      event.time_s = t;
      event.instance_id = next_instance_id_++;
      held_.push_back(event.instance_id);
      events.push_back(event);
    }
  };
  auto emit_preemptions = [&](double t, int count) {
    for (int i = 0; i < count && !held_.empty(); ++i) {
      const auto victim = rng_.uniform_int(held_.size());
      CloudEvent event;
      event.kind = CloudEvent::Kind::kPreemptionNotice;
      event.time_s = t;
      event.instance_id = held_[victim];
      event.grace_s = grace_s_;
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(victim));
      events.push_back(event);
    }
  };

  emit_grants(now_);
  const auto& trace_events = trace_.events();
  while (next_event_ < trace_events.size() &&
         trace_events[next_event_].time_s <= until_s) {
    const TraceEvent& e = trace_events[next_event_];
    if (e.time_s > now_) now_ = e.time_s;
    if (e.is_preemption()) {
      // The trace says capacity shrank; reclaim the excess we hold.
      const int capacity = trace_.instances_at(e.time_s);
      const int excess = static_cast<int>(held_.size()) - capacity;
      if (excess > 0) emit_preemptions(e.time_s, excess);
    } else {
      emit_grants(e.time_s);
    }
    ++next_event_;
  }
  now_ = until_s;
  emit_grants(now_);
  std::stable_sort(events.begin(), events.end(),
                   [](const CloudEvent& a, const CloudEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return events;
}

// ---------------------------------------------------------------------------

MarketCloudProvider::MarketCloudProvider(SpotMarketOptions options,
                                         std::uint64_t seed, double grace_s)
    : options_(options),
      rng_(seed),
      grace_s_(grace_s),
      price_(options.mean_price) {}

void MarketCloudProvider::request_instances(int count) {
  requested_ = std::min(count, options_.capacity);
}

double MarketCloudProvider::spot_price_per_hour(double time_s) const {
  if (price_history_.empty()) return price_;
  const auto idx = std::min(
      price_history_.size() - 1,
      static_cast<std::size_t>(std::max(0.0, time_s / options_.interval_s)));
  return price_history_[idx];
}

void MarketCloudProvider::step_interval() {
  price_ += options_.reversion * (options_.mean_price - price_) +
            options_.volatility * rng_.normal();
  price_ = std::max(0.1 * options_.mean_price, price_);
  price_history_.push_back(price_);
  const double t = now_;

  if (price_ > options_.bid && !held_.empty()) {
    const double excess = (price_ - options_.bid) / options_.bid;
    const double fraction =
        std::min(1.0, options_.reclaim_aggressiveness * excess / 0.1);
    int reclaim = static_cast<int>(
        std::ceil(fraction * static_cast<double>(held_.size())));
    reclaim = std::clamp(reclaim, 1, static_cast<int>(held_.size()));
    for (int i = 0; i < reclaim; ++i) {
      const auto victim = rng_.uniform_int(held_.size());
      CloudEvent event;
      event.kind = CloudEvent::Kind::kPreemptionNotice;
      event.time_s = t;
      event.instance_id = held_[victim];
      event.grace_s = grace_s_;
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(victim));
      pending_.push_back(event);
    }
  } else if (price_ <= options_.bid &&
             static_cast<int>(held_.size()) < requested_) {
    const int granted = static_cast<int>(std::min<std::uint64_t>(
        rng_.poisson(options_.grant_rate),
        static_cast<std::uint64_t>(requested_ -
                                   static_cast<int>(held_.size()))));
    for (int i = 0; i < granted; ++i) {
      CloudEvent event;
      event.kind = CloudEvent::Kind::kInstanceGranted;
      event.time_s = t;
      event.instance_id = next_instance_id_++;
      held_.push_back(event.instance_id);
      pending_.push_back(event);
    }
  }
}

std::vector<CloudEvent> MarketCloudProvider::advance(double until_s) {
  while (now_ + options_.interval_s <= until_s) {
    now_ += options_.interval_s;
    step_interval();
  }
  std::vector<CloudEvent> out;
  out.swap(pending_);
  return out;
}

}  // namespace parcae
