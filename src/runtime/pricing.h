// Cloud pricing constants and the money ledger (Table 2 reproduction).
//
// Prices are the AWS figures the paper's setting implies: p3.2xlarge
// (1x V100-16GB) on-demand vs spot (~70% discount, the paper's "up to
// 90%" varies by zone; 70% matches the 2.3-4.8x cost ratios of
// Table 2), and c5.4xlarge for the on-demand CPU instances hosting
// ParcaePS (§9.3).
#pragma once

namespace parcae {

struct Pricing {
  double ondemand_gpu_usd_per_hour = 3.06;  // p3.2xlarge
  double spot_gpu_usd_per_hour = 0.918;     // ~70% off
  double ps_host_usd_per_hour = 0.68;       // c5.4xlarge (ParcaePS)
  double cloud_storage_usd_per_hour = 0.1;  // S3-style checkpoint store

  double spot_gpu_usd_per_second() const {
    return spot_gpu_usd_per_hour / 3600.0;
  }
  double ondemand_gpu_usd_per_second() const {
    return ondemand_gpu_usd_per_hour / 3600.0;
  }
};

}  // namespace parcae
