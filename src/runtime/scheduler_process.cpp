#include "runtime/scheduler_process.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"
#include "rpc/kv_service.h"
#include "rpc/rpc.h"
#include "rpc/transport.h"

namespace parcae {

namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ModelProfile make_multiproc_profile() {
  ModelProfile profile;
  profile.name = "mlp-multiproc";
  // 8 partition units: pipeline depths up to 8 are real choices.
  const int sizes[] = {64, 48, 48, 48, 48, 32, 32, 16, 8};
  const int n = static_cast<int>(sizeof(sizes) / sizeof(sizes[0]));
  double params = 0.0;
  for (int i = 0; i + 1 < n; ++i)
    params += static_cast<double>(sizes[i] * sizes[i + 1] + sizes[i + 1]);
  profile.parameters = params;
  profile.partition_units = n - 1;
  profile.mini_batch = 32;
  profile.micro_batch = 4;
  // ~3 flops per parameter per sample (fwd 1x, bwd 2x); calibrated so
  // relative throughput is what matters (as in the spot driver).
  profile.fwd_flops_per_sample = params * 2.0;
  profile.effective_flops = params * 2.0;
  profile.boundary_activation_bytes =
      static_cast<double>(sizes[1]) * sizeof(float);
  profile.unit_activation_bytes = profile.boundary_activation_bytes * 3.0;
  profile.activation_recompute = false;
  profile.sample_unit = "sample";
  return profile;
}

std::string AdvisedRecord::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%d %dx%d stall=%.6f", interval, dp, pp,
                stall_s);
  return buf;
}

std::string SchedulerRunReport::to_text() const {
  std::ostringstream out;
  char buf[64];
  out << "scheduler run report\n";
  out << "name: " << name << "\n";
  out << "intervals run: " << intervals_run << "\n";
  out << "resumed from interval: " << resumed_from_interval << "\n";
  out << "recovered: " << (recovered ? "yes" : "no") << "\n";
  out << "replay divergence: " << (replay_divergence ? "yes" : "no") << "\n";
  out << "standby takeover: " << (took_over ? "yes" : "no") << "\n";
  std::snprintf(buf, sizeof(buf), "%.3f", total_samples);
  out << "total samples: " << buf << "\n";
  std::snprintf(buf, sizeof(buf), "%.6f", final_loss);
  out << "final loss: " << buf << "\n";
  out << "converged: " << (converged ? "yes" : "no") << "\n";
  out << "wal truncated records: " << wal_truncated_records << "\n";
  out << "lease expirations: " << lease_expirations << "\n";
  for (const AdvisedRecord& a : advised)
    out << "advised: " << a.to_string() << "\n";
  return out.str();
}

SchedulerCoreOptions SchedulerProcess::core_options(
    const SchedulerProcessOptions& options, obs::MetricsRegistry* metrics) {
  SchedulerCoreOptions core = options.core;
  core.interval_s = options.interval_s;
  core.seed = options.seed;
  core.metrics = metrics;
  core.max_instances =
      std::max(core.max_instances, options.requested_instances);
  return core;
}

SchedulerProcess::SchedulerProcess(SchedulerProcessOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics : &own_metrics_),
      core_(make_multiproc_profile(), core_options(options_, metrics_)),
      seat_(&kv_, options_.kv_namespace + "scheduler/primary",
            options_.seat_ttl_s),
      ns_(options_.kv_namespace) {
  wal_.set_metrics(metrics_);
  if (options_.faults != nullptr) wal_.set_fault_injector(options_.faults);
  // Loss scale: a quarter of the samples an ideal full-availability
  // run would earn, so convergence (< 2.0) needs a sustained majority
  // of the run actually training — dropped intervals show.
  const ThroughputModel& tm = core_.throughput_model();
  const double best =
      tm.throughput(tm.best_config(options_.requested_instances));
  tau_ = std::max(1e-9, best * options_.interval_s * options_.intervals / 4.0);
}

SchedulerProcess::~SchedulerProcess() {
  // Stop the transport thread (it mutates kv_ through the service,
  // which appends to wal_) before either is torn down.
  server_.reset();
  kv_.set_wal(nullptr);
}

template <typename F>
void SchedulerProcess::with_wal_retry(const char* what, F&& fn) {
  // A torn-write InjectedFault aborts the mutation without applying
  // it; the writer truncates its tail on the next append, so the
  // retry re-commits cleanly.
  with_retry(options_.wal_retry, what, metrics_, std::forward<F>(fn));
}

bool SchedulerProcess::init_primary(std::string* error) {
  std::vector<WalRecord> decisions;
  const WalReplayStats stats = replay_wal(options_.wal_path, kv_, &decisions,
                                          metrics_, /*repair=*/true);
  if (!stats.ok()) {
    if (error != nullptr) *error = stats.error;
    return false;
  }
  recovered_ = stats.kv_applied > 0 || stats.decisions > 0;

  // Re-step the deterministic core over the logged observations. The
  // recomputed advice must match what the log says was issued; the
  // log stays the truth either way (the rest of the system acted on
  // it), so a mismatch is flagged, not "fixed".
  for (const WalRecord& d : decisions) {
    AvailabilityObservation observed;
    observed.available = d.available;
    observed.preempted = d.preempted;
    observed.allocated = d.allocated;
    const SchedulerDecision dec =
        core_.step(d.interval, observed, options_.interval_s);
    if (dec.config.dp != d.advised_dp || dec.config.pp != d.advised_pp ||
        dec.stall_s != d.stall_s) {
      replay_divergence_ = true;
      metrics_->counter("sched.replay_divergences").inc();
    }
    const ParallelConfig logged{d.advised_dp, d.advised_pp};
    samples_ += core_.throughput_model().throughput(logged) *
                std::max(0.0, options_.interval_s - d.stall_s);
    advised_.push_back({d.interval, d.advised_dp, d.advised_pp, d.stall_s});
    prev_agents_ = d.agents;
    next_interval_ = d.interval + 1;
  }
  if (recovered_) {
    resumed_from_ = next_interval_;
    metrics_->counter("sched.recoveries").inc();
  }

  std::string wal_error;
  if (!wal_.open(options_.wal_path, &wal_error)) {
    if (error != nullptr) *error = wal_error;
    return false;
  }
  kv_.set_wal(&wal_);
  return true;
}

void SchedulerProcess::tick() {
  const int k = next_interval_;
  // Idempotent advance to the absolute interval boundary: a crash
  // between the advance and the decision commit re-runs tick k with
  // dt == 0 instead of double-advancing (and double-expiring leases).
  const double target = (k + 1) * options_.interval_s;
  const double dt = target - kv_.now();
  if (dt > 0.0) with_wal_retry("sched.clock", [&] { kv_.advance_clock(dt); });

  // Seat: renew while held, campaign otherwise. After a takeover the
  // dead incumbent's replayed key blocks the campaign until its lease
  // expires on the advancing clock — at most seat_ttl_s logical
  // seconds of leaderless (but still ticking) operation.
  try {
    if (seat_.is_holder()) {
      if (!seat_.renew()) metrics_->counter("ha.seat_lost").inc();
    } else if (seat_.campaign(options_.name)) {
      metrics_->counter("ha.seat_acquired").inc();
    }
  } catch (const InjectedFault&) {
    // Torn-write abort mid-campaign: stand again next tick.
  }

  // Observe liveness: the agent keys that survived the clock advance.
  // A SIGKILLed agent is exactly an absent key here — lease expiry is
  // the only death signal.
  const std::string agent_prefix = ns_ + "agent/";
  std::vector<std::string> agents;
  for (const std::string& key : kv_.list(agent_prefix))
    agents.push_back(key.substr(agent_prefix.size()));
  AvailabilityObservation observed;
  observed.available = static_cast<int>(agents.size());
  for (const std::string& id : prev_agents_)
    if (std::find(agents.begin(), agents.end(), id) == agents.end())
      ++observed.preempted;
  for (const std::string& id : agents)
    if (std::find(prev_agents_.begin(), prev_agents_.end(), id) ==
        prev_agents_.end())
      ++observed.allocated;

  const SchedulerDecision dec = core_.step(k, observed, options_.interval_s);

  // Commit point of interval k: the record carries what the core saw
  // and what it advised, so recovery re-steps identically.
  WalRecord rec;
  rec.type = WalRecordType::kDecision;
  rec.interval = k;
  rec.available = observed.available;
  rec.preempted = observed.preempted;
  rec.allocated = observed.allocated;
  rec.advised_dp = dec.config.dp;
  rec.advised_pp = dec.config.pp;
  rec.stall_s = dec.stall_s;
  rec.agents = agents;
  with_wal_retry("sched.decision", [&] { wal_.append(rec); });

  samples_ += core_.throughput_model().throughput(dec.config) *
              std::max(0.0, options_.interval_s - dec.stall_s);

  // The advice agents poll for (logged puts; replay reproduces them).
  with_wal_retry("sched.publish", [&] {
    kv_.put(ns_ + "scheduler/advised", dec.config.to_string());
  });
  with_wal_retry("sched.publish", [&] {
    kv_.put(ns_ + "scheduler/interval", std::to_string(k));
  });

  advised_.push_back({k, dec.config.dp, dec.config.pp, dec.stall_s});
  prev_agents_ = std::move(agents);
  next_interval_ = k + 1;
  ++ticks_run_;
  metrics_->counter("sched.ticks").inc();
}

struct SchedulerProcess::Server {
  std::unique_ptr<rpc::Transport> transport;
  std::unique_ptr<rpc::RpcServer> rpc_server;
  std::unique_ptr<rpc::KvService> service;
  ~Server() {
    if (rpc_server != nullptr) rpc_server->stop();
  }
};

bool SchedulerProcess::start_server() {
  if (options_.port < 0) return true;
  // A takeover binds the port the dead primary held; the OS reclaims
  // the listener when the process dies, but give it a few beats.
  constexpr int kBindAttempts = 50;
  for (int attempt = 1; attempt <= kBindAttempts; ++attempt) {
    auto server = std::make_unique<Server>();
    try {
      server->transport = rpc::make_tcp_transport(options_.port);
      server->transport->set_metrics(metrics_);
      if (options_.faults != nullptr)
        server->transport->set_fault_injector(options_.faults);
      server->rpc_server = std::make_unique<rpc::RpcServer>(*server->transport);
      server->rpc_server->set_metrics(metrics_);
      server->service = std::make_unique<rpc::KvService>(kv_);
      server->service->bind(*server->rpc_server);
      server->rpc_server->start();
      server_ = std::move(server);
      return true;
    } catch (const rpc::TransportError&) {
      sleep_ms(100);
    }
  }
  return false;
}

double SchedulerProcess::loss_for(double samples) const {
  return 0.3 + 6.0 / (1.0 + samples / tau_);
}

int SchedulerProcess::run_primary() {
  std::string error;
  if (!init_primary(&error)) {
    std::fprintf(stderr, "%s: wal init failed: %s\n", options_.name.c_str(),
                 error.c_str());
    return 1;
  }
  if (!start_server()) {
    std::fprintf(stderr, "%s: cannot bind port %d\n", options_.name.c_str(),
                 options_.port);
    return 1;
  }
  while (!done()) {
    tick();
    sleep_ms(options_.tick_wall_ms);
  }
  finish_run();
  return 0;
}

void SchedulerProcess::finish_run() {
  try {
    with_wal_retry("sched.publish",
                   [&] { kv_.put(ns_ + "control/shutdown", "done"); });
  } catch (const std::exception&) {
    // Retry budget spent on the very last write: the run still ends;
    // agents exit on their wall-clock cap instead.
  }
  // Let connected agents observe the shutdown key before the server
  // goes away.
  if (options_.port >= 0) sleep_ms(3 * options_.tick_wall_ms);
  std::string error;
  if (!options_.report_path.empty() && !write_report(&error))
    std::fprintf(stderr, "%s: report write failed: %s\n",
                 options_.name.c_str(), error.c_str());
  server_.reset();
}

int SchedulerProcess::run_standby() {
  fleet::StandbyMonitorOptions mopt;
  mopt.takeover_after_s = options_.takeover_after_s;
  mopt.min_failed_probes = options_.min_failed_probes;
  fleet::StandbyMonitor monitor(mopt);
  monitor.start(wall_s());

  // Out-of-band probe: a short-deadline KV get against the primary's
  // endpoint. One attempt per probe — the loop is the retry.
  auto transport = rpc::make_tcp_dial_transport(
      options_.port, /*connect_timeout_s=*/options_.probe_deadline_s);
  rpc::RpcClientOptions copt;
  copt.deadline_s = options_.probe_deadline_s;
  copt.retry.max_attempts = 1;
  copt.reconnect = true;  // tolerate a refused dial in the constructor

  while (true) {
    bool healthy = false;
    bool finished = false;
    try {
      rpc::RpcClient client(*transport, options_.name + "-probe", copt);
      rpc::KvClient kv(client);
      const auto shutdown = kv.get(ns_ + "control/shutdown");
      healthy = true;
      finished = shutdown.has_value();
    } catch (const std::exception&) {
    }
    monitor.record_probe(healthy, wall_s());
    metrics_->counter(healthy ? "ha.probes_ok" : "ha.probes_failed").inc();
    if (finished) return 0;  // the primary completed the run
    if (monitor.should_take_over(wall_s())) break;
    sleep_ms(options_.probe_interval_ms);
  }

  took_over_ = true;
  metrics_->counter("ha.takeovers").inc();
  return run_primary();
}

SchedulerRunReport SchedulerProcess::report() const {
  SchedulerRunReport r;
  r.name = options_.name;
  r.intervals_run = ticks_run_;
  r.resumed_from_interval = resumed_from_;
  r.recovered = recovered_;
  r.replay_divergence = replay_divergence_;
  r.took_over = took_over_;
  r.total_samples = samples_;
  r.final_loss = loss_for(samples_);
  r.converged = r.final_loss < 2.0;
  r.wal_truncated_records = static_cast<std::uint64_t>(
      metrics_->counter("kv.wal_truncated_records").value());
  r.lease_expirations = kv_.leases_expired();
  r.advised = advised_;
  return r;
}

bool SchedulerProcess::write_report(std::string* error) const {
  std::ofstream out(options_.report_path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + options_.report_path;
    return false;
  }
  out << report().to_text();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + options_.report_path;
    return false;
  }
  return true;
}

}  // namespace parcae
