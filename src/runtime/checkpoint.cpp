#include "runtime/checkpoint.h"

#include <array>
#include <cstring>

namespace parcae {
namespace {

constexpr std::uint32_t kMagic = 0x50434b50;  // "PCKP"
constexpr std::uint32_t kVersion = 1;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void append_floats(std::vector<std::uint8_t>& out,
                   const std::vector<float>& xs) {
  const std::size_t offset = out.size();
  out.resize(offset + xs.size() * sizeof(float));
  if (!xs.empty())
    std::memcpy(out.data() + offset, xs.data(), xs.size() * sizeof(float));
}

bool read_u32(const std::vector<std::uint8_t>& in, std::size_t& cursor,
              std::uint32_t& v) {
  if (cursor + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[cursor + static_cast<std::size_t>(i)])
         << (8 * i);
  cursor += 4;
  return true;
}

bool read_u64(const std::vector<std::uint8_t>& in, std::size_t& cursor,
              std::uint64_t& v) {
  if (cursor + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[cursor + static_cast<std::size_t>(i)])
         << (8 * i);
  cursor += 8;
  return true;
}

bool read_floats(const std::vector<std::uint8_t>& in, std::size_t& cursor,
                 std::size_t count, std::vector<float>& out) {
  if (cursor + count * sizeof(float) > in.size()) return false;
  out.resize(count);
  if (count > 0)
    std::memcpy(out.data(), in.data() + cursor, count * sizeof(float));
  cursor += count * sizeof(float);
  return true;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  return ~crc;
}

std::vector<std::uint8_t> encode_checkpoint(const CheckpointBlob& blob) {
  std::vector<std::uint8_t> out;
  append_u32(out, kMagic);
  append_u32(out, kVersion);
  append_u64(out, static_cast<std::uint64_t>(blob.step));
  append_u64(out, blob.parameters.size());
  append_u64(out, blob.optimizer_state.size());
  append_floats(out, blob.parameters);
  append_floats(out, blob.optimizer_state);
  append_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::optional<CheckpointBlob> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes, std::string* error) {
  auto fail = [&](const char* why) -> std::optional<CheckpointBlob> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (bytes.size() < 4 + 4 + 8 + 8 + 8 + 4) return fail("truncated header");
  // Verify the trailing CRC over everything before it.
  std::uint32_t stored_crc = 0;
  {
    std::size_t cursor = bytes.size() - 4;
    read_u32(bytes, cursor, stored_crc);
  }
  const std::uint32_t computed = crc32(bytes.data(), bytes.size() - 4);
  if (stored_crc != computed) return fail("CRC mismatch");

  std::size_t cursor = 0;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t step = 0, n_params = 0, n_opt = 0;
  if (!read_u32(bytes, cursor, magic) || magic != kMagic)
    return fail("bad magic");
  if (!read_u32(bytes, cursor, version) || version != kVersion)
    return fail("unsupported version");
  if (!read_u64(bytes, cursor, step) || !read_u64(bytes, cursor, n_params) ||
      !read_u64(bytes, cursor, n_opt))
    return fail("truncated header");
  CheckpointBlob blob;
  blob.step = static_cast<long long>(step);
  if (!read_floats(bytes, cursor, n_params, blob.parameters) ||
      !read_floats(bytes, cursor, n_opt, blob.optimizer_state))
    return fail("truncated payload");
  if (cursor + 4 != bytes.size()) return fail("trailing garbage");
  return blob;
}

void CheckpointStore::put(const std::string& shard,
                          const CheckpointBlob& blob) {
  auto& history = shards_[shard];
  history.push_back(encode_checkpoint(blob));
  while (history.size() > history_) history.erase(history.begin());
}

std::optional<CheckpointBlob> CheckpointStore::latest(
    const std::string& shard) const {
  const auto it = shards_.find(shard);
  if (it == shards_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    auto blob = decode_checkpoint(*rit);
    if (blob.has_value()) return blob;
  }
  return std::nullopt;
}

long long CheckpointStore::latest_step(const std::string& shard) const {
  const auto blob = latest(shard);
  return blob ? blob->step : 0;
}

std::size_t CheckpointStore::bytes_held() const {
  std::size_t total = 0;
  for (const auto& [_, history] : shards_)
    for (const auto& record : history) total += record.size();
  return total;
}

void CheckpointStore::corrupt_newest(const std::string& shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end() || it->second.empty()) return;
  auto& record = it->second.back();
  if (record.size() > 20) record[20] ^= 0x5a;
}

}  // namespace parcae
