#include "runtime/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault.h"
#include "common/log.h"
#include "core/slo.h"
#include "obs/profile_span.h"
#include "obs/timeseries.h"

namespace parcae {

SimulationResult simulate(SpotTrainingPolicy& policy, const SpotTrace& trace,
                          const SimulationOptions& options) {
  return simulate(policy, TracePoolView(&trace), options);
}

SimulationResult simulate(SpotTrainingPolicy& policy,
                          const InstancePoolView& pool,
                          const SimulationOptions& options) {
  SimulationResult result;
  result.policy = policy.name();
  result.trace = pool.name();
  result.duration_s = pool.duration_s();

  obs::MetricsRegistry local_metrics;
  obs::MetricsRegistry* metrics =
      options.metrics != nullptr ? options.metrics : &local_metrics;
  obs::TraceWriter* tracer = options.tracer;
  obs::TimeSeriesRecorder* series_out = options.timeseries;
  const std::string& mp = options.metric_prefix;

  policy.reset();

  const std::vector<int> series =
      pool.availability_series(options.interval_s);
  // Metric names with the prefix applied, built once per run.
  const std::string n_unpredicted = mp + "sim.unpredicted_preempts";
  const std::string n_span = mp + "execute-interval";
  const std::string n_intervals = mp + "sim.intervals";
  const std::string n_preemptions = mp + "sim.preemptions";
  const std::string n_allocations = mp + "sim.allocations";
  const std::string n_stall = mp + "sim.stall_s";
  const std::string n_liveput = mp + "scheduler.liveput_expected_samples";
  const double T = options.interval_s;
  const double gpu_price_per_s =
      options.instances_are_ondemand
          ? options.pricing.ondemand_gpu_usd_per_second()
          : options.pricing.spot_gpu_usd_per_second();

  if (options.faults != nullptr) options.faults->set_metrics(metrics);
  if (options.slo != nullptr) {
    options.slo->set_metrics(metrics);
    options.slo->set_timeseries(series_out);
    options.slo->set_alert_metrics(metrics);
    options.slo->set_fault_injector(options.faults);
  }

  double committed = 0.0;
  int prev_available = series.empty() ? 0 : series.front();

  for (std::size_t i = 0; i < series.size(); ++i) {
    int avail = series[i];
    if (options.faults != nullptr) {
      options.faults->set_interval(static_cast<int>(i));
      // An unpredicted preemption: one instance beyond the trace
      // disappears at this boundary, blind-siding the forecaster.
      if (avail > 0 &&
          options.faults->should_fire("sim.unpredicted_preempt")) {
        --avail;
        metrics->counter(n_unpredicted).inc();
      }
    }
    AvailabilityEvent event;
    event.available = avail;
    event.preempted = std::max(0, prev_available - avail);
    event.allocated = std::max(0, avail - prev_available);
    prev_available = avail;

    IntervalDecision d;
    {
      obs::ProfileSpan interval_span(n_span, metrics, tracer, "sim");
      d = policy.on_interval(static_cast<int>(i), event, T);
    }
    metrics->counter(n_intervals).inc();
    if (event.preempted > 0)
      metrics->counter(n_preemptions).add(event.preempted);
    if (event.allocated > 0)
      metrics->counter(n_allocations).add(event.allocated);

    // Clamp to physical limits.
    d.stall_s = std::clamp(d.stall_s, 0.0, T);
    const double train_s = T - d.stall_s;
    committed += d.samples_committed - d.samples_lost;
    committed = std::max(0.0, committed);

    // GPU-second ledger. Total capacity this interval:
    const double gpus = static_cast<double>(event.available) *
                        options.gpus_per_instance;
    const double capacity = gpus * T;
    const double used_gpus = static_cast<double>(d.config.instances()) *
                             options.gpus_per_instance;
    const double active = std::min(used_gpus, gpus);
    double effective = active * train_s;
    double redundant = std::min(d.gpu_s_redundant, effective);
    effective -= redundant;
    // Work destroyed: attribute the GPU-seconds that earned the lost
    // samples (at the interval's own throughput when known).
    double lost = 0.0;
    if (d.samples_lost > 0.0 && d.throughput > 0.0)
      lost = std::min(effective,
                      d.samples_lost / d.throughput * active);
    effective -= lost;
    const double handling = active * d.stall_s;
    const double unutilized =
        std::max(0.0, capacity - effective - redundant - lost - handling);

    result.gpu_hours.effective += effective / 3600.0;
    result.gpu_hours.redundant += redundant / 3600.0;
    result.gpu_hours.handling += handling / 3600.0;
    result.gpu_hours.lost += lost / 3600.0;
    result.gpu_hours.unutilized += unutilized / 3600.0;

    result.spot_cost_usd += capacity * gpu_price_per_s;

    if (options.record_timeline) {
      IntervalRecord rec;
      rec.time_s = static_cast<double>(i) * T;
      rec.available = event.available;
      rec.config = d.config;
      rec.throughput = (d.samples_committed - d.samples_lost) / T;
      rec.cumulative_samples = committed;
      rec.note = d.note;
      result.timeline.push_back(std::move(rec));
    }
    metrics->counter(n_stall).add(d.stall_s);
    if (tracer != nullptr) {
      tracer->counter("available", static_cast<double>(event.available));
      tracer->counter("live_instances",
                      static_cast<double>(d.config.instances()));
      tracer->counter("cumulative_samples", committed);
    }
    if (series_out != nullptr) {
      series_out->begin_row();
      series_out->set("t_s", static_cast<double>(i) * T);
      series_out->set("available", event.available);
      series_out->set("live_instances", d.config.instances());
      // Populated only when the policy's SchedulerCore shares the
      // injected registry; 0 otherwise (the query never creates it).
      series_out->set("liveput_expected_samples",
                      metrics->gauge_value(n_liveput));
      series_out->set("throughput",
                      (d.samples_committed - d.samples_lost) / T);
      series_out->set("stall_s", d.stall_s);
      series_out->set("cumulative_samples", committed);
      series_out->set("cost_usd",
                      result.spot_cost_usd +
                          policy.support_cost_usd_per_hour() *
                              static_cast<double>(i + 1) * T / 3600.0);
    }
    if (options.slo != nullptr)
      options.slo->evaluate(static_cast<int>(i),
                            static_cast<double>(i) * T);
    if (!d.note.empty()) {
      PARCAE_DEBUG << "[" << policy.name() << "] t=" << i << " " << d.note;
    }
  }

  result.committed_samples = committed;
  result.committed_units = committed * options.units_per_sample;
  if (result.duration_s > 0.0) {
    result.avg_sample_throughput = committed / result.duration_s;
    result.avg_unit_throughput = result.committed_units / result.duration_s;
  }
  result.support_cost_usd = policy.support_cost_usd_per_hour() *
                            result.duration_s / 3600.0;
  result.total_cost_usd = result.spot_cost_usd + result.support_cost_usd;
  result.cost_per_unit =
      result.committed_units > 0.0
          ? result.total_cost_usd / result.committed_units
          : std::numeric_limits<double>::infinity();
  metrics->gauge(mp + "sim.committed_samples").set(result.committed_samples);
  metrics->gauge(mp + "sim.total_cost_usd").set(result.total_cost_usd);
  result.metrics = metrics->snapshot();
  return result;
}

}  // namespace parcae
