// ParcaePS (§9.3): in-memory checkpointing on cheap on-demand CPU
// instances.
//
// Instead of shipping full model states to cloud storage, ParcaePS
// keeps an up-to-date replica of the training state in host DRAM by
// receiving the *gradients* of every committed iteration and applying
// the same optimizer update on the CPU side — 5x less traffic than
// shipping fp16 Adam states. Two pieces live here:
//   - ParcaePs: a real parameter server over flat float tensors with
//     its own Adam replica; after n identical gradient pushes its
//     parameters bit-match the trainer's (verified in tests),
//   - PsCostModel: the traffic/time accounting the cluster simulator
//     charges for the per-iteration gradient push and for rollback
//     restores.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace parcae {

class FaultInjector;

// Locking rules: every mutating entry point (push_gradients, restore,
// set_fault_injector) and every by-value reader (parameters_snapshot,
// optimizer_state, version) takes mu_, so one replica may be shared
// between the driver thread and an RPC transport thread. The
// by-reference parameters() accessor is the lone exception — it
// cannot hold the lock across the caller's use, so it is reserved for
// single-threaded tests and same-thread readers; concurrent code must
// use parameters_snapshot().
class ParcaePs {
 public:
  // `initial` — the trainer's initial flat parameters; the PS applies
  // updates with its own Adam replica (same hyper-parameters as the
  // trainer's) so its state tracks the trainer exactly.
  ParcaePs(std::vector<float> initial, float lr, float beta1 = 0.9f,
           float beta2 = 0.999f, float eps = 1e-8f);

  // One committed iteration's mean gradient.
  void push_gradients(const std::vector<float>& grads);

  // Overwrites the checkpoint (parameters + Adam state) — used when a
  // pipeline migration re-shards the model and the PS replicas must
  // adopt the new sharding.
  void restore(const std::vector<float>& parameters,
               const std::vector<float>& optimizer_state);

  // Latest checkpoint (what a rollback restores). NOT thread-safe:
  // the reference stays live after mu_ is released — see the locking
  // rules above. Prefer parameters_snapshot() when any other thread
  // may push.
  const std::vector<float>& parameters() const { return params_.raw(); }
  // Thread-safe copy of the latest checkpoint.
  std::vector<float> parameters_snapshot() const;
  long long version() const;

  // Serialized optimizer state, for full-state restore.
  std::vector<float> optimizer_state() const;

  // Non-owning; nullptr disables injection. An armed "ps.push" point
  // makes push_gradients throw *before* touching any state, so a
  // retried push never double-applies a gradient.
  void set_fault_injector(FaultInjector* faults);

 private:
  mutable std::mutex mu_;
  nn::Matrix params_;  // [1, n]
  nn::Matrix grads_;   // [1, n] scratch
  nn::Adam adam_;
  long long version_ = 0;
  FaultInjector* faults_ = nullptr;
};

// Simulation-level cost accounting for ParcaePS traffic.
struct PsCostModel {
  double grad_bytes_per_param = 2.0;  // fp16 gradients (the 5x saving)
  double aggregate_bandwidth_bytes_per_s = 6e9;
  // Fraction of the push not hidden behind the next iteration's
  // compute (the paper partitions gradients into small pieces for
  // overlapping; a small residue remains).
  double unoverlapped_fraction = 0.05;

  // Per-iteration stall charged to training.
  double sync_stall_s(double parameters) const {
    return unoverlapped_fraction * parameters * grad_bytes_per_param /
           aggregate_bandwidth_bytes_per_s;
  }
};

}  // namespace parcae
