// ParcaeScheduler's decision loop as a SpotTrainingPolicy: a thin
// adapter that drives the shared SchedulerCore (Algorithm 1; see
// src/core/scheduler_core.h) against the interval-quantized cluster
// simulator. The core decides — forecast, liveput optimization, §8
// adaptation, migration planning — and this adapter keeps the ledger
// side: charging migration stalls to intervals (with spillover via
// IntervalAccountant), ParcaePS gradient-push overhead on iteration
// time, rollback sample loss, and the support-cost bill.
#pragma once

#include <memory>
#include <vector>

#include "core/scheduler_core.h"
#include "runtime/cluster_sim.h"
#include "runtime/interval_accountant.h"
#include "runtime/parcae_ps.h"

namespace parcae {

struct ParcaePolicyOptions : SchedulerCoreOptions {
  int ps_hosts = 2;  // on-demand c5.4xlarge instances
};

class ParcaePolicy final : public SpotTrainingPolicy {
 public:
  // `oracle` must outlive the policy when mode == kOracle (it supplies
  // the true future availability).
  ParcaePolicy(ModelProfile model, ParcaePolicyOptions options,
               const SpotTrace* oracle = nullptr);
  // Lease-view oracle: the instances this job may use (a fleet job's
  // lease, or the whole pool through TracePoolView).
  ParcaePolicy(ModelProfile model, ParcaePolicyOptions options,
               const InstancePoolView* oracle);

  std::string name() const override;
  void reset() override;
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;
  double support_cost_usd_per_hour() const override;

  const std::vector<MigrationLogEntry>& migration_log() const {
    return core_.migration_log();
  }
  // Structured audit trail of everything the scheduler saw and did.
  const EventLog& telemetry() const { return core_.telemetry(); }
  const ThroughputModel& throughput_model() const {
    return core_.throughput_model();
  }
  const SchedulerCore& scheduler() const { return core_; }

 private:
  ParcaePolicyOptions options_;
  SchedulerCore core_;
  PsCostModel ps_cost_;
  IntervalAccountant accountant_;
};

}  // namespace parcae
