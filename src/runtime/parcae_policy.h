// ParcaeScheduler's decision loop as a SpotTrainingPolicy
// (Algorithm 1): each interval it
//   1. adapts the previously planned configuration to the actual
//      availability (§8 parallelization adaptation),
//   2. plans and charges the live migration from the (possibly
//      damaged) current configuration (§6),
//   3. trains for the rest of the interval (ParcaePS gradient pushes
//      slightly lengthen each iteration),
//   4. forecasts availability (§5) and runs the liveput optimizer
//      (§7) to pick the next interval's configuration.
//
// Three prediction modes cover the paper's variants:
//   kArima    — Parcae        (guarded ARIMA forecasts)
//   kOracle   — Parcae(Ideal) (true future availability)
//   kReactive — Parcae-Reactive (§10.4: liveput optimization disabled,
//               throughput-optimal target + adaptation only)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/liveput_optimizer.h"
#include "migration/planner.h"
#include "model/model_profile.h"
#include "parallel/throughput_model.h"
#include "predict/predictor.h"
#include "runtime/cluster_sim.h"
#include "runtime/parcae_ps.h"
#include "runtime/telemetry.h"

namespace parcae {

enum class PredictionMode { kArima, kOracle, kReactive };

struct ParcaePolicyOptions {
  PredictionMode mode = PredictionMode::kArima;
  int lookahead = 12;         // I: intervals the optimizer plans over
  int history = 12;           // H: intervals of history fed to ARIMA
  int reoptimize_every = 1;   // prediction rate (Figure 11)
  // Use the backtest-selecting adaptive predictor pool instead of the
  // paper's guarded ARIMA (an extension; see src/predict/adaptive.h).
  bool adaptive_predictor = false;
  int mc_trials = 256;
  std::uint64_t seed = 123;
  double interval_s = 60.0;
  int ps_hosts = 2;           // on-demand c5.4xlarge instances
  // Multiplicative jitter on actual migration stalls vs the
  // estimator's prediction (Figure 18a); 0 = deterministic.
  double cost_noise_stddev = 0.0;
  // GPUs preempted together (Figure 10 multi-GPU instances).
  int preemption_chunk = 1;
  // Voluntary pipeline-depth changes (no preemption forcing them) must
  // improve throughput by at least this fraction over keeping the
  // current depth; re-planning every interval under noisy forecasts
  // would otherwise thrash between depths (the paper's case study
  // shows Parcae holding depth 7 for 8 intervals despite some unused
  // instances, §10.4).
  double depth_change_hysteresis = 0.15;
  ThroughputModelOptions throughput;
};

struct MigrationLogEntry {
  int interval = 0;
  MigrationKind kind = MigrationKind::kNone;
  double estimated_s = 0.0;
  double actual_s = 0.0;
};

class ParcaePolicy final : public SpotTrainingPolicy {
 public:
  // `oracle` must outlive the policy when mode == kOracle (it supplies
  // the true future availability).
  ParcaePolicy(ModelProfile model, ParcaePolicyOptions options,
               const SpotTrace* oracle = nullptr);

  std::string name() const override;
  void reset() override;
  IntervalDecision on_interval(int interval_index,
                               const AvailabilityEvent& event,
                               double interval_s) override;
  double support_cost_usd_per_hour() const override;

  const std::vector<MigrationLogEntry>& migration_log() const {
    return migration_log_;
  }
  // Structured audit trail of everything the scheduler saw and did.
  const EventLog& telemetry() const { return telemetry_; }
  const ThroughputModel& throughput_model() const { return throughput_; }

 private:
  std::vector<int> predict(int interval_index) const;
  ClusterSnapshot observe_damage(const AvailabilityEvent& event,
                                 int prev_available);

  ModelProfile model_;
  ParcaePolicyOptions options_;
  const SpotTrace* oracle_;
  ThroughputModel throughput_;
  MigrationPlanner planner_;
  LiveputOptimizer optimizer_;
  PsCostModel ps_cost_;
  std::unique_ptr<AvailabilityPredictor> predictor_;

  // Mutable run state.
  Rng rng_{0};
  std::vector<double> history_;
  ParallelConfig current_ = kIdleConfig;
  ParallelConfig planned_next_ = kIdleConfig;
  int prev_available_ = 0;
  double pending_stall_s_ = 0.0;  // stall spilling into later intervals
  std::vector<MigrationLogEntry> migration_log_;
  EventLog telemetry_;
};

}  // namespace parcae
