#include "runtime/parcae_policy.h"

#include <algorithm>
#include <cmath>

#include "runtime/pricing.h"

namespace parcae {

ParcaePolicy::ParcaePolicy(ModelProfile model, ParcaePolicyOptions options,
                           const SpotTrace* oracle)
    : options_(options), core_(std::move(model), options, oracle) {
  accountant_.set_metrics(&core_.metrics(),
                          options_.metric_prefix + "policy." + name());
}

ParcaePolicy::ParcaePolicy(ModelProfile model, ParcaePolicyOptions options,
                           const InstancePoolView* oracle)
    : options_(options), core_(std::move(model), options, oracle) {
  accountant_.set_metrics(&core_.metrics(),
                          options_.metric_prefix + "policy." + name());
}

std::string ParcaePolicy::name() const {
  switch (options_.mode) {
    case PredictionMode::kArima:
      return "Parcae";
    case PredictionMode::kOracle:
      return "Parcae(Ideal)";
    case PredictionMode::kReactive:
      return "Parcae-Reactive";
  }
  return "Parcae";
}

void ParcaePolicy::reset() {
  core_.reset();
  accountant_.reset();
}

double ParcaePolicy::support_cost_usd_per_hour() const {
  return Pricing{}.ps_host_usd_per_hour * options_.ps_hosts;
}

IntervalDecision ParcaePolicy::on_interval(int interval_index,
                                           const AvailabilityEvent& event,
                                           double interval_s) {
  const double T = interval_s;
  const SchedulerDecision advice = core_.step(
      interval_index,
      {event.available, event.preempted, event.allocated}, T);

  // Large stalls spill into following intervals.
  accountant_.add_stall(advice.stall_s);
  const double stall = accountant_.charge(T);

  // Train for the remainder of the interval. ParcaePS gradient pushes
  // lengthen every iteration slightly.
  IntervalDecision decision;
  const ParallelConfig& config = advice.config;
  const ModelProfile& model = core_.model();
  double tput = 0.0;
  if (config.valid()) {
    const double iter = core_.throughput_model().iteration_time(config);
    if (std::isfinite(iter) && iter > 0.0) {
      const double iter_with_ps =
          iter + ps_cost_.sync_stall_s(model.parameters);
      tput = static_cast<double>(model.mini_batch) / iter_with_ps;
    }
  }
  IntervalAccountant::settle(decision, config, tput, stall, T);
  // A rollback loses only the in-flight mini-batch (ParcaePS holds an
  // up-to-date checkpoint); the sample manager re-leases it.
  if (advice.plan.kind == MigrationKind::kRollback && tput > 0.0)
    decision.samples_lost = static_cast<double>(model.mini_batch);

  if (advice.plan.kind != MigrationKind::kNone &&
      advice.plan.kind != MigrationKind::kSuspend) {
    core_.metrics()
        .counter(options_.metric_prefix + "scheduler.migrations_executed")
        .inc();
    core_.metrics()
        .counter(options_.metric_prefix + "scheduler.migrations_executed." +
                 migration_kind_name(advice.plan.kind))
        .inc();
  }

  decision.note =
      advice.plan.kind == MigrationKind::kNone
          ? ""
          : transition_note(migration_kind_name(advice.plan.kind), config);
  return decision;
}

}  // namespace parcae
