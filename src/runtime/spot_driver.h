// SpotTrainingDriver: the complete Parcae loop (Algorithm 1) running
// against the *real* in-process training cluster.
//
// The decision-making — guarded ARIMA forecasts, the liveput
// optimizer, §8 adaptation, depth hysteresis, migration planning — is
// the shared SchedulerCore (src/core/scheduler_core.h), the same
// engine ParcaePolicy drives in the interval simulator; this driver is
// the executor backend that turns its advice into *real* work: cloud
// grants become cluster agents, preemption notices (after their grace
// period) remove them, advised configurations are realized as live
// migrations on actual parameters, and training runs for the rest of
// each interval. The core reasons about a ModelProfile derived from
// the actual MLP, so the optimizer reasons about the very model being
// trained. This is the whole paper, end to end, at laptop scale.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "common/fault.h"
#include "core/scheduler_core.h"
#include "fleet/instance_pool.h"
#include "nn/dataset.h"
#include "runtime/cloud_provider.h"
#include "runtime/training_cluster.h"
#include "trace/spot_trace.h"

namespace parcae {

class SloEngine;

struct SpotDriverOptions {
  double interval_s = 60.0;
  int lookahead = 8;
  int history = 12;
  int iterations_per_interval = 4;
  // Instances the driver keeps requested from the cloud.
  int requested_instances = 32;
  std::uint64_t seed = 11;
  // Remaining decision-engine knobs (mode, mc_trials, hysteresis,
  // reoptimize_every, ...). The scalar fields above override their
  // counterparts in here, and the pipeline-depth bounds are derived
  // from the actual cluster.
  SchedulerCoreOptions scheduler = [] {
    SchedulerCoreOptions o;
    o.mc_trials = 128;  // cheaper Monte-Carlo budget for the live loop
    o.max_instances = 64;
    return o;
  }();
  // Fault injection (docs/robustness.md). Non-owning; when null, the
  // driver consults the PARCAE_FAULTS environment variable and — if it
  // holds a valid spec — builds its own injector from `seed`. The
  // injector is forwarded to the cluster (kill points), the KvStore
  // (kv.* points) and every ParcaePS replica (ps.push).
  FaultInjector* faults = nullptr;
  // Hub-side trace writer (non-owning, optional): receives the
  // rpc.handle.* spans the cluster's RPC server emits, as its own
  // "process" file for `trace_tool merge`. The agent/scheduler side
  // traces into scheduler.tracer.
  obs::TraceWriter* hub_tracer = nullptr;
  // SLO rule engine (non-owning, optional). The driver points it at
  // the core's registry and event log (and the active fault injector)
  // and evaluates every rule at the end of each interval, so alerts
  // land in the run's own audit trail as kAlert events. No time
  // series is wired — the driver records none; use rate/gauge rules.
  SloEngine* slo = nullptr;
};

struct SpotDriverReport {
  int intervals = 0;
  long long iterations = 0;
  std::size_t epochs_completed = 0;
  float final_loss = 0.0f;
  long long ps_rollbacks = 0;
  bool replicas_always_consistent = true;
  // Executed migrations by kind (indexed by MigrationKind).
  std::array<int, 6> migrations_by_kind{};
  // Configuration the scheduler advised each interval (what the
  // cluster was reconfigured to).
  std::vector<ParallelConfig> advised;
  // The decision core's structured audit trail for the run: cloud
  // events, optimizer choices, hysteresis holds, planned migrations —
  // real-cluster runs are as auditable as simulated ones.
  EventLog telemetry;
  // Counters and latency histograms accumulated by the decision core
  // and the driver (reconfigure/train spans, executed migrations).
  obs::MetricsSnapshot metrics;
  // §8 robustness accounting (all zero unless a FaultInjector fired).
  long long faults_injected = 0;
  // Zero-grace kills the run absorbed without crashing, and the subset
  // that landed mid-iteration (lease abandoned, batch re-leased).
  long long unpredicted_kills_survived = 0;
  long long mid_iteration_kills = 0;
  // Migrations whose slot-fill was interrupted by a kill and recovered
  // via the ParcaePS rollback path (or suspended when infeasible).
  long long migrations_aborted = 0;
  // ParcaePS pushes that needed a retry, and pushes whose retries were
  // exhausted (PS refreshed from the trainer's post-update state).
  long long ps_push_retries = 0;
  long long ps_refreshes = 0;
  // Silent deaths detected through KvStore lease expiry.
  long long lease_expirations = 0;
  // Intervals the driver had to hold at idle because faults drove the
  // alive count below the advised (min viable) configuration.
  long long paused_intervals = 0;

  int migrations(MigrationKind kind) const {
    return migrations_by_kind[static_cast<std::size_t>(kind)];
  }
};

class SpotTrainingDriver {
 public:
  SpotTrainingDriver(TrainingClusterOptions cluster_options,
                     const nn::Dataset* dataset,
                     SpotDriverOptions options = {});

  // Runs against any cloud backend for `duration_s`: instance grants
  // become cluster agents, preemption notices (after their grace
  // period) remove them, and Algorithm 1 runs every interval.
  SpotDriverReport run(CloudProvider& cloud, double duration_s);

  // Convenience: replay `trace` through a TraceCloudProvider.
  SpotDriverReport run(const SpotTrace& trace);

  // Replays the instances `pool` grants this job. A trace-backed view
  // (TracePoolView) replays the original event-level trace —
  // bit-identical with run(trace), sub-interval event timing included;
  // an arbiter lease view (SeriesPoolView) replays the grant series
  // with changes at interval boundaries (§5.2's quantization, which is
  // exact for leases: the arbiter only resizes at boundaries).
  SpotDriverReport run(const InstancePoolView& pool);

  TrainingCluster& cluster() { return cluster_; }
  // The decision engine (exposed for the sim-vs-real equivalence
  // tests) and the profile it reasons over.
  const SchedulerCore& scheduler() const { return core_; }
  const ModelProfile& profile() const { return profile_; }

 private:
  // A ModelProfile describing the actual MLP, so ThroughputModel /
  // LiveputOptimizer reason about the real workload. Calibrated to
  // "seconds per iteration" scale; only relative throughputs matter
  // for configuration choice.
  ModelProfile derive_profile() const;
  SchedulerCoreOptions core_options() const;
  // Largest sub-configuration of `advice` that `alive` agents can run
  // (shrink dp first, then pp); kIdleConfig when even 1x1 won't fit.
  static ParallelConfig clamp_to_alive(ParallelConfig advice, int alive);

  TrainingClusterOptions cluster_options_;
  SpotDriverOptions options_;
  TrainingCluster cluster_;
  ModelProfile profile_;
  SchedulerCore core_;
  // Driver-owned injector built from PARCAE_FAULTS when the caller
  // didn't supply one; faults_ points at whichever is active.
  std::unique_ptr<FaultInjector> owned_faults_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace parcae
