// SpotTrainingDriver: the complete Parcae loop (Algorithm 1) running
// against the *real* in-process training cluster.
//
// Every interval it (1) applies the trace's preemptions/allocations to
// the cluster, (2) forecasts availability with the guarded ARIMA
// predictor, (3) asks the liveput optimizer for the next
// configuration (using a ModelProfile derived from the actual MLP so
// the optimizer reasons about the very model being trained),
// (4) adapts the advice to the actual availability (§8), (5) executes
// the live migration on real parameters, and (6) trains. This is the
// whole paper, end to end, at laptop scale.
#pragma once

#include <array>
#include <memory>

#include "core/liveput_optimizer.h"
#include "migration/planner.h"
#include "nn/dataset.h"
#include "predict/predictor.h"
#include "runtime/cloud_provider.h"
#include "runtime/training_cluster.h"
#include "trace/spot_trace.h"

namespace parcae {

struct SpotDriverOptions {
  double interval_s = 60.0;
  int lookahead = 8;
  int history = 12;
  int iterations_per_interval = 4;
  // Instances the driver keeps requested from the cloud.
  int requested_instances = 32;
  std::uint64_t seed = 11;
};

struct SpotDriverReport {
  int intervals = 0;
  long long iterations = 0;
  std::size_t epochs_completed = 0;
  float final_loss = 0.0f;
  long long ps_rollbacks = 0;
  bool replicas_always_consistent = true;
  // Executed migrations by kind (indexed by MigrationKind).
  std::array<int, 6> migrations_by_kind{};

  int migrations(MigrationKind kind) const {
    return migrations_by_kind[static_cast<std::size_t>(kind)];
  }
};

class SpotTrainingDriver {
 public:
  SpotTrainingDriver(TrainingClusterOptions cluster_options,
                     const nn::Dataset* dataset,
                     SpotDriverOptions options = {});

  // Runs against any cloud backend for `duration_s`: instance grants
  // become cluster agents, preemption notices (after their grace
  // period) remove them, and Algorithm 1 runs every interval.
  SpotDriverReport run(CloudProvider& cloud, double duration_s);

  // Convenience: replay `trace` through a TraceCloudProvider.
  SpotDriverReport run(const SpotTrace& trace);

  TrainingCluster& cluster() { return cluster_; }

 private:
  // A ModelProfile describing the actual MLP, so ThroughputModel /
  // LiveputOptimizer reason about the real workload. Calibrated to
  // "seconds per iteration" scale; only relative throughputs matter
  // for configuration choice.
  ModelProfile derive_profile() const;

  TrainingClusterOptions cluster_options_;
  SpotDriverOptions options_;
  TrainingCluster cluster_;
  ModelProfile profile_;
  ThroughputModel throughput_;
  LiveputOptimizer optimizer_;
  std::unique_ptr<AvailabilityPredictor> predictor_;
  Rng rng_;
};

}  // namespace parcae
