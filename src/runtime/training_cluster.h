// In-process enactment of Parcae's runtime architecture (Figure 7):
// ParcaeAgents hosting real pipeline stages, a scheduler that executes
// live migrations between them, ParcaePS mirroring every stage's
// states in "CPU DRAM", the SampleManager feeding data, and the
// KvStore recording the coordination state (assignments, config) the
// way the real system uses etcd.
//
// Unlike the interval-level ClusterSimulator (which models *time* and
// *cost*), this layer executes *real training math*: stages compute
// actual forwards/backwards on a real model, migrations copy actual
// parameters and optimizer states, and tests can verify Parcae's
// semantics claims directly — replicas stay bit-identical, migrations
// never corrupt the model, distributed training matches monolithic
// training, and every sample is trained exactly once per epoch.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "migration/planner.h"
#include "nn/dataset.h"
#include "nn/optimizer.h"
#include "nn/stage.h"
#include "parallel/parallel_config.h"
#include "runtime/kv_store.h"
#include "runtime/parcae_ps.h"
#include "runtime/sample_manager.h"

namespace parcae {

// One spot instance. When assigned, it hosts a replica of one pipeline
// stage (module + its own optimizer replica).
struct ParcaeAgent {
  int id = -1;
  bool alive = false;
  int pipeline = -1;  // -1: spare (allocated but unassigned)
  int stage = -1;
  std::unique_ptr<nn::StageModule> module;
  std::unique_ptr<nn::Adam> optimizer;

  bool assigned() const { return alive && pipeline >= 0; }
};

struct TrainingClusterOptions {
  std::vector<std::size_t> layer_sizes{16, 48, 32, 5};  // global MLP
  float learning_rate = 0.004f;
  std::uint64_t seed = 1;
  int initial_instances = 6;
  std::size_t epoch_size = 512;
  std::size_t batch_size = 32;
};

struct IterationOutcome {
  float loss = 0.0f;
  std::size_t samples = 0;
  bool epoch_finished = false;
};

class TrainingCluster {
 public:
  TrainingCluster(TrainingClusterOptions options, const nn::Dataset* dataset);

  // ---- cloud events -------------------------------------------------
  // Adds `count` fresh (spare) instances; returns their ids.
  std::vector<int> allocate(int count);
  // Preempts specific instances (takes effect at the iteration
  // boundary, as the grace period allows).
  void preempt(const std::vector<int>& agent_ids);
  // Preempts `count` instances chosen uniformly at random.
  void preempt_random(int count, Rng& rng);

  int alive_count() const;
  int spare_count() const;

  // ---- scheduler ----------------------------------------------------
  // Migrates to `target` (which must satisfy target.instances() <=
  // alive_count()). Chooses intra-stage reuse where possible, copies
  // states across stages where needed, re-shards on depth change, and
  // restores from ParcaePS when a stage has no surviving replica.
  // Passing kIdleConfig suspends training. Returns what it had to do.
  MigrationKind reconfigure(ParallelConfig target);

  ParallelConfig config() const { return config_; }
  int pipeline_depth_limit() const;  // layers available to split

  // False when preemptions have punched holes in the current
  // assignment; training cannot proceed until reconfigure() runs.
  bool assignment_intact() const;

  // ---- training -----------------------------------------------------
  // One synchronous data+pipeline-parallel iteration over one leased
  // mini-batch; commits the samples and pushes gradients to ParcaePS.
  // Returns nullopt when suspended or the epoch pool is exhausted
  // (epoch_finished is reported through the outcome of the last
  // successful iteration instead).
  std::optional<IterationOutcome> train_iteration();

  // Evaluation on an arbitrary batch using pipeline 0's stages.
  float eval_loss(const nn::Matrix& x, const std::vector<int>& labels);

  // ---- introspection / invariants ------------------------------------
  // All replicas of every stage hold identical parameters.
  bool replicas_consistent() const;
  // Full flat parameter vector assembled from pipeline 0 (layer-major;
  // comparable with nn::Mlp::flat_parameters of the same layout).
  std::vector<float> assembled_parameters() const;
  SampleManager& samples() { return samples_; }
  KvStore& kv() { return kv_; }
  const std::vector<ParcaeAgent>& agents() const { return agents_; }
  long long rollbacks() const { return rollbacks_; }

 private:
  struct StageState {
    std::vector<float> parameters;
    std::vector<float> optimizer_state;
  };

  ParcaeAgent* agent_at(int pipeline, int stage);
  const ParcaeAgent* agent_at(int pipeline, int stage) const;
  // Collect one healthy copy of every stage's state (from survivors or
  // ParcaePS). Returns per-stage states for the *current* partition.
  std::vector<StageState> collect_stage_states(bool& used_ps);
  void publish_assignments();
  StageState stage_state_from_ps(int stage) const;

  TrainingClusterOptions options_;
  const nn::Dataset* dataset_;
  KvStore kv_;
  SampleManager samples_;
  Rng rng_;
  std::vector<ParcaeAgent> agents_;
  ParallelConfig config_ = kIdleConfig;
  std::vector<std::vector<std::size_t>> stage_dims_;  // current partition
  // One ParcaePS replica per stage of the *current* partition.
  std::vector<std::unique_ptr<ParcaePs>> ps_;
  long long rollbacks_ = 0;
  int next_agent_id_ = 0;
};

}  // namespace parcae
