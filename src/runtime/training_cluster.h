// In-process enactment of Parcae's runtime architecture (Figure 7):
// ParcaeAgents hosting real pipeline stages, a scheduler that executes
// live migrations between them, ParcaePS mirroring every stage's
// states in "CPU DRAM", the SampleManager feeding data, and the
// KvStore recording the coordination state (assignments, config) the
// way the real system uses etcd.
//
// Unlike the interval-level ClusterSimulator (which models *time* and
// *cost*), this layer executes *real training math*: stages compute
// actual forwards/backwards on a real model, migrations copy actual
// parameters and optimizer states, and tests can verify Parcae's
// semantics claims directly — replicas stay bit-identical, migrations
// never corrupt the model, distributed training matches monolithic
// training, and every sample is trained exactly once per epoch.
//
// The §8 exception-handling paths run here too, driven by an attached
// FaultInjector (docs/robustness.md): zero-grace kills landing
// mid-iteration abandon the in-flight SampleManager lease (samples are
// re-leased later), kills landing mid-migration abort the partial plan
// and fall back to a kRollback restore from ParcaePS, failed ParcaePS
// pushes and KvStore writes are retried on a deterministic backoff
// schedule, and silent agent death is detected through KvStore lease
// expiry once the heartbeats stop.
// Transport modes: the coordination half of the Figure-7 wiring runs
// over the src/rpc stack. The cluster hosts the hub endpoint (KvStore
// + ParcaePS pool behind an RpcServer) and the agent side reaches it
// only through an RpcClient — kv puts, lease grants/keepalives/
// revocations, and every ParcaePS push/pull/restore cross the wire.
// "inproc" (the default) delivers frames synchronously in-process and
// is bit-identical with the historical direct-call runtime; "tcp"
// carries the same frames over real localhost sockets. The scheduler
// side (watches, advance_clock, prefix scans) stays co-located with
// the store, the way the paper's scheduler owns etcd.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "core/telemetry.h"
#include "migration/planner.h"
#include "nn/dataset.h"
#include "nn/optimizer.h"
#include "nn/stage.h"
#include "parallel/parallel_config.h"
#include "rpc/kv_service.h"
#include "rpc/ps_service.h"
#include "rpc/rpc.h"
#include "rpc/transport.h"
#include "runtime/kv_store.h"
#include "runtime/parcae_ps.h"
#include "runtime/sample_manager.h"

namespace parcae {

namespace obs {
class MetricsRegistry;
class TraceWriter;
}  // namespace obs

// One spot instance. When assigned, it hosts a replica of one pipeline
// stage (module + its own optimizer replica).
struct ParcaeAgent {
  int id = -1;
  bool alive = false;
  int pipeline = -1;  // -1: spare (allocated but unassigned)
  int stage = -1;
  std::unique_ptr<nn::StageModule> module;
  std::unique_ptr<nn::Adam> optimizer;
  // KvStore liveness lease the agent heartbeats while alive.
  std::uint64_t lease = 0;

  bool assigned() const { return alive && pipeline >= 0; }
};

struct TrainingClusterOptions {
  std::vector<std::size_t> layer_sizes{16, 48, 32, 5};  // global MLP
  float learning_rate = 0.004f;
  std::uint64_t seed = 1;
  int initial_instances = 6;
  std::size_t epoch_size = 512;
  std::size_t batch_size = 32;
  // TTL of each agent's KvStore liveness lease; heartbeat() renews it.
  // A zero-grace kill() stops the heartbeats and the death surfaces
  // through lease expiry (the driver's detection channel).
  double agent_lease_ttl_s = 150.0;
  // Backoff schedule for recoverable operations (ParcaePS pushes,
  // KvStore writes) when a FaultInjector makes them fail.
  RetryOptions retry;
  // Transport carrying the agent-side KV/PS traffic: "inproc"
  // (deterministic same-process delivery, the default) or "tcp" (real
  // localhost sockets).
  std::string transport = "inproc";
  // TCP listen port; 0 binds an ephemeral port (rpc_address() reports
  // the bound one). Ignored by inproc.
  int rpc_port = 0;
  // Per-call response deadline for the RpcClient (only throttles tcp
  // waits; inproc delivery is synchronous).
  double rpc_deadline_s = 0.25;
  // Prefix for the cluster's KvStore coordination keys ("agent/<id>"
  // becomes "<kv_namespace>agent/<id>") so many clusters can share one
  // store without colliding (a fleet of jobs: "job3/"). The default
  // empty namespace keeps the historical keys bit-identical.
  std::string kv_namespace;
  // Transport-level resend schedule (same-correlation-id retries on
  // dropped/timed-out frames). Deeper than the application `retry`
  // budget so a single logical call survives an rpc.drop chaos run.
  RetryOptions rpc_retry = [] {
    RetryOptions o;
    o.max_attempts = 6;
    return o;
  }();
};

struct IterationOutcome {
  float loss = 0.0f;
  std::size_t samples = 0;
  bool epoch_finished = false;
};

class TrainingCluster {
 public:
  TrainingCluster(TrainingClusterOptions options, const nn::Dataset* dataset);
  // Closes the agent connection, stops the RPC server (joining any
  // transport thread) before the served state is torn down.
  ~TrainingCluster();

  // ---- cloud events -------------------------------------------------
  // Adds `count` fresh (spare) instances; returns their ids.
  std::vector<int> allocate(int count);
  // Preempts specific instances (takes effect at the iteration
  // boundary, as the grace period allows). The graceful path: the
  // agent's lease is revoked and its KvStore record marked.
  void preempt(const std::vector<int>& agent_ids);
  // Preempts `count` instances chosen uniformly at random.
  void preempt_random(int count, Rng& rng);
  // Zero-grace kill (no notice, no grace period): the agent dies
  // *silently* — its KvStore record and lease are left untouched, so
  // the death is only detectable through lease expiry once the
  // heartbeats stop. Fault-injected mid-iteration/mid-migration kills
  // funnel through here.
  void kill(const std::vector<int>& agent_ids);

  int alive_count() const;
  int spare_count() const;

  // ---- scheduler ----------------------------------------------------
  // Migrates to `target` (which must satisfy target.instances() <=
  // alive_count()). Chooses intra-stage reuse where possible, copies
  // states across stages where needed, re-shards on depth change, and
  // restores from ParcaePS when a stage has no surviving replica.
  // Passing kIdleConfig suspends training. Returns what it had to do.
  MigrationKind reconfigure(ParallelConfig target);

  ParallelConfig config() const { return config_; }
  int pipeline_depth_limit() const;  // layers available to split

  // False when preemptions have punched holes in the current
  // assignment; training cannot proceed until reconfigure() runs.
  bool assignment_intact() const;

  // ---- training -----------------------------------------------------
  // One synchronous data+pipeline-parallel iteration over one leased
  // mini-batch; commits the samples and pushes gradients to ParcaePS.
  // Returns nullopt when suspended or the epoch pool is exhausted
  // (epoch_finished is reported through the outcome of the last
  // successful iteration instead).
  std::optional<IterationOutcome> train_iteration();

  // Evaluation on an arbitrary batch using pipeline 0's stages.
  float eval_loss(const nn::Matrix& x, const std::vector<int>& labels);

  // ---- introspection / invariants ------------------------------------
  // All replicas of every stage hold identical parameters.
  bool replicas_consistent() const;
  // Full flat parameter vector assembled from pipeline 0 (layer-major;
  // comparable with nn::Mlp::flat_parameters of the same layout).
  std::vector<float> assembled_parameters() const;
  SampleManager& samples() { return samples_; }
  KvStore& kv() { return kv_; }
  // The namespaced "agent/" key prefix this cluster registers agents
  // under — the prefix drivers must watch/list/get through.
  const std::string& agent_key_prefix() const { return agent_key_prefix_; }
  const std::vector<ParcaeAgent>& agents() const { return agents_; }
  long long rollbacks() const { return rollbacks_; }
  // The transport carrying agent-side traffic ("inproc" | "tcp") and
  // its server address — exposed for banners, reports, and the
  // partition-injection tests.
  rpc::Transport& rpc_transport() { return *transport_; }
  std::string rpc_address() const { return transport_->address(); }

  // ---- robustness hooks ---------------------------------------------
  // Non-owning sinks, all optional. The injector drives the
  // "cluster.kill_mid_iteration" / "cluster.kill_mid_migration" points
  // (and is forwarded to the KvStore and every ParcaePS replica for
  // "kv.*" / "ps.push"); metrics receive cluster.* recovery counters
  // and retry.* instrumentation; the event log gets one entry per
  // injected fault and recovery, stamped with set_time().
  // Forwarded to the KvStore, the ParcaePS pool, and the transport
  // (arming the rpc.* wire-fault points).
  void set_fault_injector(FaultInjector* faults);
  // Forwarded to the transport, server, and client so rpc.* counters
  // land next to the cluster.* ones.
  void set_metrics(obs::MetricsRegistry* metrics);
  // Distributed tracing, split by side of the wire: `agent_tracer`
  // receives the agent-side "rpc.call.*" spans (it is usually the
  // driver's writer, so calls nest under scheduler decision spans) and
  // `hub_tracer` the hub-side "rpc.handle.*" spans — two files that
  // `trace_tool merge` fuses into one cross-process timeline. Either
  // may be null; pass the same writer twice for a single-file view.
  void set_tracers(obs::TraceWriter* agent_tracer,
                   obs::TraceWriter* hub_tracer);
  void set_event_log(EventLog* events) { events_ = events; }
  void set_time(double now_s) { now_s_ = now_s; }
  // Renews the liveness lease of every alive agent (driven once per
  // interval by the driver). Injected keepalive failures are retried;
  // an exhausted retry is dropped (the lease may then expire
  // spuriously — a false-positive death, counted by the driver).
  void heartbeat();

 private:
  struct StageState {
    std::vector<float> parameters;
    std::vector<float> optimizer_state;
  };

  ParcaeAgent* agent_at(int pipeline, int stage);
  const ParcaeAgent* agent_at(int pipeline, int stage) const;
  // Clears optimizer states that aren't a full [t, m..., v...] record
  // (a never-stepped Adam serializes as [t] alone).
  static StageState normalized(StageState state);
  // Collect one healthy copy of every stage's state (from survivors or
  // ParcaePS). Returns per-stage states for the *current* partition.
  std::vector<StageState> collect_stage_states(bool& used_ps);
  void publish_assignments();
  StageState stage_state_from_ps(int stage) const;
  // Kills one uniformly chosen alive agent (the injector's pick
  // stream); returns its id, or -1 when nobody is alive.
  int kill_random_alive();
  // KvStore put with the retry schedule; an exhausted retry is counted
  // and dropped (coordination state goes stale, leases still expire).
  void kv_put_retried(const std::string& key, const std::string& value);
  void kv_put_retried(const std::string& key, const std::string& value,
                      std::uint64_t lease_id);
  void record_event(EventCategory category, std::string message,
                    std::map<std::string, std::string> fields = {});
  void count(const char* name);

  TrainingClusterOptions options_;
  std::string agent_key_prefix_;
  const nn::Dataset* dataset_;
  KvStore kv_;
  SampleManager samples_;
  Rng rng_;
  std::vector<ParcaeAgent> agents_;
  ParallelConfig config_ = kIdleConfig;
  std::vector<std::vector<std::size_t>> stage_dims_;  // current partition
  long long rollbacks_ = 0;
  int next_agent_id_ = 0;
  FaultInjector* faults_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  EventLog* events_ = nullptr;
  double now_s_ = 0.0;

  // RPC wiring, declared after the state it serves so reverse
  // destruction tears down clients first, then the server (joining
  // the tcp thread), then the transport — all before kv_ dies.
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<rpc::RpcServer> server_;
  std::unique_ptr<rpc::KvService> kv_service_;
  // Hub-side ParcaePS pool: one replica per stage of the *current*
  // partition, owned behind the ps.* methods.
  std::unique_ptr<rpc::PsService> ps_service_;
  std::unique_ptr<rpc::RpcClient> rpc_client_;
  std::unique_ptr<rpc::KvClient> kv_client_;
  std::unique_ptr<rpc::PsClient> ps_client_;
};

}  // namespace parcae
