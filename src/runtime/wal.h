// Durable write-ahead log for the multi-process runtime.
//
// The in-process KvStore survives nothing: a SIGKILL of the scheduler
// process loses every lease, tombstone, and the logical clock — and
// with them the coordination state the whole runtime hangs off. The
// WAL makes that state crash-survivable: every KvStore mutation
// (put / put_with_lease / cas / erase / lease grant / keepalive /
// revoke / advance_clock) is appended as one CRC-framed record
// *before* it is applied, and the scheduler additionally appends one
// decision record per interval (the availability it observed, the
// agent set, and the configuration it advised). A restarted scheduler
// — or the standby taking over after the primary's silent death —
// replays the log into a fresh store and *re-steps* the decision
// engine over the logged observations, resuming the advised-config
// sequence bit-identical to an uninterrupted run (KvStore is
// deterministic: replaying the same mutation sequence reproduces
// revisions, lease ids, expiries, and the clock exactly).
//
// On-disk format: an 8-byte file header ("PWAL\x01\0\0\0"), then
// records framed as
//     u32 payload_length | u32 crc32(payload) | payload bytes
// (little-endian). The payload is the rpc::ByteWriter encoding of one
// WalRecord. Recovery reads until EOF; a short frame, an oversized
// length, or a CRC mismatch marks a *torn tail* — everything from the
// first bad byte on is dropped (counted in kv.wal_truncated_records,
// optionally physically truncated) instead of aborting recovery. That
// is exactly the crash-mid-write case: a process SIGKILLed between
// the write() of a frame's first and last byte leaves a torn record
// that the next incarnation must skip, not choke on.
//
// Durability model: records are written with a single POSIX write()
// per record, unbuffered, so they survive *process* death (SIGKILL)
// the moment append() returns — the kernel owns the bytes. Surviving
// machine death needs fsync; set WalWriterOptions::fsync_each or call
// sync() at interval boundaries if that matters (tests don't pay for
// it).
//
// Fault injection: the "kv.wal_write" point simulates a torn write —
// append() writes a deliberately truncated frame, throws
// InjectedFault (the mutation is NOT applied; callers retry), and the
// next successful append first truncates the file back to the last
// good record, the way a real writer repairs its tail after a failed
// write.
//
// Thread-safety: WalWriter serializes appends behind its own mutex.
// KvStore mutations additionally append while holding the store's
// mutex (so WAL order equals application order for kv records), and
// the scheduler thread appends decision records concurrently with
// RPC-thread kv traffic — the writer's lock keeps frames whole.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace parcae {

class FaultInjector;
class KvStore;

namespace obs {
class MetricsRegistry;
}  // namespace obs

// CRC-32 (IEEE 802.3 polynomial, the zlib one), for WAL frame
// integrity. Exposed for tests and the trace_tool validator.
std::uint32_t crc32(const void* data, std::size_t size);

enum class WalRecordType : std::uint8_t {
  kPut = 1,
  kPutWithLease = 2,
  kCas = 3,
  kErase = 4,
  kLeaseGrant = 5,
  kLeaseKeepalive = 6,
  kLeaseRevoke = 7,
  kAdvanceClock = 8,
  kDecision = 9,
};

const char* wal_record_type_name(WalRecordType type);

// One decoded record. Flat: only the fields of `type` are meaningful.
struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  // kv mutations
  std::string key;
  std::string value;
  std::uint64_t lease_id = 0;          // kPutWithLease/kLeaseKeepalive/kLeaseRevoke
  std::uint64_t expected_version = 0;  // kCas
  double ttl_s = 0.0;                  // kLeaseGrant
  double dt_s = 0.0;                   // kAdvanceClock
  // kDecision: one scheduler interval
  int interval = 0;
  int available = 0;
  int preempted = 0;
  int allocated = 0;
  int advised_dp = 0;
  int advised_pp = 0;
  double stall_s = 0.0;
  std::vector<std::string> agents;  // agent ids observed this interval

  std::string encode() const;
  // Decodes one record payload; nullopt on a malformed payload (the
  // reader treats that like a CRC failure: torn tail).
  static std::optional<WalRecord> decode(const std::string& payload);

  // Convenience constructors for the kv mutation records.
  static WalRecord put(std::string key, std::string value);
  static WalRecord put_with_lease(std::string key, std::string value,
                                  std::uint64_t lease_id);
  static WalRecord cas(std::string key, std::uint64_t expected_version,
                       std::string value);
  static WalRecord erase(std::string key);
  static WalRecord lease_grant(double ttl_s);
  static WalRecord lease_keepalive(std::uint64_t lease_id);
  static WalRecord lease_revoke(std::uint64_t lease_id);
  static WalRecord advance_clock(double dt_s);
};

struct WalWriterOptions {
  // fsync() after every append (machine-crash durability). Process
  // death never needs it; leave off unless you mean it.
  bool fsync_each = false;
};

class WalWriter {
 public:
  WalWriter() = default;
  explicit WalWriter(WalWriterOptions options) : options_(options) {}
  ~WalWriter() { close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens (creating if needed) for appending. An empty/new file gets
  // the header; an existing file is appended after its last byte —
  // run read_wal(..., repair=true) first if its tail may be torn.
  // Returns false (with the reason in *error) on I/O failure.
  bool open(const std::string& path, std::string* error = nullptr);
  void close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Appends one record frame. Throws InjectedFault at the
  // "kv.wal_write" point (after writing a torn frame — see header
  // comment) and std::runtime_error on real I/O failure. The next
  // append after a torn write truncates the tail back first.
  void append(const WalRecord& record);

  // fsync the file (no-op when fsync_each already ran).
  void sync();

  long long records_appended() const { return records_appended_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  WalWriterOptions options_;
  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  std::uint64_t end_offset_ = 0;   // bytes of valid log written so far
  bool torn_ = false;              // a torn frame sits past end_offset_
  long long records_appended_ = 0;
  std::uint64_t bytes_written_ = 0;
  FaultInjector* faults_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  // Torn-tail accounting: truncation events (0 or 1 — everything from
  // the first bad byte is dropped) and the bytes dropped.
  std::uint64_t truncated_records = 0;
  std::uint64_t truncated_bytes = 0;
  // Byte offset of the end of the last good record (the repair point).
  std::uint64_t valid_bytes = 0;
  bool missing_header = false;  // not a WAL file (or empty)
  std::string error;            // unreadable file; records empty
  bool ok() const { return error.empty(); }
};

// Reads every valid record. A torn tail (short frame / bad CRC /
// undecodable payload) stops the scan and is reported, not thrown.
// With repair=true the file is physically truncated back to
// valid_bytes so subsequent appends continue a clean log. A missing
// file yields ok() with zero records (a fresh log).
WalReadResult read_wal(const std::string& path, bool repair = false);

struct WalReplayStats {
  std::size_t records = 0;       // total records applied/collected
  std::size_t kv_applied = 0;    // kv mutations applied to the store
  std::size_t decisions = 0;     // decision records collected
  std::uint64_t truncated_records = 0;
  bool clean = true;             // false when a tail was truncated
  std::string error;
  bool ok() const { return error.empty(); }
};

// Replays a WAL into `store` (which must be fresh and have *no*
// WalWriter attached — replay must not re-log) and collects decision
// records into *decisions (may be null). Counts truncations into
// metrics as "kv.wal_truncated_records" and applied records as
// "kv.wal_replayed_records". With repair=true the torn tail is also
// physically truncated.
WalReplayStats replay_wal(const std::string& path, KvStore& store,
                          std::vector<WalRecord>* decisions,
                          obs::MetricsRegistry* metrics = nullptr,
                          bool repair = false);

}  // namespace parcae
