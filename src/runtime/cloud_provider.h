// Cloud-provider interface (§9's boundary between ParcaeScheduler and
// the cloud).
//
// The scheduler never sees a trace — it sees instance-level events: a
// preemption *notice* arrives with a grace period (30 s on Azure, 120 s
// on AWS) before the instance disappears; allocation requests are
// asynchronous and may be partially filled. Two implementations ship:
// TraceCloudProvider replays a SpotTrace, MarketCloudProvider runs the
// Ornstein-Uhlenbeck price market live. A real cloud backend would
// implement the same interface.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "trace/spot_market.h"
#include "trace/spot_trace.h"

namespace parcae {

struct CloudEvent {
  enum class Kind { kPreemptionNotice, kInstanceGranted };
  Kind kind = Kind::kInstanceGranted;
  double time_s = 0.0;
  int instance_id = -1;
  // For preemption notices: seconds until the instance is reclaimed.
  double grace_s = 0.0;
};

class CloudProvider {
 public:
  virtual ~CloudProvider() = default;

  // Advances simulated time to `until_s` and returns the events that
  // occurred since the previous call, in time order.
  virtual std::vector<CloudEvent> advance(double until_s) = 0;

  // Registers interest in holding `count` instances in total; grants
  // arrive (if capacity allows) through advance().
  virtual void request_instances(int count) = 0;

  // Instances currently held (granted and not yet reclaimed).
  virtual int held() const = 0;

  virtual double spot_price_per_hour(double time_s) const = 0;

  virtual double grace_period_s() const { return 30.0; }
};

// Replays a SpotTrace: availability drops preempt uniformly chosen
// held instances (with the provider's grace period), rises grant new
// instances up to the outstanding request.
class TraceCloudProvider final : public CloudProvider {
 public:
  TraceCloudProvider(SpotTrace trace, std::uint64_t seed = 1,
                     double grace_s = 30.0, double price_per_hour = 0.918);

  std::vector<CloudEvent> advance(double until_s) override;
  void request_instances(int count) override;
  int held() const override { return static_cast<int>(held_.size()); }
  double spot_price_per_hour(double) const override { return price_; }
  double grace_period_s() const override { return grace_s_; }

 private:
  SpotTrace trace_;
  Rng rng_;
  double grace_s_;
  double price_;
  double now_ = 0.0;
  std::size_t next_event_ = 0;
  int requested_ = 0;
  std::vector<int> held_;
  int next_instance_id_ = 0;
};

// Runs the spot market live: price evolves per interval; preemptions
// and grants derive from price vs bid exactly as simulate_spot_market.
class MarketCloudProvider final : public CloudProvider {
 public:
  MarketCloudProvider(SpotMarketOptions options, std::uint64_t seed = 1,
                      double grace_s = 30.0);

  std::vector<CloudEvent> advance(double until_s) override;
  void request_instances(int count) override;
  int held() const override { return static_cast<int>(held_.size()); }
  double spot_price_per_hour(double time_s) const override;
  double grace_period_s() const override { return grace_s_; }

 private:
  void step_interval();

  SpotMarketOptions options_;
  Rng rng_;
  double grace_s_;
  double now_ = 0.0;
  double price_;
  std::vector<double> price_history_;
  int requested_ = 0;
  std::vector<int> held_;
  int next_instance_id_ = 0;
  std::vector<CloudEvent> pending_;
};

}  // namespace parcae
