// Per-interval stall bookkeeping shared by every SpotTrainingPolicy.
//
// Migration and checkpoint stalls routinely outlast the scheduling
// interval that incurred them (a GPT-3 checkpoint reload alone is
// ~156 s against T = 60 s): the excess must carry into subsequent
// intervals instead of being silently dropped. Each policy used to
// hand-roll this spillover (or forget it); IntervalAccountant is the
// one implementation. Policies add stalls as their events produce
// them, charge at most one interval's worth per interval, and settle
// the progress fields of the IntervalDecision from what remained.
#pragma once

#include <string>

#include "parallel/parallel_config.h"
#include "runtime/cluster_sim.h"

namespace parcae {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class IntervalAccountant {
 public:
  // Route stall accounting into `registry` (non-owning; nullptr
  // detaches) under `prefix`, e.g. "policy.Varuna":
  //   <prefix>.stall_events   counter: stalls incurred
  //   <prefix>.stall_s        counter: total stall seconds incurred
  //   <prefix>.stall_event_s  histogram: per-event stall size
  //   <prefix>.pending_stall_s gauge: spillover still draining
  void set_metrics(obs::MetricsRegistry* registry, std::string prefix);

  // Forget any outstanding stall (policy reset).
  void reset() { pending_stall_s_ = 0.0; }

  // Record a stall incurred now. May exceed the interval length; the
  // excess drains over the following intervals.
  void add_stall(double stall_s);

  // Consume up to `budget_s` of the outstanding stall and return the
  // amount consumed. Call once per interval with the interval length
  // (or with the un-stalled remainder, for stalls added mid-interval).
  double charge(double budget_s);

  // Stall still waiting to drain into future intervals.
  double pending_stall_s() const { return pending_stall_s_; }

  // Fill the progress fields of `d`: the configuration run, the stall
  // charged (clamped to the interval), the training throughput, and
  // the samples committed in the un-stalled remainder.
  static void settle(IntervalDecision& d, const ParallelConfig& config,
                     double throughput, double stall_s, double interval_s);

 private:
  double pending_stall_s_ = 0.0;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string prefix_;
};

// The "<verb> -> DxP" event note used across policies.
std::string transition_note(const std::string& verb,
                            const ParallelConfig& to);

}  // namespace parcae
