#include "runtime/interval_accountant.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace parcae {

void IntervalAccountant::set_metrics(obs::MetricsRegistry* registry,
                                     std::string prefix) {
  metrics_ = registry;
  prefix_ = std::move(prefix);
}

void IntervalAccountant::add_stall(double stall_s) {
  stall_s = std::max(0.0, stall_s);
  pending_stall_s_ += stall_s;
  if (metrics_ != nullptr && stall_s > 0.0) {
    metrics_->counter(prefix_ + ".stall_events").inc();
    metrics_->counter(prefix_ + ".stall_s").add(stall_s);
    metrics_->histogram(prefix_ + ".stall_event_s").observe(stall_s);
  }
}

double IntervalAccountant::charge(double budget_s) {
  const double charged = std::clamp(pending_stall_s_, 0.0, budget_s);
  pending_stall_s_ -= charged;
  if (metrics_ != nullptr)
    metrics_->gauge(prefix_ + ".pending_stall_s").set(pending_stall_s_);
  return charged;
}

void IntervalAccountant::settle(IntervalDecision& d,
                                const ParallelConfig& config,
                                double throughput, double stall_s,
                                double interval_s) {
  d.config = config;
  d.stall_s = std::min(stall_s, interval_s);
  d.throughput = throughput;
  d.samples_committed =
      throughput * std::max(0.0, interval_s - stall_s);
}

std::string transition_note(const std::string& verb,
                            const ParallelConfig& to) {
  return verb + " -> " + to.to_string();
}

}  // namespace parcae
