#include "runtime/interval_accountant.h"

#include <algorithm>

namespace parcae {

void IntervalAccountant::add_stall(double stall_s) {
  pending_stall_s_ += std::max(0.0, stall_s);
}

double IntervalAccountant::charge(double budget_s) {
  const double charged = std::clamp(pending_stall_s_, 0.0, budget_s);
  pending_stall_s_ -= charged;
  return charged;
}

void IntervalAccountant::settle(IntervalDecision& d,
                                const ParallelConfig& config,
                                double throughput, double stall_s,
                                double interval_s) {
  d.config = config;
  d.stall_s = std::min(stall_s, interval_s);
  d.throughput = throughput;
  d.samples_committed =
      throughput * std::max(0.0, interval_s - stall_s);
}

std::string transition_note(const std::string& verb,
                            const ParallelConfig& to) {
  return verb + " -> " + to.to_string();
}

}  // namespace parcae
