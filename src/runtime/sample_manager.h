// Sample manager (§9.1).
//
// Tracks every training sample of an epoch. Mini-batches are *leased*
// to pipelines; a lease is *committed* when the optimizer step using
// those samples completes, or *aborted* when a preemption destroys the
// in-flight iteration — aborted samples rejoin the pool and are
// re-leased later ("opportunistically reorder samples"). This
// guarantees each sample is trained exactly once per epoch, preserving
// on-demand training semantics while never recomputing committed work.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"

namespace parcae {

class SampleManager {
 public:
  // `epoch_size` samples per epoch, shuffled with `seed` at each epoch
  // start (the standard random-reshuffling data order).
  SampleManager(std::size_t epoch_size, std::uint64_t seed = 1,
                bool shuffle = true);

  struct Lease {
    std::uint64_t id = 0;
    std::vector<std::size_t> samples;
  };

  // Leases up to `batch` samples. Returns an empty lease (id 0) only
  // when every sample of the epoch is committed or currently leased.
  Lease lease(std::size_t batch);

  // Marks all samples of the lease as trained. Invalid ids are
  // ignored (idempotent commit).
  void commit(std::uint64_t lease_id);

  // Returns the lease's samples to the pool for re-leasing.
  void abort(std::uint64_t lease_id);

  // True when every sample of the current epoch is committed and no
  // lease is outstanding.
  bool epoch_complete() const;

  // Starts the next epoch (requires epoch_complete()).
  void start_next_epoch();

  std::size_t epoch() const { return epoch_; }
  std::size_t committed_count() const { return committed_; }
  std::size_t outstanding_leases() const { return leases_.size(); }
  std::size_t pool_remaining() const { return pool_.size(); }
  std::size_t epoch_size() const { return epoch_size_; }

  // Indices committed so far this epoch, in commit order (test hook
  // for the exactly-once property).
  const std::vector<std::size_t>& committed_samples() const {
    return committed_order_;
  }

 private:
  void refill_pool();

  std::size_t epoch_size_;
  Rng rng_;
  bool shuffle_;
  std::size_t epoch_ = 0;
  std::vector<std::size_t> pool_;  // not yet leased (back = next out)
  std::map<std::uint64_t, std::vector<std::size_t>> leases_;
  std::uint64_t next_lease_id_ = 1;
  std::size_t committed_ = 0;
  std::vector<std::size_t> committed_order_;
};

}  // namespace parcae
