// Checkpoint codec and in-memory checkpoint store (§9.3).
//
// ParcaePS keeps model states in host DRAM. This module provides the
// wire format for those states: a framed binary blob with a magic
// number, version, shape metadata, payload, and a CRC-32 so corrupted
// or truncated checkpoints are rejected on restore rather than
// silently loaded (the paper's rollback correctness depends on the
// checkpoint actually being the state it claims to be). The
// CheckpointStore keeps the last K encoded checkpoints per shard, the
// way ParcaePS hosts retain a short history.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace parcae {

struct CheckpointBlob {
  long long step = 0;           // optimizer step the state reflects
  std::vector<float> parameters;
  std::vector<float> optimizer_state;
};

// CRC-32 (IEEE, reflected) over a byte span.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

// Encodes to the framed binary format.
std::vector<std::uint8_t> encode_checkpoint(const CheckpointBlob& blob);

// Decodes; returns std::nullopt on bad magic/version/shape/CRC and
// reports why through *error when given.
std::optional<CheckpointBlob> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes, std::string* error = nullptr);

// Retains the most recent `history` encoded checkpoints per shard key.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::size_t history = 2) : history_(history) {}

  // Stores a checkpoint under `shard` (e.g. "stage-3").
  void put(const std::string& shard, const CheckpointBlob& blob);

  // Latest valid checkpoint for the shard; if the newest record is
  // corrupt, falls back to older ones.
  std::optional<CheckpointBlob> latest(const std::string& shard) const;

  // Step number of the newest record (0 if none).
  long long latest_step(const std::string& shard) const;

  // Total bytes held (capacity planning for the PS hosts' DRAM).
  std::size_t bytes_held() const;

  // Test hook: corrupt the newest record of a shard.
  void corrupt_newest(const std::string& shard);

 private:
  std::size_t history_;
  std::map<std::string, std::vector<std::vector<std::uint8_t>>> shards_;
};

}  // namespace parcae
