#include "runtime/kv_store.h"

#include <algorithm>

namespace parcae {

std::uint64_t KvStore::put(const std::string& key, std::string value) {
  KvEntry entry;
  {
    std::lock_guard lock(mutex_);
    ++revision_;
    auto& slot = data_[key];
    slot.value = std::move(value);
    slot.version = revision_;
    entry = slot;
  }
  notify(key, entry);
  return entry.version;
}

std::optional<KvEntry> KvStore::get(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::cas(const std::string& key, std::uint64_t expected_version,
                  std::string value) {
  KvEntry entry;
  {
    std::lock_guard lock(mutex_);
    const auto it = data_.find(key);
    const std::uint64_t current = it == data_.end() ? 0 : it->second.version;
    if (current != expected_version) return false;
    ++revision_;
    auto& slot = data_[key];
    slot.value = std::move(value);
    slot.version = revision_;
    entry = slot;
  }
  notify(key, entry);
  return true;
}

bool KvStore::erase(const std::string& key) {
  std::lock_guard lock(mutex_);
  return data_.erase(key) > 0;
}

std::vector<std::string> KvStore::list(const std::string& prefix) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t KvStore::watch(const std::string& prefix,
                             WatchCallback callback) {
  std::lock_guard lock(mutex_);
  const std::uint64_t id = next_watch_id_++;
  watches_[id] = Watch{prefix, std::move(callback)};
  return id;
}

void KvStore::unwatch(std::uint64_t watch_id) {
  std::lock_guard lock(mutex_);
  watches_.erase(watch_id);
}

std::uint64_t KvStore::revision() const {
  std::lock_guard lock(mutex_);
  return revision_;
}

void KvStore::notify(const std::string& key, const KvEntry& entry) {
  // Snapshot the matching callbacks so user code can watch/unwatch
  // from inside a callback without deadlocking.
  std::vector<WatchCallback> to_fire;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [id, w] : watches_) {
      if (key.compare(0, w.prefix.size(), w.prefix) == 0)
        to_fire.push_back(w.callback);
    }
  }
  for (auto& cb : to_fire) cb(key, entry);
}

}  // namespace parcae
