#include "runtime/kv_store.h"

#include <algorithm>

#include "common/fault.h"
#include "runtime/wal.h"

namespace parcae {

std::uint64_t KvStore::put(const std::string& key, std::string value) {
  if (faults_ != nullptr) faults_->maybe_throw("kv.put");
  KvEntry entry;
  {
    std::lock_guard lock(mutex_);
    if (wal_ != nullptr) wal_->append(WalRecord::put(key, value));
    ++revision_;
    auto& slot = data_[key];
    slot.value = std::move(value);
    slot.version = revision_;
    entry = slot;
  }
  notify(key, entry);
  return entry.version;
}

std::uint64_t KvStore::put_with_lease(const std::string& key,
                                      std::string value,
                                      std::uint64_t lease_id) {
  if (faults_ != nullptr) faults_->maybe_throw("kv.put");
  KvEntry entry;
  {
    std::lock_guard lock(mutex_);
    const auto it = leases_.find(lease_id);
    if (it == leases_.end()) return 0;
    if (wal_ != nullptr)
      wal_->append(WalRecord::put_with_lease(key, value, lease_id));
    ++revision_;
    auto& slot = data_[key];
    // Re-homing a key onto a different lease detaches it from the old
    // one lazily: expiry skips keys whose entry names another lease.
    slot.value = std::move(value);
    slot.version = revision_;
    slot.lease = lease_id;
    entry = slot;
    auto& keys = it->second.keys;
    if (std::find(keys.begin(), keys.end(), key) == keys.end())
      keys.push_back(key);
  }
  notify(key, entry);
  return entry.version;
}

std::optional<KvEntry> KvStore::get(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::cas(const std::string& key, std::uint64_t expected_version,
                  std::string value) {
  if (faults_ != nullptr) faults_->maybe_throw("kv.cas");
  KvEntry entry;
  {
    std::lock_guard lock(mutex_);
    const auto it = data_.find(key);
    const std::uint64_t current = it == data_.end() ? 0 : it->second.version;
    if (current != expected_version) return false;
    if (wal_ != nullptr)
      wal_->append(WalRecord::cas(key, expected_version, value));
    ++revision_;
    auto& slot = data_[key];
    slot.value = std::move(value);
    slot.version = revision_;
    entry = slot;
  }
  notify(key, entry);
  return true;
}

std::optional<KvEntry> KvStore::erase_locked(const std::string& key) {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  KvEntry tombstone = it->second;
  data_.erase(it);
  ++revision_;
  tombstone.version = revision_;
  tombstone.deleted = true;
  return tombstone;
}

bool KvStore::erase(const std::string& key) {
  std::optional<KvEntry> tombstone;
  {
    std::lock_guard lock(mutex_);
    if (data_.find(key) == data_.end()) return false;
    if (wal_ != nullptr) wal_->append(WalRecord::erase(key));
    tombstone = erase_locked(key);
  }
  if (!tombstone) return false;
  notify(key, *tombstone);
  return true;
}

std::vector<std::string> KvStore::list(const std::string& prefix) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t KvStore::watch(const std::string& prefix,
                             WatchCallback callback) {
  std::lock_guard lock(mutex_);
  const std::uint64_t id = next_watch_id_++;
  watches_[id] = Watch{prefix, std::move(callback)};
  return id;
}

void KvStore::unwatch(std::uint64_t watch_id) {
  std::lock_guard lock(mutex_);
  watches_.erase(watch_id);
}

std::uint64_t KvStore::revision() const {
  std::lock_guard lock(mutex_);
  return revision_;
}

std::uint64_t KvStore::lease_grant(double ttl_s) {
  std::lock_guard lock(mutex_);
  if (wal_ != nullptr) wal_->append(WalRecord::lease_grant(ttl_s));
  const std::uint64_t id = next_lease_id_++;
  leases_[id] = Lease{ttl_s, now_s_ + ttl_s, {}};
  return id;
}

bool KvStore::lease_keepalive(std::uint64_t lease_id) {
  if (faults_ != nullptr) faults_->maybe_throw("kv.keepalive");
  std::lock_guard lock(mutex_);
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;
  if (wal_ != nullptr) wal_->append(WalRecord::lease_keepalive(lease_id));
  it->second.deadline_s = now_s_ + it->second.ttl_s;
  return true;
}

bool KvStore::lease_revoke(std::uint64_t lease_id) {
  std::vector<std::pair<std::string, KvEntry>> tombstones;
  {
    std::lock_guard lock(mutex_);
    const auto it = leases_.find(lease_id);
    if (it == leases_.end()) return false;
    if (wal_ != nullptr) wal_->append(WalRecord::lease_revoke(lease_id));
    for (const std::string& key : it->second.keys) {
      const auto entry = data_.find(key);
      if (entry == data_.end() || entry->second.lease != lease_id) continue;
      if (auto tombstone = erase_locked(key))
        tombstones.emplace_back(key, std::move(*tombstone));
    }
    leases_.erase(it);
  }
  for (const auto& [key, entry] : tombstones) notify(key, entry);
  return true;
}

bool KvStore::lease_alive(std::uint64_t lease_id) const {
  std::lock_guard lock(mutex_);
  return leases_.find(lease_id) != leases_.end();
}

double KvStore::now() const {
  std::lock_guard lock(mutex_);
  return now_s_;
}

void KvStore::expire_due_leases_locked(
    std::vector<std::pair<std::string, KvEntry>>& tombstones) {
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline_s > now_s_) {
      ++it;
      continue;
    }
    for (const std::string& key : it->second.keys) {
      const auto entry = data_.find(key);
      if (entry == data_.end() || entry->second.lease != it->first) continue;
      if (auto tombstone = erase_locked(key))
        tombstones.emplace_back(key, std::move(*tombstone));
    }
    ++leases_expired_;
    it = leases_.erase(it);
  }
}

void KvStore::advance_clock(double dt_s) {
  std::vector<std::pair<std::string, KvEntry>> tombstones;
  {
    std::lock_guard lock(mutex_);
    if (wal_ != nullptr) wal_->append(WalRecord::advance_clock(dt_s));
    now_s_ += dt_s;
    expire_due_leases_locked(tombstones);
  }
  for (const auto& [key, entry] : tombstones) notify(key, entry);
}

std::uint64_t KvStore::leases_expired() const {
  std::lock_guard lock(mutex_);
  return leases_expired_;
}

void KvStore::notify(const std::string& key, const KvEntry& entry) {
  // Snapshot the matching callbacks so user code can watch/unwatch
  // from inside a callback without deadlocking.
  std::vector<WatchCallback> to_fire;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [id, w] : watches_) {
      if (key.compare(0, w.prefix.size(), w.prefix) == 0)
        to_fire.push_back(w.callback);
    }
  }
  for (auto& cb : to_fire) cb(key, entry);
}

}  // namespace parcae
