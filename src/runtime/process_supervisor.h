// Real child processes for the multi-process deployment layer.
//
// Everything below src/runtime runs the scheduler and agents in one
// process (InProcTransport, shared KvStore). ProcessSupervisor is the
// piece that turns those roles into *operating-system processes*: it
// fork/execs the tools/ binaries (parcae_agent, parcae_scheduler) as
// children, tracks their liveness through waitpid, and delivers the
// one fault this layer is about — SIGKILL, the untrappable death that
// models a spot preemption taking the whole VM. A SIGKILLed agent
// sends no goodbye; the scheduler only learns of its death when the
// agent's KV lease TTL lapses, exactly like production etcd.
//
// Fault injection: "proc.spawn" fires before fork() (spawn fails with
// InjectedFault, no child created) so drivers exercise their respawn
// paths.
//
// Metrics: proc.spawned / proc.sigkills / proc.signals / proc.reaped /
// proc.exited_nonzero.
//
// Thread-safety: all methods lock an internal mutex; waitpid
// bookkeeping is therefore safe from a monitor thread. The supervisor
// reaps only its own children (never waitpid(-1)), so it composes
// with other wait users in the same process.
#pragma once

#include <sys/types.h>

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace parcae {

class FaultInjector;
namespace obs {
class MetricsRegistry;
}  // namespace obs

struct SpawnSpec {
  std::string name;    // label for listings/metrics ("agent-3")
  std::string binary;  // absolute or relative path to the executable
  std::vector<std::string> args;  // argv[1..]; argv[0] is `binary`
};

// Terminal state of a reaped child.
struct ExitStatus {
  bool signaled = false;  // killed by a signal (term_signal) vs exited
  int exit_code = 0;      // valid when !signaled
  int term_signal = 0;    // valid when signaled (SIGKILL = 9)
};

class ProcessSupervisor {
 public:
  ProcessSupervisor() = default;
  // Kills (SIGKILL) and reaps every still-running child.
  ~ProcessSupervisor();

  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  // fork/execs the spec as a child process and returns its pid.
  // Throws InjectedFault at "proc.spawn" (before fork), or
  // std::runtime_error when fork itself fails. An exec failure inside
  // the child surfaces as exit code 127, observed at the next
  // alive()/wait_exit().
  pid_t spawn(const SpawnSpec& spec);

  // Non-blocking liveness probe: reaps the child if it has exited
  // (recording its ExitStatus) and returns whether it is still
  // running. Unknown pids are "not alive".
  bool alive(pid_t pid);

  // The injectable fault: untrappable kill, as a preemption that
  // takes the VM. Returns false for unknown/already-reaped pids.
  bool sigkill(pid_t pid);
  // Graceful variant (SIGTERM, SIGUSR1, ...).
  bool signal(pid_t pid, int sig);

  // Blocks (polling) until the child exits or `timeout_s` wall seconds
  // elapse. nullopt on timeout or unknown pid.
  std::optional<ExitStatus> wait_exit(pid_t pid, double timeout_s);

  // Exit status of an already-reaped child, if any.
  std::optional<ExitStatus> exit_status(pid_t pid) const;

  // SIGTERMs every running child, waits up to `grace_s` for them to
  // exit, SIGKILLs the stragglers, reaps everything. Returns how many
  // needed the SIGKILL.
  int shutdown_all(double grace_s);

  // Pids of children not yet observed dead (reap-state, not a probe).
  std::vector<pid_t> running() const;
  std::string name_of(pid_t pid) const;  // "<unknown>" for foreign pids

  // Non-owning sinks; nullptr disables.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  struct Child {
    std::string name;
    bool running = true;
    ExitStatus exit;
  };

  // Reaps `pid` if exited (WNOHANG); true when still running.
  // Requires mu_ held.
  bool probe_locked(pid_t pid);
  void record_exit_locked(Child& child, int wait_status);

  mutable std::mutex mu_;
  std::map<pid_t, Child> children_;
  FaultInjector* faults_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace parcae
