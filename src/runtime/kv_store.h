// In-memory etcd-like key-value store.
//
// The real Parcae coordinates ParcaeScheduler and ParcaeAgents through
// etcd (§9); this substrate provides the same primitives the runtime
// needs — versioned puts, gets, compare-and-swap, prefix listing, and
// watch callbacks — so scheduler/agent interactions go through an
// explicit rendezvous layer rather than direct method calls.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace parcae {

struct KvEntry {
  std::string value;
  std::uint64_t version = 0;  // store-wide revision of the last write
};

class KvStore {
 public:
  using WatchCallback =
      std::function<void(const std::string& key, const KvEntry& entry)>;

  // Writes `value`; returns the new revision.
  std::uint64_t put(const std::string& key, std::string value);

  std::optional<KvEntry> get(const std::string& key) const;

  // Atomic compare-and-swap on the entry's version (0 = create only).
  // Returns true and writes when the expected version matches.
  bool cas(const std::string& key, std::uint64_t expected_version,
           std::string value);

  // Deletes a key; returns whether it existed.
  bool erase(const std::string& key);

  // All keys with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;

  // Registers a callback fired on every put/cas touching `prefix`.
  // Returns a watch id usable with unwatch().
  std::uint64_t watch(const std::string& prefix, WatchCallback callback);
  void unwatch(std::uint64_t watch_id);

  std::uint64_t revision() const;

 private:
  void notify(const std::string& key, const KvEntry& entry);

  mutable std::mutex mutex_;
  std::map<std::string, KvEntry> data_;
  std::uint64_t revision_ = 0;
  struct Watch {
    std::string prefix;
    WatchCallback callback;
  };
  std::map<std::uint64_t, Watch> watches_;
  std::uint64_t next_watch_id_ = 1;
};

}  // namespace parcae
