// In-memory etcd-like key-value store.
//
// The real Parcae coordinates ParcaeScheduler and ParcaeAgents through
// etcd (§9); this substrate provides the same primitives the runtime
// needs — versioned puts, gets, compare-and-swap, prefix listing,
// watch callbacks, and TTL leases with heartbeats — so scheduler/agent
// interactions go through an explicit rendezvous layer rather than
// direct method calls.
//
// Liveness: agents attach their keys to a lease and renew it with
// lease_keepalive() while alive. The store runs on a *logical* clock
// (advance_clock(), driven by the executor's interval loop); when a
// lease's TTL lapses its keys are erased and watchers see a tombstone
// (KvEntry::deleted). Unpredicted agent death is thereby *detected*
// through lease expiry — the way etcd tells a real scheduler — rather
// than told to the scheduler by the test harness.
//
// Fault injection: an attached FaultInjector can make put/cas/
// keepalive throw at the "kv.put" / "kv.cas" / "kv.keepalive" points
// (before any state changes), so callers exercise their retry paths.
//
// Locking rules: every public method takes mu_, so the store may be
// shared between the scheduler thread and an RPC transport thread
// serving remote agents. Watch callbacks are invoked *outside* mu_
// (notify() snapshots the callback list under the lock, then calls
// with it released), so a callback may safely re-enter the store;
// the flip side is that a callback must tolerate observing state
// newer than the event it was queued for. watch() registration and
// advance_clock() are scheduler-thread operations by convention —
// they are mutex-safe like everything else, but the runtime keeps
// them off the transport path on purpose (see src/rpc/kv_service.h).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace parcae {

class FaultInjector;
class WalWriter;

struct KvEntry {
  std::string value;
  std::uint64_t version = 0;  // store-wide revision of the last write
  std::uint64_t lease = 0;    // owning lease id; 0 = no lease
  // Tombstone marker: true only on watch notifications for a deletion
  // (explicit erase or lease expiry); `version` then carries the
  // revision of the deletion and `value` the last value.
  bool deleted = false;
};

class KvStore {
 public:
  using WatchCallback =
      std::function<void(const std::string& key, const KvEntry& entry)>;

  // Writes `value`; returns the new revision.
  std::uint64_t put(const std::string& key, std::string value);

  // put() with the key attached to `lease_id`; the key dies with the
  // lease. Returns 0 (writing nothing) when the lease is not alive.
  std::uint64_t put_with_lease(const std::string& key, std::string value,
                               std::uint64_t lease_id);

  std::optional<KvEntry> get(const std::string& key) const;

  // Atomic compare-and-swap on the entry's version (0 = create only).
  // Returns true and writes when the expected version matches. A key
  // deleted by lease expiry has no version, so a CAS against its old
  // version fails — stale agents cannot resurrect their state.
  bool cas(const std::string& key, std::uint64_t expected_version,
           std::string value);

  // Deletes a key; returns whether it existed. Deletion is a write:
  // it bumps the store revision and notifies watchers with a
  // tombstone entry.
  bool erase(const std::string& key);

  // All keys with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;

  // Registers a callback fired on every put/cas/erase (including
  // lease-expiry erases) touching `prefix`. Returns a watch id usable
  // with unwatch().
  std::uint64_t watch(const std::string& prefix, WatchCallback callback);
  void unwatch(std::uint64_t watch_id);

  std::uint64_t revision() const;

  // ---- leases (liveness) --------------------------------------------
  // Grants a lease expiring `ttl_s` logical seconds from now().
  std::uint64_t lease_grant(double ttl_s);
  // Heartbeat: pushes the expiry back to now() + its TTL. False when
  // the lease is unknown or already expired (a dead agent cannot
  // revive itself; it must re-register).
  bool lease_keepalive(std::uint64_t lease_id);
  // Immediate expiry: erases the lease's keys (tombstone notify).
  bool lease_revoke(std::uint64_t lease_id);
  bool lease_alive(std::uint64_t lease_id) const;

  // Logical clock. advance_clock() expires every lease whose deadline
  // passed, erasing its keys with tombstone notifications.
  double now() const;
  void advance_clock(double dt_s);
  // Leases that have expired (not revoked) since construction.
  std::uint64_t leases_expired() const;

  // Non-owning; nullptr disables injection. See the fault points in
  // the header comment.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Durability (src/runtime/wal.h): with a writer attached, every
  // mutation appends one record *before* applying, under this store's
  // mutex, so WAL order equals application order and a replayed log
  // reproduces revisions, lease ids, expiries, and the clock exactly.
  // A failed append (torn write) aborts the mutation — callers retry.
  // Non-owning; must outlive the store or be detached first. Attach
  // only to a store whose state the log already reflects (fresh, or
  // just replayed from this same log).
  void set_wal(WalWriter* wal) { wal_ = wal; }

 private:
  struct Lease {
    double ttl_s = 0.0;
    double deadline_s = 0.0;
    std::vector<std::string> keys;
  };

  void notify(const std::string& key, const KvEntry& entry);
  // Erases `key` under the lock, returning the tombstone to notify
  // with (nullopt when the key did not exist).
  std::optional<KvEntry> erase_locked(const std::string& key);
  void expire_due_leases_locked(std::vector<std::pair<std::string, KvEntry>>&
                                    tombstones);

  mutable std::mutex mutex_;
  std::map<std::string, KvEntry> data_;
  std::uint64_t revision_ = 0;
  struct Watch {
    std::string prefix;
    WatchCallback callback;
  };
  std::map<std::uint64_t, Watch> watches_;
  std::uint64_t next_watch_id_ = 1;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
  double now_s_ = 0.0;
  std::uint64_t leases_expired_ = 0;
  FaultInjector* faults_ = nullptr;
  WalWriter* wal_ = nullptr;
};

}  // namespace parcae
