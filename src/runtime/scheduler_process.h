// The scheduler as a crash-survivable operating-system process.
//
// SchedulerProcess packages the pieces the in-process runtime already
// has — KvStore rendezvous, SchedulerCore decisions, LeaseElection —
// into the deployment shape of the paper's §9 system: one primary
// process owning the store and the decision loop, real agent child
// processes reaching it over TCP (tools/parcae_agent), and a standby
// process waiting to take over. Three properties are the point:
//
//   Durability.   Every KvStore mutation is WAL-logged write-ahead
//     (src/runtime/wal.h), and every interval commits one decision
//     record carrying the observation the core actually saw (agent
//     set, availability triple) plus the advice it issued. A
//     restarted scheduler replays the KV records into a fresh store
//     and *re-steps* its deterministic core over the logged
//     observations, so the advised-config sequence after the restart
//     is bit-for-bit the sequence an uninterrupted run would have
//     produced. Any replay step whose recomputed advice differs from
//     the logged advice sets `replay_divergence` — a corruption
//     tripwire, not a recovery strategy.
//
//   Liveness by lease.  Agents register under <ns>agent/<id> bound to
//     a TTL lease on the store's logical clock; the clock advances
//     once per interval tick. A SIGKILLed agent sends no goodbye —
//     its key simply tombstones when the TTL lapses, and the next
//     observation sees the smaller agent set. This is the paper's
//     etcd liveness path with real process death behind it.
//
//   HA takeover.  The primary holds the <ns>scheduler/primary seat
//     through LeaseElection. A standby (run_standby) probes the
//     primary's TCP endpoint; when fleet::StandbyMonitor declares it
//     dead, the standby replays the shared WAL, binds the SAME port
//     (the dead process's listener is gone), campaigns for the seat
//     as the old holder's lease expires, and resumes ticking at the
//     interval after the last committed decision. Agents ride the
//     restart out via RpcClient reconnect — same address, fresh
//     socket.
//
// Idempotence across the crash point: the tick's logical-clock
// advance targets the absolute time (interval+1)*interval_s rather
// than adding a delta, so a crash between the advance and the
// decision commit does not double-advance on resume; the decision
// append is the interval's commit point.
//
// Training progress is modeled, not executed: each interval earns
//   samples += throughput(advised config) * max(0, interval_s - stall)
// from the core's own ThroughputModel, and the run's synthetic loss
//   loss = 0.3 + 6 / (1 + samples / tau)
// decays toward 0.3 as samples accumulate (tau is a quarter of the
// ideal full-availability run's samples). The multiproc example
// asserts convergence under SIGKILL chaos — a run that loses real
// intervals to a slow takeover visibly fails to converge.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/retry.h"
#include "core/scheduler_core.h"
#include "fleet/election.h"
#include "runtime/kv_store.h"
#include "runtime/wal.h"

namespace parcae {

class FaultInjector;

// A tiny MLP profile (the spot driver's in-cluster derivation) sized
// so pipeline depths up to 8 are feasible — the decision loop has
// real configuration choices without real training.
ModelProfile make_multiproc_profile();

struct SchedulerProcessOptions {
  std::string name = "scheduler";  // seat candidate / report label
  // Append-only WAL shared by primary and standby (same filesystem —
  // the paper's persistent-disk assumption for etcd).
  std::string wal_path;
  // TCP port for the KV service; < 0 runs storeside-only (in-process
  // tests drive tick() directly and mutate kv() for churn).
  int port = -1;

  int intervals = 16;        // decision intervals in the run
  double interval_s = 2.0;   // logical seconds per interval
  int tick_wall_ms = 100;    // wall pacing between ticks (run_primary)

  // Liveness TTLs on the logical clock. The seat TTL bounds how long
  // a dead primary blocks the standby's campaign (in intervals).
  double seat_ttl_s = 6.0;

  // Standby failure detection (wall clock, not logical).
  double takeover_after_s = 0.75;
  int min_failed_probes = 3;
  int probe_interval_ms = 50;
  double probe_deadline_s = 0.15;

  // Capacity the synthetic-loss tau is computed against (the agent
  // count the run is expected to hold).
  int requested_instances = 4;

  std::string kv_namespace = "parcae/";
  std::uint64_t seed = 123;
  // Core knobs (mode, lookahead, ...). interval_s / seed / metrics /
  // max_instances are overridden from the fields above.
  SchedulerCoreOptions core;

  // Written by run_primary / run_standby on completion ("" = skip).
  std::string report_path;

  // Retry schedule for WAL-aborted mutations (torn-write injection).
  RetryOptions wal_retry;

  // Non-owning sinks. The injector reaches the WAL writer (for
  // kv.wal_write) and the transport (rpc.* points) — NOT the store's
  // kv.* points, which belong to in-process fault tests.
  FaultInjector* faults = nullptr;
  obs::MetricsRegistry* metrics = nullptr;  // else a process-owned one
};

// One advised configuration, the unit the bit-identity tests compare.
struct AdvisedRecord {
  int interval = 0;
  int dp = 0;
  int pp = 0;
  double stall_s = 0.0;

  friend bool operator==(const AdvisedRecord&,
                         const AdvisedRecord&) = default;
  std::string to_string() const;
};

struct SchedulerRunReport {
  std::string name;
  int intervals_run = 0;            // ticks executed by THIS process
  int resumed_from_interval = -1;   // first live interval (-1 = fresh)
  bool recovered = false;           // WAL had prior state
  bool replay_divergence = false;   // recomputed advice != logged
  bool took_over = false;           // standby promoted to primary
  double total_samples = 0.0;
  double final_loss = 0.0;
  bool converged = false;
  std::uint64_t wal_truncated_records = 0;
  std::uint64_t lease_expirations = 0;
  std::vector<AdvisedRecord> advised;  // full sequence incl. replayed

  std::string to_text() const;
};

class SchedulerProcess {
 public:
  explicit SchedulerProcess(SchedulerProcessOptions options);
  ~SchedulerProcess();

  SchedulerProcess(const SchedulerProcess&) = delete;
  SchedulerProcess& operator=(const SchedulerProcess&) = delete;

  // Replays the WAL (repairing a torn tail), re-steps the core over
  // the logged decisions, opens the writer and attaches it to the
  // store. Must run before tick(). False (reason in *error) when the
  // WAL is unreadable.
  bool init_primary(std::string* error = nullptr);

  // One decision interval: advance the logical clock (idempotent),
  // renew/campaign the seat, observe <ns>agent/, step the core,
  // commit the decision record, publish the advice.
  void tick();
  bool done() const { return next_interval_ >= options_.intervals; }
  int next_interval() const { return next_interval_; }

  // Full process entry points (tools/parcae_scheduler): returns the
  // process exit code. run_standby probes, takes over on silence,
  // then runs the primary loop from the shared WAL.
  int run_primary();
  int run_standby();

  // The store, for in-process tests to script agent churn against.
  KvStore& kv() { return kv_; }
  SchedulerCore& core() { return core_; }
  obs::MetricsRegistry& metrics() { return *metrics_; }

  const std::vector<AdvisedRecord>& advised() const { return advised_; }
  bool recovered() const { return recovered_; }
  bool replay_divergence() const { return replay_divergence_; }
  bool took_over() const { return took_over_; }
  double total_samples() const { return samples_; }

  SchedulerRunReport report() const;
  bool write_report(std::string* error = nullptr) const;

 private:
  static SchedulerCoreOptions core_options(
      const SchedulerProcessOptions& options, obs::MetricsRegistry* metrics);

  // Serves the KV service on options_.port until *this is destroyed.
  // Retries the bind (a takeover may race the dying listener).
  bool start_server();
  void finish_run();
  double loss_for(double samples) const;
  // Logged-mutation helper: retries on the torn-write InjectedFault
  // (the writer self-heals its tail on the next append).
  template <typename F>
  void with_wal_retry(const char* what, F&& fn);

  SchedulerProcessOptions options_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;
  KvStore kv_;
  SchedulerCore core_;
  WalWriter wal_;
  fleet::LeaseElection seat_;
  std::string ns_;

  // RPC plumbing, live only while serving (types hidden in the .cpp).
  struct Server;
  std::unique_ptr<Server> server_;

  int next_interval_ = 0;
  int resumed_from_ = -1;
  int ticks_run_ = 0;
  bool recovered_ = false;
  bool replay_divergence_ = false;
  bool took_over_ = false;
  double samples_ = 0.0;
  double tau_ = 1.0;
  std::vector<std::string> prev_agents_;
  std::vector<AdvisedRecord> advised_;
};

}  // namespace parcae
