#include "serve/arrival.h"

#include <algorithm>
#include <cmath>

namespace parcae::serve {
namespace {

constexpr double kPi = 3.14159265358979323846;

// SplitMix64 finalizer: decorrelates (seed, interval) into a fresh
// stream key, same construction the preemption sampler uses for
// per-point forks.
std::uint64_t mix(std::uint64_t seed, std::uint64_t interval) {
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (interval + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kMmpp:
      return "mmpp";
    case ArrivalKind::kReplay:
      return "replay";
  }
  return "?";
}

ArrivalGenerator::ArrivalGenerator(ArrivalOptions options)
    : options_(std::move(options)) {
  if (options_.interval_s <= 0.0) options_.interval_s = 60.0;
  if (options_.base_rps < 0.0) options_.base_rps = 0.0;
  if (options_.burst_multiplier < 1.0) options_.burst_multiplier = 1.0;
  options_.p_enter_burst = std::clamp(options_.p_enter_burst, 0.0, 1.0);
  options_.p_exit_burst = std::clamp(options_.p_exit_burst, 0.0, 1.0);
  const double denom = options_.p_enter_burst + options_.p_exit_burst;
  stationary_burst_ = denom > 0.0 ? options_.p_enter_burst / denom : 0.0;
}

void ArrivalGenerator::prepare(int intervals) {
  if (options_.kind != ArrivalKind::kMmpp) return;
  if (intervals <= static_cast<int>(burst_.size())) return;
  // One chain, one dedicated stream; extending re-draws nothing.
  Rng chain(mix(options_.seed, 0xbc57ULL));
  std::vector<std::uint8_t> fresh;
  fresh.reserve(static_cast<std::size_t>(intervals));
  std::uint8_t state = 0;
  for (int i = 0; i < intervals; ++i) {
    const double p = state ? options_.p_exit_burst : options_.p_enter_burst;
    if (chain.uniform() < p) state ^= 1;
    fresh.push_back(state);
  }
  // The chain is replayed from interval 0 every time, so an extension
  // agrees with the existing prefix bit-for-bit.
  burst_ = std::move(fresh);
}

double ArrivalGenerator::envelope(int interval) const {
  if (options_.diurnal_amplitude == 0.0) return 1.0;
  const double t = (interval + 0.5) * options_.interval_s;
  const double phase =
      2.0 * kPi * (t - options_.diurnal_phase_s) / options_.diurnal_period_s;
  const double e = 1.0 + options_.diurnal_amplitude * std::sin(phase);
  return e > 0.0 ? e : 0.0;
}

double ArrivalGenerator::expected_rps(int interval) const {
  if (options_.kind == ArrivalKind::kReplay) {
    if (options_.replay_rps.empty()) return 0.0;
    const int idx = std::min<int>(interval,
                                  static_cast<int>(options_.replay_rps.size()) - 1);
    return std::max(0.0, options_.replay_rps[static_cast<std::size_t>(idx)]);
  }
  double rate = options_.base_rps * envelope(interval);
  if (options_.kind == ArrivalKind::kMmpp) {
    rate *= 1.0 + stationary_burst_ * (options_.burst_multiplier - 1.0);
  }
  return rate;
}

double ArrivalGenerator::realized_rps(int interval) const {
  if (options_.kind == ArrivalKind::kReplay) return expected_rps(interval);
  double rate = options_.base_rps * envelope(interval);
  if (options_.kind == ArrivalKind::kMmpp) {
    const std::size_t i = static_cast<std::size_t>(interval);
    const bool bursting = i < burst_.size() && burst_[i];
    if (bursting) rate *= options_.burst_multiplier;
  }
  return rate;
}

int ArrivalGenerator::count(int interval) const {
  const double lambda = realized_rps(interval) * options_.interval_s;
  if (lambda <= 0.0) return 0;
  Rng rng(mix(options_.seed, static_cast<std::uint64_t>(interval) + 1));
  return static_cast<int>(rng.poisson(lambda));
}

void ArrivalGenerator::arrivals(int interval, std::vector<double>& out) const {
  out.clear();
  const double lambda = realized_rps(interval) * options_.interval_s;
  if (lambda <= 0.0) return;
  Rng rng(mix(options_.seed, static_cast<std::uint64_t>(interval) + 1));
  const int n = static_cast<int>(rng.poisson(lambda));
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.uniform() * options_.interval_s);
  std::sort(out.begin(), out.end());
}

std::uint64_t ArrivalGenerator::total_requests(int intervals) const {
  std::uint64_t total = 0;
  for (int i = 0; i < intervals; ++i) {
    total += static_cast<std::uint64_t>(count(i));
  }
  return total;
}

}  // namespace parcae::serve
