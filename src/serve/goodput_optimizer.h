// Goodput optimizer: the liveput DP (§7) with the serving objective
// (SpotServe direction; docs/serving.md).
//
// Same decision problem as training — pick a parallel configuration
// per look-ahead interval under a predicted availability sequence —
// but the per-interval reward is expected *goodput* (requests served
// within the latency SLO, from the M/G/1 estimator in queue_model.h)
// instead of training throughput, and reconfigurations additionally
// pay a drain charge for the in-flight requests of the outgoing
// replicas:
//
//   F(i+1, c') = max_{c} F(i, c)
//                + GOODPUT(c', rps_{i+1})
//                  * max(0, T - E_v[T_mig(c -> c' | v)] - drain(c))
//
// The expectation over preemption mappings v is *exactly* the
// training one: this optimizer owns a LiveputOptimizer purely for its
// memoized expected_migration_cost (MC preemption summaries, mixture
// arithmetic, edge memo — reused untouched), so serving decisions
// marginalize over the same availability samples as training ones.
//
// The incremental warm-start discipline mirrors the training DP (PR 8)
// exactly: a column is reused iff its direct inputs (N_i, rps_i, and
// for i = 0 the live config) are unchanged AND the predecessor
// column's values are unchanged, with a convergence cutoff, and
// full_resolve / verify_incremental escape hatches. Bit-identity of
// incremental vs. full solves and across thread counts is pinned by
// tests/serve_test.cpp.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/liveput_optimizer.h"
#include "serve/queue_model.h"

namespace parcae {
class ThreadPool;
namespace obs {
class MetricsRegistry;
}  // namespace obs
}  // namespace parcae

namespace parcae::serve {

struct GoodputOptimizerOptions {
  double interval_s = 60.0;
  int mc_trials = 256;
  std::uint64_t seed = 7;
  obs::MetricsRegistry* metrics = nullptr;
  // DP candidate-loop worker threads; same semantics as the liveput
  // optimizer (1 = serial, 0 = resolve from env/hardware). Plans are
  // bit-identical at any thread count.
  int threads = 1;
  std::string metric_prefix;
  bool full_resolve = false;
  bool verify_incremental = false;
  std::size_t space_cache_capacity = 64;
};

struct GoodputPlan {
  // Configurations chosen per predicted interval. config.dp = serving
  // replicas, config.pp = pipeline depth per replica.
  std::vector<ParallelConfig> configs;
  // Expected requests served within the SLO over the window.
  double expected_good_requests = 0.0;

  ParallelConfig next() const {
    return configs.empty() ? kIdleConfig : configs.front();
  }
};

class GoodputOptimizer {
 public:
  // `queue` and the throughput model behind it must outlive the
  // optimizer.
  GoodputOptimizer(const ReplicaQueueModel* queue,
                   CostEstimator estimator,
                   GoodputOptimizerOptions options = {});
  ~GoodputOptimizer();
  GoodputOptimizer(const GoodputOptimizer&) = delete;
  GoodputOptimizer& operator=(const GoodputOptimizer&) = delete;

  // `predicted_instances` and `predicted_rps` are parallel arrays,
  // one entry per future interval.
  GoodputPlan optimize(ParallelConfig current, int n_now,
                       const std::vector<int>& predicted_instances,
                       const std::vector<double>& predicted_rps);

  ParallelConfig advise(ParallelConfig current, int n_now,
                        const std::vector<int>& predicted_instances,
                        const std::vector<double>& predicted_rps);

  // Expected reconfiguration stall (migration + drain) used on the DP
  // edges; exposed for tests and the serving scheduler.
  double edge_cost(ParallelConfig from, int n_from, ParallelConfig to,
                   int preemptions, double offered_rps);

  const ReplicaQueueModel& queue_model() const { return *queue_; }

  // Drop the warm-started value table (scheduler reset).
  void invalidate();

  int threads() const { return threads_; }

  // Incremental-DP telemetry (serve_dp.states_reused /
  // serve_dp.states_re_expanded), cumulative and most-recent-solve.
  std::uint64_t states_reused() const { return states_reused_; }
  std::uint64_t states_re_expanded() const { return states_re_expanded_; }
  std::uint64_t last_states_reused() const { return last_states_reused_; }
  std::uint64_t last_states_re_expanded() const {
    return last_states_re_expanded_;
  }

 private:
  struct ServingSpace {
    std::vector<ParallelConfig> configs;  // idle sentinel always last
  };

  struct WarmState {
    bool valid = false;
    ParallelConfig current = kIdleConfig;
    int n_now = 0;
    std::vector<int> predicted_n;
    std::vector<double> predicted_rps;
    std::vector<std::shared_ptr<const ServingSpace>> spaces;
    std::vector<std::vector<double>> best;
    std::vector<std::vector<int>> parent;
  };

  std::shared_ptr<const ServingSpace> resolve_space(int n);
  void compute_column(std::size_t i, ParallelConfig current, int n_now,
                      const std::vector<int>& predicted_n,
                      const std::vector<double>& predicted_rps,
                      const ServingSpace* prev_space,
                      const std::vector<double>* best_prev,
                      const ServingSpace& cur_space,
                      std::vector<double>& best_out,
                      std::vector<int>& parent_out);
  GoodputPlan backtrack(
      const std::vector<std::shared_ptr<const ServingSpace>>& spaces,
      const std::vector<std::vector<double>>& best,
      const std::vector<std::vector<int>>& parent) const;
  void flush_metrics();

  const ReplicaQueueModel* queue_;
  GoodputOptimizerOptions options_;
  std::string name_runs_, name_states_reused_, name_states_re_expanded_,
      name_tasks_;
  // The training optimizer, owned solely for its memoized
  // expected_migration_cost (MC summaries + edge memo).
  LiveputOptimizer migration_;
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;

  struct SpaceEntry {
    std::shared_ptr<const ServingSpace> space;
    std::list<int>::iterator lru;
  };
  std::unordered_map<int, SpaceEntry> space_cache_;
  std::list<int> space_lru_;

  WarmState warm_;
  // Scratch reused across solves: migration-cost slab
  // [candidate][predecessor], per-predecessor drain row, per-candidate
  // goodput row, and the previous column copy for the convergence
  // cutoff.
  std::vector<double> slab_;
  std::vector<double> drain_row_;
  std::vector<double> goodput_row_;
  std::vector<double> old_column_;

  std::uint64_t states_reused_ = 0;
  std::uint64_t states_re_expanded_ = 0;
  std::uint64_t last_states_reused_ = 0;
  std::uint64_t last_states_re_expanded_ = 0;
  std::uint64_t flushed_states_reused_ = 0;
  std::uint64_t flushed_states_re_expanded_ = 0;
  std::uint64_t flushed_tasks_ = 0;
};

}  // namespace parcae::serve
