#include "serve/serving_scheduler.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "predict/guards.h"

namespace parcae::serve {

const char* serving_mode_name(ServingMode mode) {
  switch (mode) {
    case ServingMode::kProactive:
      return "proactive";
    case ServingMode::kOracle:
      return "oracle";
    case ServingMode::kReactive:
      return "reactive";
    case ServingMode::kStatic:
      return "static";
  }
  return "?";
}

ServingScheduler::MetricNames ServingScheduler::make_names(
    const std::string& prefix) {
  return {prefix + "serve.scheduler.intervals",
          prefix + "serve.scheduler.available",
          prefix + "serve.scheduler.preemptions_seen",
          prefix + "serve.scheduler.allocations_seen",
          prefix + "serve.scheduler.hysteresis_suppressions",
          prefix + "serve.scheduler.config_changes",
          prefix + "serve.scheduler.migrations_planned",
          prefix + "serve.scheduler.migration_stall_s",
          prefix + "serve.scheduler.drain_s",
          prefix + "serve.scheduler.reoptimizations",
          prefix + "serve.scheduler.event_reoptimizations",
          prefix + "serve.scheduler.events_enqueued",
          prefix + "serve.scheduler.events_coalesced",
          prefix + "serve.scheduler.expected_good_requests"};
}

ServingScheduler::ServingScheduler(ModelProfile model,
                                   ServingSchedulerOptions options,
                                   const ArrivalGenerator* arrivals,
                                   const SpotTrace* oracle)
    : model_(std::move(model)),
      options_(options),
      arrivals_(arrivals),
      metrics_(options.metrics != nullptr ? options.metrics : &own_metrics_),
      names_(make_names(options.metric_prefix)),
      throughput_(model_, options.throughput),
      queue_(&throughput_, options.serving),
      planner_(CostEstimator(model_), metrics_, options.metric_prefix),
      optimizer_(&queue_, CostEstimator(model_),
                 GoodputOptimizerOptions{
                     options.interval_s, options.mc_trials, options.seed,
                     metrics_, options.threads, options.metric_prefix,
                     options.optimizer_full_resolve,
                     options.optimizer_verify_incremental}),
      predictor_(make_parcae_predictor(
          static_cast<double>(options.max_instances))) {
  if (options_.mode == ServingMode::kOracle && oracle != nullptr)
    oracle_series_ = oracle->availability_series(options_.interval_s);
  reset();
}

void ServingScheduler::reset() {
  rng_ = Rng(options_.seed ^ 0x5e57eull);
  history_.clear();
  current_ = kIdleConfig;
  planned_next_ = kIdleConfig;
  prev_available_ = 0;
  pending_events_ = 0;
  last_event_s_ = -1.0e18;
  optimizer_.invalidate();
  if (metrics_ == &own_metrics_) own_metrics_.clear();
  static_choice_ = options_.static_config;
  if (options_.mode == ServingMode::kStatic && !static_choice_.valid()) {
    const double rps = arrivals_ != nullptr ? arrivals_->expected_rps(0) : 0.0;
    static_choice_ = queue_.best_serving_config(options_.max_instances, rps);
  }
}

int ServingScheduler::min_depth() const {
  return std::max(1, throughput_.min_pipeline_depth());
}

int ServingScheduler::max_depth() const { return model_.partition_units; }

std::vector<int> ServingScheduler::predict_instances(
    int interval_index) const {
  const int I = options_.lookahead;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(I));
  if (options_.mode == ServingMode::kOracle && !oracle_series_.empty()) {
    for (int h = 1; h <= I; ++h) {
      const std::size_t idx =
          std::min(oracle_series_.size() - 1,
                   static_cast<std::size_t>(interval_index + h));
      out.push_back(oracle_series_[idx]);
    }
    return out;
  }
  const std::size_t h =
      std::min(history_.size(), static_cast<std::size_t>(options_.history));
  const std::span<const double> window(history_.data() + history_.size() - h,
                                       h);
  const std::vector<double> raw = predictor_->forecast(window, I);
  for (double v : raw)
    out.push_back(std::clamp(static_cast<int>(std::lround(v)), 0,
                             options_.max_instances));
  while (static_cast<int>(out.size()) < I)
    out.push_back(out.empty() ? prev_available_ : out.back());
  return out;
}

std::vector<double> ServingScheduler::predict_rps(int interval_index) const {
  // Conditional-mean forecast: the measured deviation from the rate
  // envelope (the observable burst state) relaxes geometrically to the
  // stationary mean at the MMPP chain's mixing rate, so the DP sizes
  // for the burst while it is expected to last and for the mean after.
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(options_.lookahead));
  double deviation = 0.0;
  double decay = 0.0;
  if (arrivals_ != nullptr) {
    const ArrivalOptions& a = arrivals_->options();
    if (a.kind == ArrivalKind::kMmpp &&
        arrivals_->prepared_intervals() > interval_index) {
      const double expected = arrivals_->expected_rps(interval_index);
      if (expected > 0.0)
        deviation = arrivals_->realized_rps(interval_index) / expected - 1.0;
      decay = std::clamp(1.0 - a.p_enter_burst - a.p_exit_burst, 0.0, 1.0);
    }
  }
  for (int h = 1; h <= options_.lookahead; ++h) {
    deviation *= decay;
    out.push_back(arrivals_ != nullptr
                      ? arrivals_->expected_rps(interval_index + h) *
                            (1.0 + deviation)
                      : 0.0);
  }
  return out;
}

ClusterSnapshot ServingScheduler::observe_damage(
    const AvailabilityObservation& observed, int prev_available) {
  // Identical uniform preemption mapping to SchedulerCore (§6.1): the
  // serving replicas are the pipelines; a preempted instance damages
  // one stage of one replica.
  ClusterSnapshot snapshot;
  snapshot.config = current_;
  snapshot.newly_allocated = observed.allocated;
  if (!current_.valid()) {
    snapshot.idle_alive = std::max(0, observed.available - observed.allocated);
    return snapshot;
  }
  snapshot.alive_per_stage.assign(static_cast<std::size_t>(current_.pp),
                                  current_.dp);
  snapshot.idle_alive = std::max(0, prev_available - current_.instances());

  int remaining = observed.preempted;
  const int chunk = std::max(1, options_.preemption_chunk);
  while (remaining > 0) {
    const int kill = std::min(chunk, remaining);
    remaining -= kill;
    const int total = current_.instances() + snapshot.idle_alive;
    if (total <= 0) break;
    const auto pick =
        static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(total)));
    if (pick < current_.instances()) {
      auto stage = static_cast<std::size_t>(pick % current_.pp);
      int left = kill;
      while (left > 0) {
        if (snapshot.alive_per_stage[stage] > 0) {
          --snapshot.alive_per_stage[stage];
          --left;
        } else {
          stage = (stage + 1) % snapshot.alive_per_stage.size();
          bool any = false;
          for (int a : snapshot.alive_per_stage) any = any || a > 0;
          if (!any) break;
        }
      }
    } else {
      snapshot.idle_alive = std::max(0, snapshot.idle_alive - kill);
    }
  }
  return snapshot;
}

ServingDecision ServingScheduler::step(int interval_index,
                                       const AvailabilityObservation& observed,
                                       double interval_s) {
  ServingDecision decision;
  const int available = observed.available;
  const double now = interval_index * interval_s;
  // The measured request rate for this interval (the realized MMPP
  // rate when prepared; the envelope otherwise) — what an autoscaler
  // observes.
  const double rps_now =
      arrivals_ == nullptr ? 0.0
      : arrivals_->prepared_intervals() > interval_index
          ? arrivals_->realized_rps(interval_index)
          : arrivals_->expected_rps(interval_index);
  metrics_->counter(names_.intervals).inc();
  metrics_->gauge(names_.available).set(available);
  if (observed.preempted > 0)
    metrics_->counter(names_.preemptions_seen).add(observed.preempted);
  if (observed.allocated > 0)
    metrics_->counter(names_.allocations_seen).add(observed.allocated);

  // -- 1. Target for this interval.
  ParallelConfig desired;
  switch (options_.mode) {
    case ServingMode::kReactive:
      desired = queue_.best_serving_config(available, rps_now);
      break;
    case ServingMode::kStatic:
      desired = static_choice_;
      break;
    default:
      desired = planned_next_.valid()
                    ? planned_next_
                    : queue_.best_serving_config(available, rps_now);
      break;
  }
  // Serving replicas are not bounded by the training micro-batch
  // split; D is limited only by the instance count.
  const int max_pipelines = std::max(1, options_.max_instances);
  ParallelConfig adapted = adapt_configuration(
      desired, available, min_depth(), max_depth(), max_pipelines);
  // §8 adaptation grows the data-parallel width to every available
  // instance — right for training throughput, wrong for serving:
  // goodput saturates at the offered load, so instances beyond the
  // policy's target are released, not occupied.
  if (adapted.valid() && desired.valid() && adapted.pp == desired.pp &&
      adapted.dp > desired.dp)
    adapted.dp = desired.dp;

  // Goodput hysteresis on voluntary depth changes.
  if (options_.mode != ServingMode::kReactive && current_.valid() &&
      adapted.valid() && adapted.pp != current_.pp &&
      observed.preempted == 0) {
    ParallelConfig keep = adapt_configuration(
        current_, available, min_depth(), max_depth(), max_pipelines);
    if (keep.valid() && keep.pp == current_.pp && keep.dp > current_.dp)
      keep.dp = current_.dp;
    if (keep.valid() && keep.pp == current_.pp &&
        queue_.goodput(adapted, rps_now) <
            queue_.goodput(keep, rps_now) *
                (1.0 + options_.depth_change_hysteresis)) {
      metrics_->counter(names_.hysteresis_suppressions).inc();
      adapted = keep;
    }
  }
  if (adapted != current_) metrics_->counter(names_.config_changes).inc();

  // -- 2. Plan the reconfiguration, charging the request drain.
  const ClusterSnapshot snapshot = observe_damage(observed, prev_available_);
  MigrationPlan plan = planner_.plan(snapshot, adapted);
  double drain = 0.0;
  if (current_.valid() && adapted.valid() && adapted != current_) {
    drain = queue_.drain_cost_s(current_, rps_now);
    plan.cost.drain_s = drain;
  }
  if (plan.kind != MigrationKind::kNone) {
    metrics_->counter(names_.migrations_planned).inc();
    metrics_->histogram(names_.migration_stall_s).observe(plan.stall_s());
    if (drain > 0.0) metrics_->histogram(names_.drain_s).observe(drain);
  }
  decision.config = adapted;
  decision.plan = plan;
  decision.stall_s = plan.stall_s();
  decision.drain_s = drain;

  // -- 3. Plan the next interval.
  history_.push_back(static_cast<double>(available));
  current_ = adapted;
  prev_available_ = available;
  if (options_.mode == ServingMode::kProactive ||
      options_.mode == ServingMode::kOracle) {
    bool reoptimize;
    if (options_.event_driven) {
      if (pending_events_ == 0 &&
          (observed.preempted > 0 || observed.allocated > 0))
        notify_event(now);
      reoptimize = interval_index == 0 || pending_events_ > 0;
    } else {
      reoptimize =
          interval_index % std::max(1, options_.reoptimize_every) == 0;
    }
    if (reoptimize) {
      metrics_->counter(names_.reoptimizations).inc();
      if (options_.event_driven && pending_events_ > 0)
        metrics_->counter(names_.event_reoptimizations).inc();
      decision.forecast = predict_instances(interval_index);
      decision.rps_forecast = predict_rps(interval_index);
      const GoodputPlan plan_next = optimizer_.optimize(
          current_, available, decision.forecast, decision.rps_forecast);
      planned_next_ = plan_next.next();
      metrics_->gauge(names_.expected_good_requests)
          .set(plan_next.expected_good_requests);
      pending_events_ = 0;
    }
  }
  decision.planned_next = planned_next_;
  return decision;
}

void ServingScheduler::notify_event(double now_s) {
  if (!options_.event_driven) return;
  metrics_->counter(names_.events_enqueued).inc();
  if (pending_events_ > 0 &&
      now_s - last_event_s_ <= options_.debounce_ms / 1000.0)
    metrics_->counter(names_.events_coalesced).inc();
  ++pending_events_;
  last_event_s_ = now_s;
}

}  // namespace parcae::serve
