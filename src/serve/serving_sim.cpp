#include "serve/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/fault.h"
#include "core/slo.h"
#include "obs/timeseries.h"

namespace parcae::serve {
namespace {

// Exact percentile over a scratch copy (nearest-rank on the sorted
// order); 0 when empty.
double percentile(std::vector<double>& xs, double q) {
  if (xs.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(xs.size()) - 1.0,
                       q * static_cast<double>(xs.size())));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(rank),
                   xs.end());
  return xs[rank];
}

struct Replica {
  std::deque<double> queue;      // admitted arrival timestamps, ascending
  std::vector<double> incoming;  // this interval's assigned arrivals
  double free_at = 0.0;
};

}  // namespace

ServingSimResult simulate_serving(ServingScheduler& scheduler,
                                  ArrivalGenerator& arrivals,
                                  const SpotTrace& trace, int intervals,
                                  const ServingSimOptions& options) {
  const double T = options.interval_s;
  ServingSimResult result;
  result.policy = serving_mode_name(scheduler.options().mode);
  result.trace = trace.name();

  const std::vector<int> series = trace.availability_series(T);
  const int I = std::min<int>(intervals, static_cast<int>(series.size()));
  if (I <= 0) return result;
  result.duration_s = I * T;
  arrivals.prepare(I);

  obs::MetricsRegistry local_metrics;
  obs::MetricsRegistry* metrics =
      options.metrics != nullptr ? options.metrics : &local_metrics;
  const std::string& prefix = options.metric_prefix;
  auto& c_requests = metrics->counter(prefix + "serve.requests");
  auto& c_served = metrics->counter(prefix + "serve.served");
  auto& c_violations = metrics->counter(prefix + "serve.slo_violations");
  auto& c_dropped = metrics->counter(prefix + "serve.dropped");
  auto& g_goodput = metrics->gauge(prefix + "serve.goodput");
  auto& g_p99 = metrics->gauge(prefix + "serve.p99_latency_ms");
  auto& g_queue = metrics->gauge(prefix + "serve.queue_depth");
  auto& g_replicas = metrics->gauge(prefix + "serve.replicas");
  auto& h_latency = metrics->histogram(prefix + "serve.latency_ms");

  if (options.faults != nullptr) options.faults->set_metrics(metrics);
  if (options.slo != nullptr) {
    options.slo->set_metrics(metrics);
    options.slo->set_timeseries(options.timeseries);
    options.slo->set_alert_metrics(metrics);
    options.slo->set_fault_injector(options.faults);
  }

  std::ofstream jsonl;
  if (!options.requests_jsonl_path.empty())
    jsonl.open(options.requests_jsonl_path);
  char line[128];

  const ReplicaQueueModel& qm = scheduler.queue_model();
  const double slo_s = qm.options().slo_ms / 1000.0;
  const int max_batch = qm.options().max_batch;
  const int queue_cap = qm.options().admission_queue_cap;

  std::vector<Replica> replicas;
  ParallelConfig running = kIdleConfig;
  int prev_avail = 0;
  std::uint64_t rr = 0;  // round-robin admission cursor

  std::vector<double> offsets;          // reused arrival buffer
  std::vector<double> interval_lat_ms;  // reused per-interval latencies
  std::vector<double> all_lat_ms;
  std::vector<double> carry;  // reused reconfiguration flush buffer
  std::vector<double> batch;  // reused batch arrival times

  for (int i = 0; i < I; ++i) {
    const double t0 = i * T;
    const double t_end = t0 + T;
    int avail = std::max(0, series[static_cast<std::size_t>(i)]);
    if (options.faults != nullptr) {
      options.faults->set_interval(i);
      if (options.faults->should_fire("sim.unpredicted_preempt"))
        avail = std::max(0, avail - 1);
    }

    AvailabilityObservation observed;
    observed.available = avail;
    observed.preempted = std::max(0, prev_avail - avail);
    observed.allocated = std::max(0, avail - prev_avail);
    prev_avail = avail;

    const ServingDecision decision = scheduler.step(i, observed, T);
    const ParallelConfig config = decision.config;
    result.advised.push_back(config);
    if (i > 0 && config != running) ++result.config_changes;

    // Reconfiguration: flush the old replicas' queues (by arrival
    // order) and redistribute round-robin into the new replica set;
    // every new replica starts serving after the stall.
    const int D = config.valid() ? config.dp : 0;
    if (config != running || static_cast<int>(replicas.size()) != D) {
      carry.clear();
      for (Replica& r : replicas)
        for (double t : r.queue) carry.push_back(t);
      std::sort(carry.begin(), carry.end());
      replicas.assign(static_cast<std::size_t>(D), Replica{});
      for (std::size_t j = 0; j < carry.size(); ++j) {
        if (D == 0) break;
        replicas[j % static_cast<std::size_t>(D)].queue.push_back(carry[j]);
      }
      if (D == 0 && !carry.empty()) {
        // Suspended with work queued: the flushed requests drop.
        result.requests_dropped += carry.size();
        result.slo_violations += carry.size();
        c_dropped.add(static_cast<double>(carry.size()));
        if (jsonl.is_open())
          for (double t : carry) {
            std::snprintf(line, sizeof line, "{\"t\":%.3f,\"dropped\":1}\n",
                          t);
            jsonl << line;
          }
      }
      running = config;
      rr = 0;
    }
    const double serve_start = t0 + std::max(0.0, decision.stall_s);
    for (Replica& r : replicas) r.free_at = std::max(r.free_at, serve_start);

    // Admission routing: this interval's arrivals go round-robin
    // across replicas (the "serve.admission" fault point force-drops
    // individual requests here). The bounded-queue drop decision is
    // made later, interleaved with service, so the cap binds on the
    // instantaneous backlog — not on a whole interval's worth of
    // arrivals stacked up front.
    arrivals.arrivals(i, offsets);
    std::uint64_t arrived_i = offsets.size();
    std::uint64_t dropped_i = 0;
    result.requests_arrived += arrived_i;
    c_requests.add(static_cast<double>(arrived_i));
    for (Replica& r : replicas) r.incoming.clear();
    for (double off : offsets) {
      const double t = t0 + off;
      bool drop = D == 0;
      if (!drop && options.faults != nullptr &&
          options.faults->should_fire("serve.admission"))
        drop = true;
      if (!drop) {
        replicas[static_cast<std::size_t>(rr % static_cast<std::uint64_t>(D))]
            .incoming.push_back(t);
        ++rr;
      } else {
        ++dropped_i;
        if (jsonl.is_open()) {
          std::snprintf(line, sizeof line, "{\"t\":%.3f,\"dropped\":1}\n", t);
          jsonl << line;
        }
      }
    }

    // Continuous batching per replica until the interval ends,
    // admissions interleaved in timestamp order. A batch starts when
    // the replica is free and its queue's head has arrived; it takes
    // everything admitted by then, up to max_batch. The replica is
    // re-usable after the bottleneck-stage occupancy; the batch
    // completes after the full pipeline latency. An arrival is dropped
    // iff the queue sits at its cap when the request shows up.
    interval_lat_ms.clear();
    std::uint64_t served_i = 0, good_i = 0;
    for (Replica& r : replicas) {
      std::size_t next = 0;
      const auto admit = [&](double t) {
        if (static_cast<int>(r.queue.size()) >= queue_cap) {
          ++dropped_i;
          if (jsonl.is_open()) {
            std::snprintf(line, sizeof line, "{\"t\":%.3f,\"dropped\":1}\n",
                          t);
            jsonl << line;
          }
        } else {
          r.queue.push_back(t);
        }
      };
      while (true) {
        if (r.queue.empty()) {
          if (next >= r.incoming.size()) break;
          admit(r.incoming[next++]);  // queue empty: always below cap
          continue;
        }
        const double start = std::max(r.free_at, r.queue.front());
        // Everything arriving by the batch start is admitted (or
        // dropped at the cap) before the batch drains the queue.
        while (next < r.incoming.size() && r.incoming[next] <= start)
          admit(r.incoming[next++]);
        if (start >= t_end) break;  // carries into the next interval
        batch.clear();
        while (!r.queue.empty() &&
               static_cast<int>(batch.size()) < max_batch &&
               r.queue.front() <= start) {
          batch.push_back(r.queue.front());
          r.queue.pop_front();
        }
        const ServeBatchTime exec = qm.batch_execution(
            running.pp, static_cast<int>(batch.size()));
        const double completion = start + exec.latency_s;
        r.free_at = start + exec.occupancy_s;
        for (double arrival : batch) {
          const double latency = completion - arrival;
          const bool ok = latency <= slo_s;
          ++served_i;
          if (ok) ++good_i;
          const double ms = latency * 1000.0;
          interval_lat_ms.push_back(ms);
          all_lat_ms.push_back(ms);
          h_latency.observe(ms);
          if (jsonl.is_open()) {
            std::snprintf(line, sizeof line,
                          "{\"t\":%.3f,\"latency_ms\":%.3f,\"ok\":%d}\n",
                          completion, ms, ok ? 1 : 0);
            jsonl << line;
          }
        }
      }
      // Arrivals after the last batch start of the interval: the queue
      // only grows from here, so the cap check is final.
      while (next < r.incoming.size()) admit(r.incoming[next++]);
    }
    result.requests_dropped += dropped_i;
    result.slo_violations += dropped_i;
    c_dropped.add(static_cast<double>(dropped_i));
    result.requests_served += served_i;
    result.requests_good += good_i;
    result.slo_violations += served_i - good_i;
    c_served.add(static_cast<double>(served_i));
    c_violations.add(static_cast<double>(served_i - good_i + dropped_i));

    std::uint64_t queued = 0;
    for (const Replica& r : replicas) queued += r.queue.size();
    const double p99_i = percentile(interval_lat_ms, 0.99);
    const double goodput_i = static_cast<double>(good_i) / T;
    g_goodput.set(goodput_i);
    g_p99.set(p99_i);
    g_queue.set(static_cast<double>(queued));
    g_replicas.set(static_cast<double>(D));

    result.spot_cost_usd += config.valid()
                                ? config.instances() * T *
                                      options.pricing.spot_gpu_usd_per_second()
                                : 0.0;

    if (options.timeseries != nullptr) {
      options.timeseries->begin_row();
      options.timeseries->set("time_s", t0);
      options.timeseries->set("available", avail);
      options.timeseries->set("replicas", D);
      options.timeseries->set("pipeline_depth", config.valid() ? config.pp : 0);
      options.timeseries->set("offered_rps", arrivals.realized_rps(i));
      options.timeseries->set("goodput_rps", goodput_i);
      options.timeseries->set("p99_latency_ms", p99_i);
      options.timeseries->set("queue_depth", static_cast<double>(queued));
      options.timeseries->set("dropped", static_cast<double>(dropped_i));
      options.timeseries->set("stall_s", decision.stall_s);
    }
    if (options.slo != nullptr) options.slo->evaluate(i, t_end);

    if (options.record_timeline) {
      ServingIntervalRecord rec;
      rec.time_s = t0;
      rec.available = avail;
      rec.config = config;
      rec.offered_rps = arrivals.realized_rps(i);
      rec.arrived = arrived_i;
      rec.served = served_i;
      rec.good = good_i;
      rec.dropped = dropped_i;
      rec.p99_ms = p99_i;
      rec.queue_depth = queued;
      rec.stall_s = decision.stall_s;
      result.timeline.push_back(rec);
    }
  }

  for (const Replica& r : replicas) result.requests_carried += r.queue.size();

  result.goodput_rps =
      static_cast<double>(result.requests_good) / result.duration_s;
  result.slo_attainment =
      result.requests_arrived > 0
          ? static_cast<double>(result.requests_good) /
                static_cast<double>(result.requests_arrived)
          : 0.0;
  result.p50_ms = percentile(all_lat_ms, 0.50);
  result.p95_ms = percentile(all_lat_ms, 0.95);
  result.p99_ms = percentile(all_lat_ms, 0.99);
  result.cost_per_million_usd =
      result.requests_good > 0
          ? result.spot_cost_usd * 1e6 /
                static_cast<double>(result.requests_good)
          : std::numeric_limits<double>::infinity();
  result.metrics = metrics->snapshot();
  return result;
}

}  // namespace parcae::serve
