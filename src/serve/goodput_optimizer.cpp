#include "serve/goodput_optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace parcae::serve {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

LiveputOptimizerOptions migration_options(const GoodputOptimizerOptions& o) {
  LiveputOptimizerOptions m;
  m.interval_s = o.interval_s;
  m.mc_trials = o.mc_trials;
  m.seed = o.seed;
  m.metrics = o.metrics;
  // The inner optimizer only serves expected_migration_cost here; its
  // own DP never runs, so keep it serial and let this class own the
  // thread pool.
  m.threads = 1;
  m.metric_prefix = o.metric_prefix;
  return m;
}

}  // namespace

GoodputOptimizer::GoodputOptimizer(const ReplicaQueueModel* queue,
                                   CostEstimator estimator,
                                   GoodputOptimizerOptions options)
    : queue_(queue),
      options_(options),
      name_runs_(options.metric_prefix + "serve_dp.runs"),
      name_states_reused_(options.metric_prefix + "serve_dp.states_reused"),
      name_states_re_expanded_(options.metric_prefix +
                               "serve_dp.states_re_expanded"),
      name_tasks_(options.metric_prefix + "threadpool.tasks"),
      migration_(&queue->throughput(), std::move(estimator),
                 migration_options(options)),
      threads_(options.threads == 1 ? 1 : ThreadPool::resolve(options.threads)) {
}

GoodputOptimizer::~GoodputOptimizer() = default;

void GoodputOptimizer::invalidate() {
  warm_ = WarmState{};
  migration_.invalidate();
}

double GoodputOptimizer::edge_cost(ParallelConfig from, int n_from,
                                   ParallelConfig to, int preemptions,
                                   double offered_rps) {
  double cost = migration_.expected_migration_cost(from, n_from, to,
                                                   preemptions);
  if (from.valid() && to.valid() && to != from)
    cost += queue_->drain_cost_s(from, offered_rps);
  return cost;
}

std::shared_ptr<const GoodputOptimizer::ServingSpace>
GoodputOptimizer::resolve_space(int n) {
  const auto it = space_cache_.find(n);
  if (it != space_cache_.end()) {
    space_lru_.splice(space_lru_.begin(), space_lru_, it->second.lru);
    return it->second.space;
  }
  auto space = std::make_shared<ServingSpace>();
  space->configs = queue_->enumerate_serving_configs(n);
  space->configs.push_back(kIdleConfig);
  space_lru_.push_front(n);
  space_cache_.emplace(n, SpaceEntry{space, space_lru_.begin()});
  const std::size_t cap =
      std::max<std::size_t>(1, options_.space_cache_capacity);
  while (space_cache_.size() > cap) {
    space_cache_.erase(space_lru_.back());
    space_lru_.pop_back();
  }
  return space;
}

void GoodputOptimizer::compute_column(
    std::size_t i, ParallelConfig current, int n_now,
    const std::vector<int>& predicted_n,
    const std::vector<double>& predicted_rps, const ServingSpace* prev_space,
    const std::vector<double>* best_prev, const ServingSpace& cur_space,
    std::vector<double>& best_out, std::vector<int>& parent_out) {
  const double T = options_.interval_s;
  const int n_prev = i == 0 ? n_now : predicted_n[i - 1];
  const int k = std::max(0, n_prev - predicted_n[i]);
  const double rps = predicted_rps[i];
  const std::size_t C = cur_space.configs.size();
  best_out.assign(C, kNegInf);
  parent_out.assign(C, -1);

  // Per-candidate goodput at this interval's offered rate: closed-form
  // and RNG-free, safe to fill up front.
  goodput_row_.resize(C);
  for (std::size_t j = 0; j < C; ++j)
    goodput_row_[j] = queue_->goodput(cur_space.configs[j], rps);

  const bool parallel = threads_ > 1 && C > 1;
  if (parallel && !pool_) pool_ = std::make_unique<ThreadPool>(threads_);

  if (i == 0) {
    // One transition per candidate, from the live config. Serial fill
    // keeps the MC sampler's first-touch order fixed regardless of the
    // thread count.
    slab_.resize(C);
    for (std::size_t j = 0; j < C; ++j)
      slab_[j] = migration_.expected_migration_cost(
          current, n_now, cur_space.configs[j], k);
    const double drain =
        current.valid() ? queue_->drain_cost_s(current, rps) : 0.0;
    auto eval = [&](std::size_t j) {
      double cost = slab_[j];
      if (current.valid() && cur_space.configs[j].valid() &&
          cur_space.configs[j] != current)
        cost += drain;
      best_out[j] = goodput_row_[j] * std::max(0.0, T - cost);
    };
    if (parallel)
      pool_->parallel_for(C, eval);
    else
      for (std::size_t j = 0; j < C; ++j) eval(j);
    return;
  }

  // Migration-cost slab [candidate j][predecessor jj], filled
  // predecessor-major so the MC sampler is first-touched in the same
  // order as a serial scan; drain depends only on the predecessor and
  // this interval's rate, one entry per jj.
  const std::size_t P = prev_space->configs.size();
  slab_.resize(C * P);
  drain_row_.resize(P);
  const double* bp = best_prev->data();
  for (std::size_t jj = 0; jj < P; ++jj) {
    if (bp[jj] == kNegInf) continue;
    const ParallelConfig from = prev_space->configs[jj];
    drain_row_[jj] = from.valid() ? queue_->drain_cost_s(from, rps) : 0.0;
    for (std::size_t j = 0; j < C; ++j)
      slab_[j * P + jj] = migration_.expected_migration_cost(
          from, n_prev, cur_space.configs[j], k);
  }

  auto eval = [&](std::size_t j) {
    const ParallelConfig to = cur_space.configs[j];
    const double g = goodput_row_[j];
    const double* cost_row = slab_.data() + j * P;
    double best = kNegInf;
    int arg = -1;
    for (std::size_t jj = 0; jj < P; ++jj) {
      if (bp[jj] == kNegInf) continue;
      double cost = cost_row[jj];
      if (to.valid() && prev_space->configs[jj].valid() &&
          to != prev_space->configs[jj])
        cost += drain_row_[jj];
      const double value = bp[jj] + g * std::max(0.0, T - cost);
      if (value > best) {
        best = value;
        arg = static_cast<int>(jj);
      }
    }
    best_out[j] = best;
    parent_out[j] = arg;
  };
  if (parallel)
    pool_->parallel_for(C, eval);
  else
    for (std::size_t j = 0; j < C; ++j) eval(j);
}

GoodputPlan GoodputOptimizer::backtrack(
    const std::vector<std::shared_ptr<const ServingSpace>>& spaces,
    const std::vector<std::vector<double>>& best,
    const std::vector<std::vector<int>>& parent) const {
  GoodputPlan plan;
  const std::size_t I = spaces.size();
  std::size_t arg = 0;
  for (std::size_t j = 1; j < spaces[I - 1]->configs.size(); ++j)
    if (best[I - 1][j] > best[I - 1][arg]) arg = j;
  plan.expected_good_requests = std::max(0.0, best[I - 1][arg]);
  plan.configs.assign(I, kIdleConfig);
  int cursor = static_cast<int>(arg);
  for (std::size_t i = I; i-- > 0;) {
    plan.configs[i] = spaces[i]->configs[static_cast<std::size_t>(cursor)];
    cursor = i > 0 ? parent[i][static_cast<std::size_t>(cursor)] : -1;
  }
  return plan;
}

GoodputPlan GoodputOptimizer::optimize(
    ParallelConfig current, int n_now,
    const std::vector<int>& predicted_instances,
    const std::vector<double>& predicted_rps) {
  const std::size_t I = predicted_instances.size();
  if (I == 0 || predicted_rps.size() != I) return GoodputPlan{};
  if (options_.metrics) options_.metrics->counter(name_runs_).inc();

  std::vector<std::shared_ptr<const ServingSpace>> spaces(I);
  for (std::size_t i = 0; i < I; ++i)
    spaces[i] = resolve_space(predicted_instances[i]);

  // Warm start, mirroring the training DP: reuse column i iff its
  // direct inputs (N_i, rps_i; for i = 0 also the live config) are
  // unchanged AND the predecessor column's values are unchanged.
  const bool warm_ok =
      !options_.full_resolve && warm_.valid && warm_.predicted_n.size() == I;
  if (!warm_ok) {
    warm_.best.assign(I, {});
    warm_.parent.assign(I, {});
  }

  std::uint64_t reused = 0, re_expanded = 0;
  std::size_t reused_columns = 0;
  bool prev_changed = false;
  for (std::size_t i = 0; i < I; ++i) {
    const bool inputs_same =
        warm_ok && predicted_instances[i] == warm_.predicted_n[i] &&
        predicted_rps[i] == warm_.predicted_rps[i] &&
        (i == 0
             ? (current == warm_.current && n_now == warm_.n_now)
             : predicted_instances[i - 1] == warm_.predicted_n[i - 1]);
    if (inputs_same && !prev_changed) {
      reused += spaces[i]->configs.size();
      ++reused_columns;
      continue;
    }
    const bool comparable = warm_ok &&
                            predicted_instances[i] == warm_.predicted_n[i] &&
                            warm_.best[i].size() == spaces[i]->configs.size();
    if (comparable) old_column_ = warm_.best[i];
    compute_column(i, current, n_now, predicted_instances, predicted_rps,
                   i == 0 ? nullptr : spaces[i - 1].get(),
                   i == 0 ? nullptr : &warm_.best[i - 1], *spaces[i],
                   warm_.best[i], warm_.parent[i]);
    re_expanded += spaces[i]->configs.size();
    prev_changed = !comparable || warm_.best[i] != old_column_;
  }

  warm_.valid = true;
  warm_.current = current;
  warm_.n_now = n_now;
  warm_.predicted_n = predicted_instances;
  warm_.predicted_rps = predicted_rps;
  warm_.spaces = spaces;

  GoodputPlan plan = backtrack(spaces, warm_.best, warm_.parent);

  states_reused_ += reused;
  states_re_expanded_ += re_expanded;
  last_states_reused_ = reused;
  last_states_re_expanded_ = re_expanded;

  if (options_.verify_incremental && reused_columns > 0) {
    // Full re-solve must agree bit-for-bit; the MC summaries it needs
    // are already cached, so it consumes no RNG.
    std::vector<std::vector<double>> vbest(I);
    std::vector<std::vector<int>> vparent(I);
    for (std::size_t i = 0; i < I; ++i)
      compute_column(i, current, n_now, predicted_instances, predicted_rps,
                     i == 0 ? nullptr : spaces[i - 1].get(),
                     i == 0 ? nullptr : &vbest[i - 1], *spaces[i], vbest[i],
                     vparent[i]);
    for (std::size_t i = 0; i < I; ++i) {
      if (vbest[i] != warm_.best[i] || vparent[i] != warm_.parent[i]) {
        std::fprintf(stderr,
                     "goodput incremental DP diverged from full re-solve at "
                     "column %zu/%zu (N=%d)\n",
                     i, I, predicted_instances[i]);
        std::abort();
      }
    }
    const GoodputPlan full = backtrack(spaces, vbest, vparent);
    if (full.configs != plan.configs ||
        full.expected_good_requests != plan.expected_good_requests) {
      std::fprintf(stderr,
                   "goodput incremental DP plan diverged from full re-solve\n");
      std::abort();
    }
  }

  flush_metrics();
  return plan;
}

void GoodputOptimizer::flush_metrics() {
  if (options_.metrics == nullptr) return;
  auto flush_delta = [this](const std::string& name, std::uint64_t now,
                            std::uint64_t& flushed) {
    if (now != flushed)
      options_.metrics->counter(name).add(static_cast<double>(now - flushed));
    flushed = now;
  };
  flush_delta(name_states_reused_, states_reused_, flushed_states_reused_);
  flush_delta(name_states_re_expanded_, states_re_expanded_,
              flushed_states_re_expanded_);
  if (pool_) flush_delta(name_tasks_, pool_->tasks_run(), flushed_tasks_);
}

ParallelConfig GoodputOptimizer::advise(
    ParallelConfig current, int n_now,
    const std::vector<int>& predicted_instances,
    const std::vector<double>& predicted_rps) {
  return optimize(current, n_now, predicted_instances, predicted_rps).next();
}

}  // namespace parcae::serve
