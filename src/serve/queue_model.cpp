#include "serve/queue_model.h"

#include <algorithm>
#include <cmath>

namespace parcae::serve {

ReplicaQueueModel::ReplicaQueueModel(const ThroughputModel* throughput,
                                     ServingModelOptions options)
    : throughput_(throughput), options_(options) {
  if (options_.max_batch < 1) options_.max_batch = 1;
  if (options_.slo_ms < 0.0) options_.slo_ms = 0.0;
  if (options_.batch_overhead_s < 0.0) options_.batch_overhead_s = 0.0;
  if (options_.generation_factor <= 0.0) options_.generation_factor = 1.0;
  if (options_.admission_queue_cap < 1) options_.admission_queue_cap = 1;
  options_.rho_max = std::clamp(options_.rho_max, 0.5, 0.999);
}

bool ReplicaQueueModel::serving_feasible(ParallelConfig config) const {
  if (!config.valid()) return false;
  const auto& model = throughput_->model();
  if (config.pp > model.partition_units) return false;
  const int min_depth = throughput_->min_pipeline_depth();
  if (min_depth < 0 || config.pp < min_depth) return false;
  return true;
}

ServeBatchTime ReplicaQueueModel::batch_time(int pipeline_depth,
                                             double batch) const {
  // occupancy/latency are affine in the batch size (compute and p2p
  // bytes both scale linearly), so interpolate between batch 1 and
  // max_batch instead of forcing an integer batch on the estimator.
  const ServeBatchTime one =
      throughput_->serve_batch_time(pipeline_depth, 1,
                                    options_.generation_factor);
  ServeBatchTime out = one;
  if (options_.max_batch > 1) {
    const ServeBatchTime full = throughput_->serve_batch_time(
        pipeline_depth, options_.max_batch, options_.generation_factor);
    const double f = std::clamp(
        (batch - 1.0) / (options_.max_batch - 1.0), 0.0, 1.0);
    out.occupancy_s = one.occupancy_s + f * (full.occupancy_s - one.occupancy_s);
    out.latency_s = one.latency_s + f * (full.latency_s - one.latency_s);
  }
  out.occupancy_s += options_.batch_overhead_s;
  out.latency_s += options_.batch_overhead_s;
  return out;
}

double ReplicaQueueModel::replica_capacity_rps(int pipeline_depth) const {
  const ServeBatchTime full = batch_time(pipeline_depth, options_.max_batch);
  if (full.occupancy_s <= 0.0) return 0.0;
  return options_.max_batch / full.occupancy_s;
}

ServingEstimate ReplicaQueueModel::estimate(ParallelConfig config,
                                            double offered_rps) const {
  ServingEstimate est;
  if (!serving_feasible(config)) return est;
  est.feasible = true;

  const double mu_cap = replica_capacity_rps(config.pp);
  est.capacity_rps = mu_cap * config.dp;
  if (mu_cap <= 0.0) return est;

  const double lambda_r = std::max(0.0, offered_rps) / config.dp;

  // Continuous batching fills batches as load approaches capacity.
  const double fill = std::min(1.0, lambda_r / mu_cap);
  est.batch_estimate = 1.0 + (options_.max_batch - 1.0) * fill;
  const ServeBatchTime bt = batch_time(config.pp, est.batch_estimate);
  est.exec_latency_s = bt.latency_s;

  // Per-request bottleneck service time at this batch size.
  const double s_tp = bt.occupancy_s / est.batch_estimate;
  est.utilization = lambda_r * s_tp;

  const double cv2 = options_.service_cv * options_.service_cv;
  if (est.utilization >= options_.rho_max) {
    // Saturated: the bounded queue pins the wait at cap * service time
    // and everything beyond capacity drops at admission.
    est.utilization = std::min(est.utilization, 1.5);
    est.wait_mean_s = options_.admission_queue_cap * s_tp;
    est.served_rps = std::min(offered_rps, est.capacity_rps);
  } else {
    // M/G/1 Pollaczek–Khinchine mean wait.
    est.wait_mean_s = est.utilization * s_tp * (1.0 + cv2) /
                      (2.0 * (1.0 - est.utilization));
    est.served_rps = std::max(0.0, offered_rps);
  }
  est.latency_mean_s = est.wait_mean_s + est.exec_latency_s;

  // Shifted-exponential latency tail: execution is (near-)
  // deterministic at a given batch, the queueing delay is
  // approximately exponential with mean wait_mean_s.
  const double slo_s = options_.slo_ms / 1000.0;
  if (slo_s <= bt.latency_s) {
    est.slo_hit_prob = 0.0;
  } else if (est.wait_mean_s <= 1e-12) {
    est.slo_hit_prob = 1.0;
  } else {
    est.slo_hit_prob = 1.0 - std::exp(-(slo_s - bt.latency_s) /
                                      est.wait_mean_s);
  }
  est.goodput_rps = est.served_rps * est.slo_hit_prob;
  return est;
}

double ReplicaQueueModel::goodput(ParallelConfig config,
                                  double offered_rps) const {
  return estimate(config, offered_rps).goodput_rps;
}

double ReplicaQueueModel::drain_cost_s(ParallelConfig config,
                                       double offered_rps) const {
  const ServingEstimate est = estimate(config, offered_rps);
  if (!est.feasible || est.capacity_rps <= 0.0) return 0.0;
  // Little's law: queued work per replica, then the time the slowest
  // replica needs to finish its in-flight batch and flush the queue.
  const double lambda_r = std::max(0.0, offered_rps) / config.dp;
  const double lq = lambda_r * est.wait_mean_s;
  const double s_tp = est.batch_estimate > 0.0
                          ? est.exec_latency_s / est.batch_estimate
                          : 0.0;
  return std::min(options_.drain_cap_s, est.exec_latency_s + lq * s_tp);
}

std::vector<ParallelConfig> ReplicaQueueModel::enumerate_serving_configs(
    int instances) const {
  std::vector<ParallelConfig> out;
  if (instances <= 0) return out;
  const auto& model = throughput_->model();
  const int min_depth = std::max(1, throughput_->min_pipeline_depth());
  const int max_p = std::min(instances, model.partition_units);
  for (int p = min_depth; p <= max_p; ++p) {
    for (int d = 1; d * p <= instances; ++d) {
      const ParallelConfig c{d, p};
      if (serving_feasible(c)) out.push_back(c);
    }
  }
  return out;
}

ParallelConfig ReplicaQueueModel::best_serving_config(
    int instances, double offered_rps) const {
  ParallelConfig best = kIdleConfig;
  double best_goodput = 0.0;
  for (const auto& c : enumerate_serving_configs(instances)) {
    const double g = goodput(c, offered_rps);
    const bool better =
        g > best_goodput + 1e-9 ||
        (g > best_goodput - 1e-9 && best.valid() &&
         (c.instances() < best.instances() ||
          (c.instances() == best.instances() && c.pp < best.pp)));
    if (better && g > 0.0) {
      best_goodput = std::max(best_goodput, g);
      best = c;
    }
  }
  return best;
}

}  // namespace parcae::serve
