// Per-replica batching/queueing model for spot serving (SpotServe
// direction; docs/serving.md).
//
// A serving configuration {D, P} runs D identical replicas, each a
// P-stage forward-only pipeline over the same ThroughputModel the
// training optimizer uses. Requests are load-balanced round-robin
// across replicas and admitted into a bounded per-replica queue;
// the replica executes continuous batches of up to max_batch requests.
//
// Two views of the same system:
//   - the closed-form M/G/1 estimator here (Pollaczek–Khinchine mean
//     wait + a shifted-exponential tail for the SLO-hit probability),
//     cheap enough to sit inside the goodput DP's inner loop, and
//   - the event-level ServingSimulator (serving_sim.h), which plays
//     every request through the same batch timings.
// tests/serve_test.cpp pins their agreement at moderate load.
#pragma once

#include <vector>

#include "parallel/parallel_config.h"
#include "parallel/throughput_model.h"

namespace parcae::serve {

struct ServingModelOptions {
  // Latency SLO: a request counts toward goodput iff its end-to-end
  // latency (queueing + execution) is within this bound.
  double slo_ms = 4000.0;
  // Continuous-batching window per replica.
  int max_batch = 8;
  // Fixed per-batch overhead (tokenization, scheduling, kernel
  // launches), seconds.
  double batch_overhead_s = 0.010;
  // Decode steps per request relative to one forward pass (generative
  // models run the decoder repeatedly; 1.0 = single-shot inference).
  double generation_factor = 1.0;
  // Squared-coefficient-of-variation knob of the service process for
  // the P-K wait term (cv = 1 recovers M/M/1-like waits).
  double service_cv = 1.0;
  // Bounded admission queue, in requests per replica; arrivals beyond
  // it are dropped (and never count toward goodput).
  int admission_queue_cap = 64;
  // Utilization above this is treated as saturated: the queue sits at
  // its cap and excess arrivals drop.
  double rho_max = 0.98;
  // Cap on the in-flight drain charge at reconfiguration, seconds.
  double drain_cap_s = 30.0;
};

// Closed-form steady-state estimate for one {D, P} at an offered rate.
struct ServingEstimate {
  bool feasible = false;
  double capacity_rps = 0.0;      // D * per-replica max service rate
  double utilization = 0.0;       // rho at the per-replica queue
  double batch_estimate = 1.0;    // effective continuous-batch size
  double wait_mean_s = 0.0;       // mean queueing delay (P-K)
  double exec_latency_s = 0.0;    // batch execution latency incl. overhead
  double latency_mean_s = 0.0;    // wait + exec
  double slo_hit_prob = 0.0;      // P(latency <= SLO)
  double served_rps = 0.0;        // admitted & completed rate
  double goodput_rps = 0.0;       // served within the SLO
};

class ReplicaQueueModel {
 public:
  ReplicaQueueModel(const ThroughputModel* throughput,
                    ServingModelOptions options);

  const ServingModelOptions& options() const { return options_; }
  const ThroughputModel& throughput() const { return *throughput_; }

  // A serving replica needs pp within the partitioner's range and deep
  // enough for the training memory model (conservative: inference
  // holds no optimizer state, but we keep one feasibility rule for
  // both workloads).
  bool serving_feasible(ParallelConfig config) const;

  // Steady-state estimate of {D, P} at `offered_rps` offered load.
  ServingEstimate estimate(ParallelConfig config, double offered_rps) const;

  // Shorthand: goodput_rps of estimate(), 0 when infeasible.
  double goodput(ParallelConfig config, double offered_rps) const;

  // Expected time to drain in-flight and queued requests before a
  // reconfiguration can retire the old replicas (charged as migration
  // cost by the goodput optimizer).
  double drain_cost_s(ParallelConfig config, double offered_rps) const;

  // All serving-feasible {D, P} with D*P <= instances.
  std::vector<ParallelConfig> enumerate_serving_configs(int instances) const;

  // Goodput-optimal configuration for `instances` at `offered_rps` —
  // what a reactive (availability-chasing) serving system morphs to.
  // Ties prefer the smaller footprint, then the shallower pipeline.
  ParallelConfig best_serving_config(int instances, double offered_rps) const;

  // Per-replica service rate at full batch (requests/s); 0 infeasible.
  double replica_capacity_rps(int pipeline_depth) const;

  // Event-level timing for an integer batch, overhead included — the
  // ServingSimulator's clock (same numbers the estimator interpolates).
  ServeBatchTime batch_execution(int pipeline_depth, int batch) const {
    return batch_time(pipeline_depth, static_cast<double>(batch));
  }

 private:
  // Affine-in-batch occupancy/latency at a fractional batch size.
  ServeBatchTime batch_time(int pipeline_depth, double batch) const;

  const ThroughputModel* throughput_;
  ServingModelOptions options_;
};

}  // namespace parcae::serve
