// Request arrival generator for the serving workload (SpotServe
// direction; docs/serving.md).
//
// Serving generative models for "millions of users" means the request
// process, not a training dataset, drives the work: a base Poisson
// stream, a 2-state MMPP (Markov-modulated Poisson process) for
// bursty traffic, a diurnal rate envelope, and a trace-replay mode
// that follows a measured per-interval rate series. A simulated day at
// production rates is millions of requests, so generation is
// allocation-light (callers pass reusable buffers) and, critically,
// deterministic with the same discipline as the MC preemption sampler
// (src/migration/preemption.*): every per-interval draw comes from an
// Rng forked from (seed, interval), i.e. a pure function of the seed
// and the interval index. Any thread may generate any interval in any
// order and the counts and arrival offsets are bit-identical to a
// serial sweep — the property tests/serve_test.cpp pins across
// threads 1/4/8.
//
// The only serial state is the MMPP modulation chain (one draw per
// interval), precomputed once by prepare(); after that every accessor
// is const and thread-safe.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace parcae::serve {

enum class ArrivalKind { kPoisson, kMmpp, kReplay };

const char* arrival_kind_name(ArrivalKind kind);

struct ArrivalOptions {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double interval_s = 60.0;
  std::uint64_t seed = 2024;
  // Base arrival rate (requests per second) before modulation.
  double base_rps = 40.0;
  // MMPP burst state: rate multiplier while bursting, and the
  // per-interval transition probabilities of the 2-state chain.
  double burst_multiplier = 3.0;
  double p_enter_burst = 0.08;
  double p_exit_burst = 0.35;
  // Diurnal envelope: rate *= max(0, 1 + amplitude * sin(2*pi * (t -
  // phase) / period)). amplitude = 0 disables it.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 24.0 * 3600.0;
  double diurnal_phase_s = 0.0;
  // kReplay: measured per-interval request rates (rps), indexed by
  // interval; intervals beyond the vector repeat the last entry.
  std::vector<double> replay_rps;
};

class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(ArrivalOptions options);

  // Precomputes the MMPP modulation chain for intervals [0, n). Serial
  // and cheap (one draw per interval); extends on repeated calls.
  // Poisson/replay modes need no preparation but accept it.
  void prepare(int intervals);

  // Mean rate (rps) a forecaster/operator would assume for the
  // interval: base * envelope, with the MMPP chain at its stationary
  // mean — the instantaneous burst state is not observable in advance.
  double expected_rps(int interval) const;

  // Realized modulated rate for the interval (burst state applied).
  // Requires prepare(>interval) in MMPP mode.
  double realized_rps(int interval) const;

  // Number of requests arriving in the interval: a Poisson draw from
  // the interval's own forked stream. Pure in (seed, interval).
  int count(int interval) const;

  // Arrival offsets within the interval, sorted ascending in
  // [0, interval_s), reusing `out`'s capacity. The same forked stream
  // as count(): the first draw reproduces count(), the offsets follow,
  // so count(i) == arrivals(i, ...).size() always.
  void arrivals(int interval, std::vector<double>& out) const;

  const ArrivalOptions& options() const { return options_; }
  int prepared_intervals() const { return static_cast<int>(burst_.size()); }

  // Sum of count(i) for i in [0, n) — total offered load.
  std::uint64_t total_requests(int intervals) const;

 private:
  double envelope(int interval) const;

  ArrivalOptions options_;
  // MMPP chain: burst_[i] = 1 when interval i is in the burst state.
  std::vector<std::uint8_t> burst_;
  double stationary_burst_ = 0.0;  // long-run fraction of burst intervals
};

}  // namespace parcae::serve
