// ServingSimulator: replays a spot-availability trace against a
// ServingScheduler while playing every request through event-level
// continuous batching (mirrors src/runtime/cluster_sim.* for the
// serving workload; docs/serving.md).
//
// Each scheduling interval:
//   1. the trace (plus the "sim.unpredicted_preempt" fault point)
//      fixes the available instances; the scheduler's decision fixes
//      the serving configuration and its reconfiguration stall,
//   2. the arrival generator's requests for the interval are admitted
//      round-robin into per-replica bounded queues (the
//      "serve.admission" fault point force-drops individual requests),
//   3. each replica executes continuous batches: a batch starts when
//      the replica is free and requests have arrived, takes the
//      ReplicaQueueModel's event-level execution time, and occupies
//      the replica for the bottleneck-stage time so consecutive
//      batches pipeline,
//   4. per-request latencies are scored against the SLO; queues carry
//      across intervals; a reconfiguration flushes the old replicas'
//      queues into the new ones (order-preserving) after the stall.
//
// Determinism: everything downstream of (trace, seeds) is exact —
// request accounting and the advised-config sequence are bit-identical
// across reruns and scheduler thread counts, including under injected
// faults (tests/serve_test.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "parallel/parallel_config.h"
#include "runtime/pricing.h"
#include "serve/arrival.h"
#include "serve/serving_scheduler.h"
#include "trace/spot_trace.h"

namespace parcae {
class FaultInjector;
class SloEngine;
namespace obs {
class TimeSeriesRecorder;
}  // namespace obs
}  // namespace parcae

namespace parcae::serve {

struct ServingIntervalRecord {
  double time_s = 0.0;
  int available = 0;
  ParallelConfig config;
  double offered_rps = 0.0;
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t good = 0;
  std::uint64_t dropped = 0;
  double p99_ms = 0.0;       // completed-this-interval tail latency
  std::uint64_t queue_depth = 0;  // queued at interval end
  double stall_s = 0.0;
};

struct ServingSimResult {
  std::string policy;
  std::string trace;
  double duration_s = 0.0;
  std::uint64_t requests_arrived = 0;
  std::uint64_t requests_served = 0;   // completed (within SLO or not)
  std::uint64_t requests_good = 0;     // completed within the SLO
  std::uint64_t requests_dropped = 0;  // admission-refused or injected
  std::uint64_t requests_carried = 0;  // still queued at the end
  std::uint64_t slo_violations = 0;    // completed-late + dropped
  double goodput_rps = 0.0;            // good / duration
  double slo_attainment = 0.0;         // good / arrived
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;  // over all completed
  double spot_cost_usd = 0.0;          // instances held x spot price
  // USD per 1M within-SLO requests; infinity when none.
  double cost_per_million_usd = 0.0;
  int config_changes = 0;
  // Advised configuration per interval — the determinism pin.
  std::vector<ParallelConfig> advised;
  std::vector<ServingIntervalRecord> timeline;
  obs::MetricsSnapshot metrics;
};

struct ServingSimOptions {
  double interval_s = 60.0;
  Pricing pricing;
  bool record_timeline = true;
  // Observability sinks, all non-owning and optional — wired exactly
  // like SimulationOptions (cluster_sim.h): the SLO engine is pointed
  // at the registry/series/injector and evaluated once per interval.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TimeSeriesRecorder* timeseries = nullptr;
  FaultInjector* faults = nullptr;
  SloEngine* slo = nullptr;
  std::string metric_prefix;
  // Per-request JSONL sink (latency audit; trace_tool requests reads
  // it). One line per completion {"t":..,"latency_ms":..,"ok":0|1} or
  // drop {"t":..,"dropped":1}. Empty = off.
  std::string requests_jsonl_path;
};

// Runs `scheduler` over `trace` for `intervals` scheduling intervals
// (clamped to the trace length), generating load from `arrivals`.
ServingSimResult simulate_serving(ServingScheduler& scheduler,
                                  ArrivalGenerator& arrivals,
                                  const SpotTrace& trace, int intervals,
                                  const ServingSimOptions& options);

}  // namespace parcae::serve
