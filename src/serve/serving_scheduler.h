// ServingScheduler: the Algorithm-1 decision loop with the serving
// objective (SpotServe direction; docs/serving.md).
//
// Each interval it
//   1. adapts the previously planned serving configuration to the
//      actual availability (§8 adaptation, unchanged), holding the
//      pipeline depth through noisy forecasts unless the goodput gain
//      clearly beats the hysteresis margin,
//   2. plans the live replica reconfiguration with the training
//      MigrationPlanner (§6) and adds the in-flight request drain to
//      the stall,
//   3. forecasts availability (§5) and the request rate (from the
//      arrival generator's envelope) and runs the goodput DP to pick
//      the next interval's configuration.
//
// Four modes span the bench baselines:
//   kProactive — goodput DP over guarded-ARIMA availability forecasts
//   kOracle    — goodput DP over the true future availability
//   kReactive  — chases availability: goodput-best config for what is
//                available right now, no look-ahead (what a SpotServe-
//                less autoscaler does)
//   kStatic    — fixed provisioning chosen once, only damage-adapted
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler_core.h"
#include "migration/planner.h"
#include "model/model_profile.h"
#include "obs/metrics.h"
#include "predict/predictor.h"
#include "serve/arrival.h"
#include "serve/goodput_optimizer.h"
#include "serve/queue_model.h"
#include "trace/spot_trace.h"

namespace parcae::serve {

enum class ServingMode { kProactive, kOracle, kReactive, kStatic };

const char* serving_mode_name(ServingMode mode);

struct ServingSchedulerOptions {
  ServingMode mode = ServingMode::kProactive;
  int lookahead = 12;
  int history = 12;
  int reoptimize_every = 1;
  // Event-driven re-optimization (mode=event in serve_sim_cli): same
  // semantics as SchedulerCoreOptions — re-solve on pending events
  // (preemptions/allocations) instead of every tick, with debounce
  // coalescing; interval 0 always solves.
  bool event_driven = false;
  double debounce_ms = 250.0;
  bool optimizer_full_resolve = false;
  bool optimizer_verify_incremental = false;
  int mc_trials = 256;
  std::uint64_t seed = 123;
  double interval_s = 60.0;
  int threads = 1;
  int preemption_chunk = 1;
  // Voluntary depth changes must improve estimated goodput by at
  // least this fraction (same thrash guard as training).
  double depth_change_hysteresis = 0.15;
  int max_instances = 32;
  // kStatic: the fixed provisioning. Invalid = choose the goodput-best
  // config for max_instances at the interval-0 expected rate once at
  // reset.
  ParallelConfig static_config = kIdleConfig;
  ServingModelOptions serving;
  ThroughputModelOptions throughput;
  obs::MetricsRegistry* metrics = nullptr;
  std::string metric_prefix;
};

struct ServingDecision {
  ParallelConfig config;     // serving configuration for this interval
  MigrationPlan plan;        // reconfiguration realizing it
  double stall_s = 0.0;      // migration + drain stall
  double drain_s = 0.0;      // the drain component of stall_s
  ParallelConfig planned_next;
  std::vector<int> forecast;       // availability forecast (when re-solved)
  std::vector<double> rps_forecast;  // request-rate forecast (aligned)
};

class ServingScheduler {
 public:
  // `arrivals` supplies the rate envelope forecasts and must outlive
  // the scheduler; `oracle` is required for kOracle.
  ServingScheduler(ModelProfile model, ServingSchedulerOptions options,
                   const ArrivalGenerator* arrivals,
                   const SpotTrace* oracle = nullptr);

  void reset();

  ServingDecision step(int interval_index,
                       const AvailabilityObservation& observed,
                       double interval_s);

  // Event-driven mode: enqueue a re-optimization event (same contract
  // as SchedulerCore::notify_event).
  void notify_event(double now_s);
  int pending_events() const { return pending_events_; }

  const ServingSchedulerOptions& options() const { return options_; }
  const ModelProfile& model() const { return model_; }
  const ReplicaQueueModel& queue_model() const { return queue_; }
  GoodputOptimizer& optimizer() { return optimizer_; }
  ParallelConfig current() const { return current_; }
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  std::vector<int> predict_instances(int interval_index) const;
  std::vector<double> predict_rps(int interval_index) const;
  ClusterSnapshot observe_damage(const AvailabilityObservation& observed,
                                 int prev_available);
  int min_depth() const;
  int max_depth() const;

  struct MetricNames {
    std::string intervals, available, preemptions_seen, allocations_seen,
        hysteresis_suppressions, config_changes, migrations_planned,
        migration_stall_s, drain_s, reoptimizations, event_reoptimizations,
        events_enqueued, events_coalesced, expected_good_requests;
  };
  static MetricNames make_names(const std::string& prefix);

  ModelProfile model_;
  ServingSchedulerOptions options_;
  const ArrivalGenerator* arrivals_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;
  MetricNames names_;
  ThroughputModel throughput_;
  ReplicaQueueModel queue_;
  MigrationPlanner planner_;
  GoodputOptimizer optimizer_;
  std::unique_ptr<AvailabilityPredictor> predictor_;
  // Oracle availability series (empty unless kOracle with a trace).
  std::vector<int> oracle_series_;

  Rng rng_{0};
  std::vector<double> history_;
  ParallelConfig current_ = kIdleConfig;
  ParallelConfig planned_next_ = kIdleConfig;
  ParallelConfig static_choice_ = kIdleConfig;
  int prev_available_ = 0;
  int pending_events_ = 0;
  double last_event_s_ = -1.0e18;
};

}  // namespace parcae::serve
