// Analytical THROUGHPUT(D, P) model for hybrid data+pipeline parallel
// training (§2.1, §3).
//
// The model follows the standard 1F1B pipeline analysis the paper's
// cost model relies on:
//   - the global mini-batch B is split across D pipelines into
//     micro-batches of size b: m = ceil(B / (D*b)) per pipeline,
//   - per-microbatch per-stage compute time derives from FLOPs and a
//     calibrated sustained rate, plus an activation-recompute
//     surcharge,
//   - boundary activations cross stages at alpha-beta p2p cost,
//   - gradient synchronization is a ring all-reduce of the stage's
//     parameter shard across the D replicas, partially overlapped with
//     backward computation,
//   - configurations that violate the memory model have throughput 0
//     (§7.2: "for unfeasible cases ... THROUGHPUT is set to be zero").
#pragma once

#include <vector>

#include "model/memory_model.h"
#include "model/model_profile.h"
#include "net/network_model.h"
#include "parallel/parallel_config.h"

namespace parcae {

struct ThroughputModelOptions {
  NetworkModel network;
  MemorySpec memory = MemorySpec::parcae();
  // Fraction of the gradient all-reduce hidden under backward compute.
  double allreduce_overlap = 0.5;
  // Extra compute per stage for redundancy-based systems (Bamboo runs
  // its successor's forward+backward in pipeline bubbles; the paper
  // finds the overhead cannot be fully hidden for large models).
  double redundant_compute_fraction = 0.0;
  // GPUs per instance (1 for p3.2xlarge; 4 for the Fig-10 study where
  // intra-instance stage links ride NVLink).
  int gpus_per_instance = 1;
};

// Forward-only execution of one request batch through a P-stage
// serving replica (src/serve/): with stages pipelined, consecutive
// batches overlap, so the replica's sustainable rate is governed by the
// bottleneck-stage busy time (occupancy) while a single request
// experiences the full end-to-end latency.
struct ServeBatchTime {
  double occupancy_s = 0.0;  // bottleneck-stage busy time per batch
  double latency_s = 0.0;    // end-to-end execution time of one batch
};

class ThroughputModel {
 public:
  ThroughputModel(ModelProfile model, ThroughputModelOptions options = {});

  // Seconds per mini-batch iteration; +inf if infeasible.
  double iteration_time(ParallelConfig config) const;

  // Samples per second; 0 if infeasible.
  double throughput(ParallelConfig config) const;

  // Units (tokens / images) per second; 0 if infeasible.
  double unit_throughput(ParallelConfig config) const;

  // Memory- and batch-feasibility of (D, P).
  bool feasible(ParallelConfig config) const;

  // All feasible configurations with D*P <= instances — the Varuna-like
  // O(N log N) search space the liveput optimizer explores (§7.2).
  std::vector<ParallelConfig> enumerate_configs(int instances) const;

  // The throughput-optimal configuration for `instances` (what a
  // reactive, throughput-optimized system like Varuna morphs to).
  // Returns kIdleConfig if nothing is feasible.
  ParallelConfig best_config(int instances) const;

  const ModelProfile& model() const { return model_; }
  const ThroughputModelOptions& options() const { return options_; }
  const MemoryModel& memory() const { return memory_; }

  // Smallest feasible pipeline depth under this system's memory spec.
  int min_pipeline_depth() const { return min_depth_; }

  // Inference timing for a batch of `batch` requests on one P-stage
  // serving replica: forward pass only (no backward, no recompute, no
  // gradient all-reduce), scaled by `generation_factor` for workloads
  // that run multiple decode steps per request. Zeroes if batch or
  // depth is non-positive; feasibility (depth vs. partition units and
  // memory) is the caller's concern.
  ServeBatchTime serve_batch_time(int pipeline_depth, int batch,
                                  double generation_factor = 1.0) const;

 private:
  ModelProfile model_;
  ThroughputModelOptions options_;
  MemoryModel memory_;
  int min_depth_;
};

}  // namespace parcae
