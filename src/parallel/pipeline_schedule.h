// Event-level pipeline schedule simulation (1F1B and GPipe).
//
// The analytic THROUGHPUT(D, P) model uses the closed form
// (m + P - 1) * (t_stage + t_p2p); this simulator builds the actual
// per-stage task timeline from dependencies, so tests can validate the
// closed form and benches can report bubble fractions per
// configuration (the pipeline-depth trade-off behind Figure 3).
#pragma once

#include <string>
#include <vector>

namespace parcae {

struct PipelineTask {
  int stage = 0;
  int microbatch = 0;
  bool forward = true;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct ScheduleParams {
  int stages = 1;
  int microbatches = 1;
  double fwd_time_s = 1.0;  // per stage, per microbatch
  double bwd_time_s = 2.0;
  double p2p_time_s = 0.0;  // boundary transfer, each direction
};

struct ScheduleResult {
  std::vector<PipelineTask> tasks;   // in per-stage execution order
  double makespan_s = 0.0;
  // Fraction of stage-time idle inside the schedule: 1 - busy/(P*T).
  double bubble_fraction = 0.0;
  std::vector<double> stage_busy_s;  // per stage
  // Peak number of in-flight microbatches on stage 0 (activation
  // memory pressure — where 1F1B beats GPipe).
  int peak_in_flight = 0;
};

// 1F1B: each stage runs min(P - s, M) warm-up forwards, then
// alternates backward/forward, then drains the remaining backwards.
ScheduleResult simulate_1f1b(const ScheduleParams& params);

// GPipe: all forwards, then all backwards.
ScheduleResult simulate_gpipe(const ScheduleParams& params);

// ASCII Gantt chart of a schedule: one row per stage, time bucketed
// into `columns` characters; digits mark forward micro-batches,
// letters mark backwards, '.' is bubble.
std::string render_schedule(const ScheduleResult& result, int stages,
                            int columns = 80);

}  // namespace parcae
