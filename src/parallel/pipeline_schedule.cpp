#include "parallel/pipeline_schedule.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>

namespace parcae {
namespace {

struct Op {
  int microbatch;
  bool forward;
};

// Builds each stage's op order, then resolves start times by repeated
// relaxation over the dependency DAG (stage-sequential + cross-stage).
ScheduleResult run_schedule(
    const ScheduleParams& params,
    const std::vector<std::vector<Op>>& per_stage_order) {
  const int P = params.stages;
  const int M = params.microbatches;
  assert(P >= 1 && M >= 1);

  constexpr double kUnset = -1.0;
  // end times of fwd/bwd per (stage, microbatch).
  std::vector<std::vector<double>> fwd_end(
      static_cast<std::size_t>(P),
      std::vector<double>(static_cast<std::size_t>(M), kUnset));
  std::vector<std::vector<double>> bwd_end = fwd_end;
  std::vector<std::vector<double>> starts(static_cast<std::size_t>(P));
  for (int s = 0; s < P; ++s)
    starts[static_cast<std::size_t>(s)].assign(
        per_stage_order[static_cast<std::size_t>(s)].size(), kUnset);

  std::vector<std::size_t> cursor(static_cast<std::size_t>(P), 0);
  std::vector<double> stage_free(static_cast<std::size_t>(P), 0.0);

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int s = 0; s < P; ++s) {
      auto& cur = cursor[static_cast<std::size_t>(s)];
      const auto& order = per_stage_order[static_cast<std::size_t>(s)];
      while (cur < order.size()) {
        const Op op = order[cur];
        double ready = 0.0;
        if (op.forward) {
          if (s > 0) {
            const double upstream =
                fwd_end[static_cast<std::size_t>(s - 1)]
                       [static_cast<std::size_t>(op.microbatch)];
            if (upstream == kUnset) break;  // dependency not resolved yet
            ready = upstream + params.p2p_time_s;
          }
        } else {
          if (s + 1 < P) {
            const double downstream =
                bwd_end[static_cast<std::size_t>(s + 1)]
                       [static_cast<std::size_t>(op.microbatch)];
            if (downstream == kUnset) break;
            ready = downstream + params.p2p_time_s;
          } else {
            const double own_fwd =
                fwd_end[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(op.microbatch)];
            if (own_fwd == kUnset) break;
            ready = own_fwd;
          }
        }
        const double start =
            std::max(ready, stage_free[static_cast<std::size_t>(s)]);
        const double duration =
            op.forward ? params.fwd_time_s : params.bwd_time_s;
        const double end = start + duration;
        starts[static_cast<std::size_t>(s)][cur] = start;
        stage_free[static_cast<std::size_t>(s)] = end;
        if (op.forward)
          fwd_end[static_cast<std::size_t>(s)]
                 [static_cast<std::size_t>(op.microbatch)] = end;
        else
          bwd_end[static_cast<std::size_t>(s)]
                 [static_cast<std::size_t>(op.microbatch)] = end;
        ++cur;
        progressed = true;
      }
    }
  }

  ScheduleResult result;
  result.stage_busy_s.assign(static_cast<std::size_t>(P), 0.0);
  for (int s = 0; s < P; ++s) {
    const auto& order = per_stage_order[static_cast<std::size_t>(s)];
    assert(cursor[static_cast<std::size_t>(s)] == order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      PipelineTask task;
      task.stage = s;
      task.microbatch = order[i].microbatch;
      task.forward = order[i].forward;
      task.start_s = starts[static_cast<std::size_t>(s)][i];
      task.end_s = task.start_s + (order[i].forward ? params.fwd_time_s
                                                    : params.bwd_time_s);
      result.makespan_s = std::max(result.makespan_s, task.end_s);
      result.stage_busy_s[static_cast<std::size_t>(s)] +=
          task.end_s - task.start_s;
      result.tasks.push_back(task);
    }
  }
  double busy = 0.0;
  for (double b : result.stage_busy_s) busy += b;
  result.bubble_fraction =
      result.makespan_s > 0.0
          ? 1.0 - busy / (static_cast<double>(P) * result.makespan_s)
          : 0.0;

  // Peak in-flight microbatches on stage 0: forwards done minus
  // backwards done, scanned over stage-0 task order.
  int in_flight = 0;
  for (const auto& task : result.tasks) {
    if (task.stage != 0) continue;
    in_flight += task.forward ? 1 : -1;
    result.peak_in_flight = std::max(result.peak_in_flight, in_flight);
  }
  return result;
}

}  // namespace

ScheduleResult simulate_1f1b(const ScheduleParams& params) {
  const int P = params.stages;
  const int M = params.microbatches;
  std::vector<std::vector<Op>> order(static_cast<std::size_t>(P));
  for (int s = 0; s < P; ++s) {
    auto& ops = order[static_cast<std::size_t>(s)];
    const int warmup = std::min(P - s, M);
    int next_fwd = 0;
    int next_bwd = 0;
    for (; next_fwd < warmup; ++next_fwd) ops.push_back({next_fwd, true});
    while (next_bwd < M) {
      ops.push_back({next_bwd++, false});
      if (next_fwd < M) ops.push_back({next_fwd++, true});
    }
  }
  return run_schedule(params, order);
}

std::string render_schedule(const ScheduleResult& result, int stages,
                            int columns) {
  if (result.makespan_s <= 0.0 || stages <= 0 || columns <= 0) return "";
  std::vector<std::string> rows(static_cast<std::size_t>(stages),
                                std::string(static_cast<std::size_t>(columns),
                                            '.'));
  const double scale = columns / result.makespan_s;
  for (const auto& task : result.tasks) {
    const int from = std::clamp(
        static_cast<int>(task.start_s * scale), 0, columns - 1);
    const int to = std::clamp(static_cast<int>(task.end_s * scale) - 1, from,
                              columns - 1);
    const char mark =
        task.forward
            ? static_cast<char>('0' + task.microbatch % 10)
            : static_cast<char>('a' + task.microbatch % 26);
    for (int c = from; c <= to; ++c)
      rows[static_cast<std::size_t>(task.stage)][static_cast<std::size_t>(c)] =
          mark;
  }
  std::string out;
  for (int s = 0; s < stages; ++s) {
    out += "stage " + std::to_string(s) + " |";
    out += rows[static_cast<std::size_t>(s)];
    out += "|\n";
  }
  return out;
}

ScheduleResult simulate_gpipe(const ScheduleParams& params) {
  const int P = params.stages;
  const int M = params.microbatches;
  std::vector<std::vector<Op>> order(static_cast<std::size_t>(P));
  for (int s = 0; s < P; ++s) {
    auto& ops = order[static_cast<std::size_t>(s)];
    for (int m = 0; m < M; ++m) ops.push_back({m, true});
    for (int m = M; m-- > 0;) ops.push_back({m, false});
  }
  return run_schedule(params, order);
}

}  // namespace parcae
