#include "parallel/throughput_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace parcae {

ThroughputModel::ThroughputModel(ModelProfile model,
                                 ThroughputModelOptions options)
    : model_(std::move(model)),
      options_(options),
      memory_(model_, options.memory),
      min_depth_(memory_.min_feasible_depth()) {}

bool ThroughputModel::feasible(ParallelConfig config) const {
  if (!config.valid()) return false;
  if (config.pp > model_.partition_units) return false;
  if (min_depth_ < 0 || config.pp < min_depth_) return false;
  // Each pipeline must process at least one micro-batch per iteration.
  if (config.dp * model_.micro_batch > model_.mini_batch) return false;
  return true;
}

double ThroughputModel::iteration_time(ParallelConfig config) const {
  if (!feasible(config)) return std::numeric_limits<double>::infinity();

  const double micro = model_.micro_batch;
  const double m = std::ceil(static_cast<double>(model_.mini_batch) /
                             (config.dp * micro));
  // Per-stage, per-microbatch compute (fwd+bwd [+recompute fwd]).
  double t_stage = model_.train_flops_per_sample() * micro /
                   (static_cast<double>(config.pp) * model_.effective_flops);
  t_stage *= 1.0 + options_.redundant_compute_fraction;

  // Boundary activations: forward send + backward gradient return.
  // Stages within one multi-GPU instance communicate over NVLink.
  double t_p2p = 0.0;
  if (config.pp > 1) {
    const bool same_node = options_.gpus_per_instance >= config.pp;
    t_p2p = 2.0 * options_.network.p2p_time(
                      model_.boundary_activation_bytes * micro, same_node);
  }

  const double pipeline_time =
      (m + static_cast<double>(config.pp) - 1.0) * (t_stage + t_p2p);

  // Gradient all-reduce of this stage's fp16 gradient shard across the
  // D replicas, partially overlapped with backward.
  const double shard_bytes = model_.weight_bytes() / config.pp;
  const double t_allreduce =
      options_.network.ring_allreduce_time(shard_bytes, config.dp) *
      (1.0 - options_.allreduce_overlap);

  return pipeline_time + t_allreduce;
}

double ThroughputModel::throughput(ParallelConfig config) const {
  const double t = iteration_time(config);
  if (!std::isfinite(t) || t <= 0.0) return 0.0;
  return static_cast<double>(model_.mini_batch) / t;
}

double ThroughputModel::unit_throughput(ParallelConfig config) const {
  return throughput(config) * model_.units_per_sample();
}

std::vector<ParallelConfig> ThroughputModel::enumerate_configs(
    int instances) const {
  std::vector<ParallelConfig> out;
  if (instances <= 0 || min_depth_ < 0) return out;
  const int max_p = std::min(instances, model_.partition_units);
  for (int p = min_depth_; p <= max_p; ++p) {
    const int max_d = std::min(instances / p,
                               model_.mini_batch / model_.micro_batch);
    for (int d = 1; d <= max_d; ++d) {
      const ParallelConfig c{d, p};
      if (feasible(c)) out.push_back(c);
    }
  }
  return out;
}

ServeBatchTime ThroughputModel::serve_batch_time(int pipeline_depth, int batch,
                                                 double generation_factor) const {
  ServeBatchTime out;
  if (pipeline_depth < 1 || batch < 1 || generation_factor <= 0.0) return out;
  const double total_compute = model_.fwd_flops_per_sample *
                               generation_factor * batch /
                               model_.effective_flops;
  double t_p2p = 0.0;
  if (pipeline_depth > 1) {
    const bool same_node = options_.gpus_per_instance >= pipeline_depth;
    t_p2p = options_.network.p2p_time(model_.boundary_activation_bytes * batch,
                                      same_node);
  }
  out.occupancy_s = total_compute / pipeline_depth + t_p2p;
  out.latency_s = total_compute + (pipeline_depth - 1.0) * t_p2p;
  return out;
}

ParallelConfig ThroughputModel::best_config(int instances) const {
  ParallelConfig best = kIdleConfig;
  double best_tp = 0.0;
  for (const auto& c : enumerate_configs(instances)) {
    const double tp = throughput(c);
    if (tp > best_tp) {
      best_tp = tp;
      best = c;
    }
  }
  return best;
}

}  // namespace parcae
