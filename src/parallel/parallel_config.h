// Parallel configuration (D, P): D data-parallel pipelines, each with
// P pipeline stages (Definition 1 of the paper).
#pragma once

#include <compare>
#include <string>

namespace parcae {

struct ParallelConfig {
  int dp = 0;  // D: number of data-parallel pipelines
  int pp = 0;  // P: pipeline depth (stages per pipeline)

  int instances() const { return dp * pp; }
  bool valid() const { return dp >= 1 && pp >= 1; }

  friend auto operator<=>(const ParallelConfig&,
                          const ParallelConfig&) = default;

  std::string to_string() const {
    return std::to_string(dp) + "x" + std::to_string(pp);
  }
};

// The "no training possible" configuration.
inline constexpr ParallelConfig kIdleConfig{0, 0};

}  // namespace parcae
