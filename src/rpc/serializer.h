// Length-prefixed binary wire format for the RPC layer.
//
// A ByteWriter appends little-endian PODs, length-prefixed strings and
// raw-IEEE float tensors to a flat byte buffer; a ByteReader walks the
// same layout with *bounded* reads — every access validates that the
// bytes exist and every length prefix is checked against kMaxLength
// before any allocation, so a truncated or hostile frame is rejected
// with SerializeError instead of over-reading or over-allocating.
// Floats cross the wire as their raw 4-byte IEEE-754 pattern, so a
// tensor round-trip is bit-exact (including NaN payloads) — the
// property the inproc-vs-tcp driver-equivalence test leans on.
//
// Layout conventions (see docs/rpc.md for the per-message tables):
//   u8/u32/u64/i64/f32/f64   fixed-width little-endian
//   str / bytes              u32 length + that many bytes
//   floats                   u32 element count + 4*count raw bytes
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace parcae::rpc {

// Thrown by ByteReader on truncation, oversized length prefixes, or
// trailing garbage (via expect_done()).
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what)
      : std::runtime_error("rpc serialize: " + what) {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  void str(std::string_view s);  // u32 length + bytes
  void bytes(std::string_view s) { str(s); }
  void floats(const std::vector<float>& v);  // u32 count + raw IEEE

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  // Upper bound on any single length prefix (strings, byte blobs, and
  // float-tensor byte size): 64 MiB, far above anything the runtime
  // sends but small enough that a corrupt prefix cannot drive a
  // multi-gigabyte allocation.
  static constexpr std::uint32_t kMaxLength = 64u << 20;

  explicit ByteReader(std::string_view buf) : buf_(buf) {}
  // Owning overload: keeps an rvalue message (e.g. a fresh RPC
  // response) alive for the reader's lifetime, so
  // `ByteReader r(client.call(...))` is safe.
  explicit ByteReader(std::string&& buf)
      : owned_(std::move(buf)), buf_(owned_) {}
  ByteReader(const ByteReader&) = delete;
  ByteReader& operator=(const ByteReader&) = delete;

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  std::string str();
  std::string bytes() { return str(); }
  std::vector<float> floats();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  // Throws when the message has trailing bytes (framing error).
  void expect_done() const;

 private:
  // Validates that `n` more bytes exist, returning a pointer to them
  // and advancing the cursor.
  const char* take(std::size_t n);

  std::string owned_;  // backing storage for the owning constructor
  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace parcae::rpc
