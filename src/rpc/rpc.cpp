#include "rpc/rpc.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/profile_span.h"
#include "obs/trace_context.h"
#include "rpc/serializer.h"

namespace parcae::rpc {

namespace {

constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;
constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusError = 1;
constexpr std::uint8_t kStatusInjectedFault = 2;

// Client ids key the server's replay cache, so they must be unique
// across every process that dials one server — two agents presenting
// the same (client_id, correlation_id) would be served each other's
// cached responses. Mixing in the pid keeps a bare counter from
// colliding between fork/exec'd agents; the ids never influence
// results or appear in output.
std::uint64_t next_client_id() {
  static std::atomic<std::uint64_t> counter{1};
  return (static_cast<std::uint64_t>(::getpid()) << 32) |
         counter.fetch_add(1);
}

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string encode_response(std::uint64_t client_id,
                            std::uint64_t correlation_id,
                            std::uint8_t status, const std::string& a,
                            std::uint64_t hit = 0) {
  ByteWriter w;
  w.u8(kKindResponse);
  w.u64(client_id);
  w.u64(correlation_id);
  w.u8(status);
  w.bytes(a);
  if (status == kStatusInjectedFault) w.u64(hit);
  return w.take();
}

}  // namespace

void RpcServer::register_method(std::string name, Handler handler) {
  std::lock_guard lock(mu_);
  methods_[std::move(name)] = std::move(handler);
}

void RpcServer::start() {
  transport_.serve(
      [this](const std::string& frame) { return serve_frame(frame); });
}

void RpcServer::stop() { transport_.shutdown(); }

std::string RpcServer::serve_frame(const std::string& frame) {
  std::uint64_t client_id = 0;
  std::uint64_t correlation_id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string method;
  std::string payload;
  try {
    ByteReader r(frame);
    const std::uint8_t kind = r.u8();
    client_id = r.u64();
    correlation_id = r.u64();
    if (kind != kKindRequest) throw SerializeError("not a request frame");
    trace_id = r.u64();
    parent_span_id = r.u64();
    method = r.str();
    payload = r.bytes();
    r.expect_done();
  } catch (const std::exception& e) {
    if (metrics_ != nullptr) metrics_->counter("rpc.server.bad_frames").inc();
    return encode_response(client_id, correlation_id, kStatusError, e.what());
  }

  Handler handler;
  {
    std::lock_guard lock(mu_);
    // A retried request (same client + correlation id) replays the
    // recorded outcome instead of re-executing — the handler may not
    // be idempotent (KV CAS, PS gradient push).
    const auto replay = replay_.find({client_id, correlation_id});
    if (replay != replay_.end()) {
      if (metrics_ != nullptr) metrics_->counter("rpc.server.replays").inc();
      return replay->second;
    }
    const auto it = methods_.find(method);
    if (it != methods_.end()) handler = it->second;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("rpc.server.requests").inc();
    metrics_->counter("rpc.server.requests." + method).inc();
  }

  std::string response;
  if (!handler) {
    response = encode_response(client_id, correlation_id, kStatusError,
                               "unknown method: " + method);
  } else {
    const double begin = wall_s();
    // The handler runs under the envelope's trace context so its span
    // (and any spans it opens) parent under the remote call span. The
    // replay path above never reaches here — one handler span per
    // logical call, no matter how many resends.
    std::optional<obs::TraceContextScope> scope;
    std::optional<obs::ProfileSpan> span;
    if (tracer_ != nullptr) {
      scope.emplace(obs::TraceContext{trace_id, parent_span_id});
      span.emplace(std::string("rpc.handle.") + method, nullptr, tracer_,
                   "rpc");
    }
    try {
      response = encode_response(client_id, correlation_id, kStatusOk,
                                 handler(payload));
    } catch (const InjectedFault& fault) {
      response = encode_response(client_id, correlation_id,
                                 kStatusInjectedFault, fault.point(),
                                 fault.hit());
    } catch (const std::exception& e) {
      response =
          encode_response(client_id, correlation_id, kStatusError, e.what());
    }
    span.reset();
    scope.reset();
    if (metrics_ != nullptr)
      metrics_->histogram("rpc.server.handle_s").observe(wall_s() - begin);
  }

  {
    std::lock_guard lock(mu_);
    replay_[{client_id, correlation_id}] = response;
    replay_order_.push_back({client_id, correlation_id});
    while (replay_order_.size() > kReplayCacheSize) {
      replay_.erase(replay_order_.front());
      replay_order_.pop_front();
    }
  }
  return response;
}

RpcClient::RpcClient(Transport& transport, std::string peer,
                     RpcClientOptions options)
    : transport_(transport),
      peer_(std::move(peer)),
      options_(options),
      client_id_(next_client_id()) {
  if (options_.reconnect) {
    // Tolerant first dial: the server may not be up yet (agent spawned
    // before the scheduler binds, or mid-takeover). call() redials.
    try {
      ensure_connected();
    } catch (const TransportError&) {
    }
  } else {
    ensure_connected();
  }
}

void RpcClient::ensure_connected() {
  if (connection_ != nullptr) return;
  connection_ = transport_.connect(peer_);
  if (ever_connected_ && metrics_ != nullptr)
    metrics_->counter("rpc.reconnects").inc();
  ever_connected_ = true;
}

std::string RpcClient::call(std::string_view method, std::string payload) {
  const std::uint64_t correlation_id = next_correlation_++;

  // Optional client call span covering the whole retry loop; its
  // identity rides in the envelope so the server handler span parents
  // under it. Without a tracer the thread's current context (if any)
  // still propagates. The frame is built once: every resend carries
  // the same correlation id AND the same trace identity.
  std::optional<obs::ProfileSpan> span;
  if (tracer_ != nullptr)
    span.emplace(std::string("rpc.call.") + std::string(method), nullptr,
                 tracer_, "rpc");
  const obs::TraceContext& ctx =
      span ? span->context() : obs::current_trace_context();

  ByteWriter w;
  w.u8(1);  // kKindRequest
  w.u64(client_id_);
  w.u64(correlation_id);
  w.u64(ctx.trace_id);
  w.u64(ctx.span_id);
  w.str(method);
  w.bytes(payload);
  const std::string frame = w.take();

  const double begin = wall_s();
  double backoff_accum = 0.0;
  for (int attempt = 1;; ++attempt) {
    if (metrics_ != nullptr) metrics_->counter("rpc.requests").inc();
    try {
      // In reconnect mode the connection may be down (never came up,
      // or torn down by the previous attempt's failure): re-dial here
      // so a refused dial retries on the same backoff schedule.
      ensure_connected();
      // Same correlation id on every attempt: a resend of a request
      // whose response was lost replays server-side (exactly-once).
      connection_->send(frame);
      const double deadline = wall_s() + options_.deadline_s;
      while (true) {
        const double budget = deadline - wall_s();
        auto response = connection_->recv(budget);
        if (!response) throw RpcTimeout(std::string(method));
        ByteReader r(*response);
        const std::uint8_t kind = r.u8();
        const std::uint64_t rsp_client = r.u64();
        const std::uint64_t rsp_correlation = r.u64();
        if (kind != kKindResponse) throw SerializeError("not a response");
        // A stale response from an earlier timed-out call: discard and
        // keep waiting for ours.
        if (rsp_client != client_id_ || rsp_correlation != correlation_id)
          continue;
        const std::uint8_t status = r.u8();
        std::string body = r.bytes();
        if (status == kStatusOk) {
          if (metrics_ != nullptr) {
            metrics_->counter("rpc.responses").inc();
            metrics_->histogram("rpc.latency_s").observe(wall_s() - begin);
          }
          r.expect_done();
          return body;
        }
        if (status == kStatusInjectedFault) {
          const std::uint64_t hit = r.u64();
          r.expect_done();
          // Reconstruct the server-side fault so the caller's §8
          // retry/fallback paths behave exactly as in-process.
          throw InjectedFault(std::move(body), hit);
        }
        throw RpcError(std::move(body));
      }
    } catch (const InjectedFault&) {
      throw;  // application-level: the caller owns this retry decision
    } catch (const RpcError&) {
      throw;
    } catch (const std::exception&) {
      // Transport-level failure (drop, timeout, reset, bad frame):
      // retry on the deterministic with_retry backoff schedule.
      if (metrics_ != nullptr) metrics_->counter("rpc.timeouts").inc();
      if (options_.reconnect && connection_ != nullptr) {
        // The socket's far end may be gone (scheduler killed); dial
        // fresh next attempt rather than resending into a dead pipe.
        connection_->close();
        connection_.reset();
      }
      if (!detail::retry_admits_another(options_.retry, attempt,
                                        backoff_accum))
        throw;
      if (metrics_ != nullptr) metrics_->counter("rpc.client.retries").inc();
      if (options_.sleep_on_retry) {
        const double delay_s = options_.retry.backoff_for_attempt(attempt + 1);
        if (delay_s > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
      }
    }
  }
}

}  // namespace parcae::rpc
