#include "rpc/serializer.h"

#include <cstring>

namespace parcae::rpc {

namespace {

// The wire is little-endian by definition; encode through shifts so
// the codec is correct on any host byte order. Floats are transported
// as their raw IEEE-754 bit pattern for bit-exact round-trips.
std::uint32_t f32_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

float f32_from_bits(std::uint32_t bits) {
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t f64_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double f64_from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::f32(float v) { u32(f32_bits(v)); }

void ByteWriter::f64(double v) { u64(f64_bits(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::floats(const std::vector<float>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const float x : v) f32(x);
}

const char* ByteReader::take(std::size_t n) {
  if (n > remaining())
    throw SerializeError("truncated frame: need " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()));
  const char* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::u8() {
  return static_cast<std::uint8_t>(*take(1));
}

std::uint32_t ByteReader::u32() {
  const char* p = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  const char* p = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

float ByteReader::f32() { return f32_from_bits(u32()); }

double ByteReader::f64() { return f64_from_bits(u64()); }

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (n > kMaxLength)
    throw SerializeError("oversized string: " + std::to_string(n) + " bytes");
  const char* p = take(n);
  return std::string(p, n);
}

std::vector<float> ByteReader::floats() {
  const std::uint32_t n = u32();
  // The cap bounds the *byte* size so a corrupt count cannot drive a
  // huge allocation before take() notices the truncation.
  if (n > kMaxLength / sizeof(float))
    throw SerializeError("oversized tensor: " + std::to_string(n) +
                         " elements");
  std::vector<float> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(f32());
  return out;
}

void ByteReader::expect_done() const {
  if (!done())
    throw SerializeError("trailing bytes: " + std::to_string(remaining()));
}

}  // namespace parcae::rpc
