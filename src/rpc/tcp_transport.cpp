// TcpTransport: the RPC layer over real localhost sockets.
//
// Server: one background thread runs a poll() loop over the listening
// socket and every accepted connection, reassembles length-prefixed
// frames from the byte stream, dispatches the frame handler inline and
// queues the response bytes for write-out (partial writes are resumed
// under POLLOUT). Client: blocking connect with a timeout (nonblocking
// connect + poll + SO_ERROR), full-frame sends, and poll()-bounded
// receives. shutdown() flips a flag the poll loop notices within one
// poll timeout, joins the thread, and closes every file descriptor —
// the e2e chaos run must exit with zero leaked sockets under ASan.
//
// Wire framing: u32 little-endian byte length, then the frame. The
// length is capped (kMaxFrame) so a corrupt prefix tears the
// connection down instead of driving an unbounded buffer.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "rpc/transport.h"

namespace parcae::rpc {

namespace {

constexpr std::uint32_t kMaxFrame = (64u << 20) + 4096;  // payload cap + slack
constexpr int kPollMs = 20;  // server loop wake cadence (shutdown latency)

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  // The RPC layer is strict request/response ping-pong; without
  // NODELAY every call would eat a Nagle delay.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void append_frame(std::string& out, const std::string& frame) {
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  out.append(frame);
}

// Extracts one complete frame from `buf`, erasing it. Returns nullopt
// when more bytes are needed; throws on an oversized length prefix.
std::optional<std::string> extract_frame(std::string& buf) {
  if (buf.size() < 4) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i)
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  if (n > kMaxFrame) throw TransportError("oversized frame: " +
                                          std::to_string(n) + " bytes");
  if (buf.size() < 4 + static_cast<std::size_t>(n)) return std::nullopt;
  std::string frame = buf.substr(4, n);
  buf.erase(0, 4 + static_cast<std::size_t>(n));
  return frame;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class TcpConnection;

// Shared base of the serving transport and the client-only dialer:
// grants TcpConnection access to the admit/count hooks inherited from
// Transport, and hosts the common dial logic.
class TcpEndpoint : public Transport {
 protected:
  friend class TcpConnection;

  // Nonblocking connect to 127.0.0.1:port with a poll()ed timeout;
  // returns the connected fd or throws TransportError.
  static int dial_localhost(int port, double timeout_s) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw TransportError(errno_text("socket"));
    set_nonblocking(fd);
    set_nodelay(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
        errno != EINPROGRESS) {
      const std::string err = errno_text("connect");
      ::close(fd);
      throw TransportError(err);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int r = poll(&pfd, 1, static_cast<int>(timeout_s * 1000.0));
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (r <= 0 || soerr != 0) {
      ::close(fd);
      throw TransportError(r <= 0 ? "connect timeout"
                                  : "connect: " + std::string(
                                        std::strerror(soerr)));
    }
    return fd;
  }
};

class TcpConnection : public Connection {
 public:
  TcpConnection(TcpEndpoint* transport, std::string peer, int fd);
  ~TcpConnection() override { close(); }

  void send(const std::string& frame) override;
  std::optional<std::string> recv(double timeout_s) override;
  void close() override;

 private:
  TcpEndpoint* transport_;
  int fd_;
  std::string rx_;  // bytes read but not yet framed
};

class TcpTransport : public TcpEndpoint {
 public:
  TcpTransport(int port, double connect_timeout_s)
      : requested_port_(port), connect_timeout_s_(connect_timeout_s) {}
  ~TcpTransport() override { shutdown(); }

  void serve(FrameHandler handler) override {
    if (listen_fd_ >= 0) throw TransportError("already serving");
    handler_ = std::move(handler);
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw TransportError(errno_text("socket"));
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(requested_port_));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const std::string err = errno_text("bind");
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw TransportError(err);
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    if (listen(listen_fd_, 16) < 0) {
      const std::string err = errno_text("listen");
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw TransportError(err);
    }
    set_nonblocking(listen_fd_);
    stop_.store(false);
    server_thread_ = std::thread([this] { run_server(); });
  }

  void shutdown() override {
    if (server_thread_.joinable()) {
      stop_.store(true);
      server_thread_.join();
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  std::unique_ptr<Connection> connect(std::string peer) override {
    if (listen_fd_ < 0) throw TransportError("endpoint is not serving");
    const int fd = dial_localhost(bound_port_, connect_timeout_s_);
    return std::make_unique<TcpConnection>(this, std::move(peer), fd);
  }

  const char* kind() const override { return "tcp"; }
  std::string address() const override {
    return "tcp://127.0.0.1:" + std::to_string(bound_port_);
  }

 private:
  friend class TcpConnection;

  struct ServerConn {
    std::string rx;
    std::string tx;
  };

  void run_server() {
    std::map<int, ServerConn> conns;
    while (!stop_.load()) {
      std::vector<pollfd> fds;
      fds.push_back({listen_fd_, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short events = POLLIN;
        if (!conn.tx.empty()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
      }
      if (poll(fds.data(), fds.size(), kPollMs) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[0].revents & POLLIN) {
        while (true) {
          const int fd = accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          set_nodelay(fd);
          conns.emplace(fd, ServerConn{});
        }
      }
      std::vector<int> dead;
      for (std::size_t i = 1; i < fds.size(); ++i) {
        const int fd = fds[i].fd;
        ServerConn& conn = conns[fd];
        if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
          if (!drain_reads(fd, conn)) {
            dead.push_back(fd);
            continue;
          }
        }
        if (!conn.tx.empty()) flush_writes(fd, conn);
      }
      for (const int fd : dead) {
        ::close(fd);
        conns.erase(fd);
      }
    }
    for (auto& [fd, conn] : conns) ::close(fd);
  }

  // Reads everything available; dispatches complete frames. Returns
  // false when the peer closed or misbehaved (connection torn down —
  // the client side surfaces that as a timeout and retries).
  bool drain_reads(int fd, ServerConn& conn) {
    char chunk[16384];
    while (true) {
      const ssize_t n = read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        conn.rx.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    try {
      while (auto frame = extract_frame(conn.rx)) {
        count_received(frame->size());
        const std::string response = handler_(*frame);
        if (admit_response(response) == Admit::kDrop) continue;
        append_frame(conn.tx, response);
      }
    } catch (const std::exception&) {
      return false;  // oversized frame or handler blow-up: drop the conn
    }
    return true;
  }

  static void flush_writes(int fd, ServerConn& conn) {
    while (!conn.tx.empty()) {
      const ssize_t n = write(fd, conn.tx.data(), conn.tx.size());
      if (n > 0) {
        conn.tx.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.tx.clear();  // broken pipe; reader will reap the conn
      break;
    }
  }

  int requested_port_;
  double connect_timeout_s_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  FrameHandler handler_;
  std::atomic<bool> stop_{false};
  std::thread server_thread_;
};

// Client half of a process that dials a remote scheduler hub. No
// server thread, no listener: connect() opens a fresh socket to the
// fixed port every time it is called, which is what lets an agent
// re-reach a restarted scheduler (or the standby that took over the
// port) — the old Connection is dead, the next connect() succeeds
// once something listens again.
class TcpDialTransport : public TcpEndpoint {
 public:
  TcpDialTransport(int port, double connect_timeout_s)
      : port_(port), connect_timeout_s_(connect_timeout_s) {}

  void serve(FrameHandler) override {
    throw TransportError("dial transport is client-only");
  }
  void shutdown() override {}
  std::unique_ptr<Connection> connect(std::string peer) override {
    const int fd = dial_localhost(port_, connect_timeout_s_);
    return std::make_unique<TcpConnection>(this, std::move(peer), fd);
  }
  const char* kind() const override { return "tcp"; }
  std::string address() const override {
    return "tcp://127.0.0.1:" + std::to_string(port_);
  }

 private:
  int port_;
  double connect_timeout_s_;
};

TcpConnection::TcpConnection(TcpEndpoint* transport, std::string peer,
                             int fd)
    : Connection(std::move(peer)), transport_(transport), fd_(fd) {
  transport_->connection_delta(+1);
}

void TcpConnection::send(const std::string& frame) {
  if (fd_ < 0) throw TransportError("send on closed connection");
  if (transport_->admit_request(*this, frame) == Transport::Admit::kDrop)
    return;
  std::string framed;
  framed.reserve(frame.size() + 4);
  append_frame(framed, frame);
  std::size_t off = 0;
  while (off < framed.size()) {
    // MSG_NOSIGNAL: a peer that died (scheduler SIGKILLed under an
    // agent) must surface as EPIPE -> TransportError for the reconnect
    // path, not as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd_, POLLOUT, 0};
      poll(&pfd, 1, kPollMs);
      continue;
    }
    throw TransportError(errno_text("write"));
  }
}

std::optional<std::string> TcpConnection::recv(double timeout_s) {
  if (fd_ < 0) throw TransportError("recv on closed connection");
  if (!transport_->admit_recv(*this)) return std::nullopt;
  const double deadline = now_s() + timeout_s;
  while (true) {
    if (auto frame = extract_frame(rx_)) {
      transport_->count_received(frame->size());
      return frame;
    }
    const double budget = deadline - now_s();
    if (budget <= 0.0) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const int r = poll(&pfd, 1,
                       std::max(1, static_cast<int>(budget * 1000.0)));
    if (r < 0 && errno != EINTR) throw TransportError(errno_text("poll"));
    if (r <= 0) continue;  // re-check the deadline
    char chunk[16384];
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      rx_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) throw TransportError("connection closed by server");
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      throw TransportError(errno_text("read"));
  }
}

void TcpConnection::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  transport_->connection_delta(-1);
}

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(int port,
                                              double connect_timeout_s) {
  return std::make_unique<TcpTransport>(port, connect_timeout_s);
}

std::unique_ptr<Transport> make_tcp_dial_transport(int port,
                                                   double connect_timeout_s) {
  return std::make_unique<TcpDialTransport>(port, connect_timeout_s);
}

}  // namespace parcae::rpc
