// Live telemetry export over the wire: the obs.metrics endpoint.
//
// ObsService serves the current MetricsSnapshot of a caller-supplied
// provider (typically MetricsRegistry::snapshot, or a FleetAggregator
// rollup) in two formats over the existing inproc/TCP RPC machinery:
// Prometheus text exposition 0.0.4 ("prom", the default — what a
// scraper hitting a /metrics endpoint would read) and the snapshot's
// JSON ("json"). Rendering happens at serve time from a fresh
// snapshot, so a long-lived scraper always sees live values, and both
// formats use obs::format_metric_value — byte-identical with the
// registry's own snapshot output (no exporter drift).
//
// The "obs.export" fault point fires inside the handler, so chaos
// runs can prove a failed scrape never disturbs training (export is
// observation only; it feeds nothing back into decisions).
#pragma once

#include <functional>
#include <string>

#include "obs/exporter.h"
#include "obs/metrics.h"

namespace parcae {
class FaultInjector;
}  // namespace parcae

namespace parcae::rpc {

class RpcClient;
class RpcServer;

// Server side: registers obs.metrics on an RpcServer.
class ObsService {
 public:
  using SnapshotProvider = std::function<obs::MetricsSnapshot()>;

  // Serves snapshots of `registry` (non-owning; must outlive the
  // service).
  explicit ObsService(const obs::MetricsRegistry& registry,
                      obs::PrometheusOptions options = {});
  // Serves whatever `provider` returns (a fleet rollup, a filtered
  // view, a test fixture).
  explicit ObsService(SnapshotProvider provider,
                      obs::PrometheusOptions options = {});

  void bind(RpcServer& server);
  // Arms the "obs.export" point inside the handler (non-owning).
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

 private:
  SnapshotProvider provider_;
  obs::PrometheusOptions options_;
  FaultInjector* faults_ = nullptr;
};

// Client side: one scrape per call. Throws the transport's
// RpcTimeout/RpcError (and InjectedFault from the obs.export point).
class ObsClient {
 public:
  explicit ObsClient(RpcClient& client) : client_(client) {}

  // Prometheus text exposition of the server's current snapshot.
  std::string scrape();
  // The snapshot as MetricsSnapshot::to_json().
  std::string scrape_json();

 private:
  RpcClient& client_;
};

}  // namespace parcae::rpc
