#include "rpc/ps_service.h"

#include "rpc/rpc.h"
#include "rpc/serializer.h"

namespace parcae::rpc {

void PsService::bind(RpcServer& server) {
  server.register_method("ps.reset", [this](const std::string& p) {
    ByteReader r(p);
    const float lr = r.f32();
    const std::uint32_t stages = r.u32();
    std::vector<std::unique_ptr<ParcaePs>> pool;
    for (std::uint32_t s = 0; s < stages; ++s) {
      std::vector<float> params = r.floats();
      std::vector<float> opt = r.floats();
      auto ps = std::make_unique<ParcaePs>(params, lr);
      if (!opt.empty()) ps->restore(params, opt);
      pool.push_back(std::move(ps));
    }
    r.expect_done();
    std::lock_guard lock(mu_);
    pool_ = std::move(pool);
    for (auto& ps : pool_) ps->set_fault_injector(faults_);
    return std::string();
  });
  server.register_method("ps.push", [this](const std::string& p) {
    ByteReader r(p);
    const std::uint32_t stage = r.u32();
    const std::vector<float> grads = r.floats();
    r.expect_done();
    ParcaePs* ps = checked_stage(stage);
    ps->push_gradients(grads);
    ByteWriter w;
    w.i64(ps->version());
    return w.take();
  });
  server.register_method("ps.pull", [this](const std::string& p) {
    ByteReader r(p);
    const std::uint32_t stage = r.u32();
    r.expect_done();
    ParcaePs* ps = checked_stage(stage);
    ByteWriter w;
    w.floats(ps->parameters_snapshot());
    w.floats(ps->optimizer_state());
    w.i64(ps->version());
    return w.take();
  });
  server.register_method("ps.restore", [this](const std::string& p) {
    ByteReader r(p);
    const std::uint32_t stage = r.u32();
    const std::vector<float> params = r.floats();
    const std::vector<float> opt = r.floats();
    r.expect_done();
    checked_stage(stage)->restore(params, opt);
    return std::string();
  });
  server.register_method("ps.count", [this](const std::string& p) {
    ByteReader(p).expect_done();
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(stage_count()));
    return w.take();
  });
}

void PsService::set_fault_injector(FaultInjector* faults) {
  std::lock_guard lock(mu_);
  faults_ = faults;
  for (auto& ps : pool_) ps->set_fault_injector(faults);
}

int PsService::stage_count() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(pool_.size());
}

ParcaePs* PsService::stage(int s) {
  std::lock_guard lock(mu_);
  if (s < 0 || static_cast<std::size_t>(s) >= pool_.size()) return nullptr;
  return pool_[static_cast<std::size_t>(s)].get();
}

ParcaePs* PsService::checked_stage(std::uint32_t s) {
  std::lock_guard lock(mu_);
  if (s >= pool_.size())
    throw RpcError("ps: no stage " + std::to_string(s) + " (pool has " +
                   std::to_string(pool_.size()) + ")");
  return pool_[s].get();
}

void PsClient::reset(float learning_rate,
                     const std::vector<PsStageState>& stages) {
  ByteWriter w;
  w.f32(learning_rate);
  w.u32(static_cast<std::uint32_t>(stages.size()));
  for (const PsStageState& s : stages) {
    w.floats(s.parameters);
    w.floats(s.optimizer_state);
  }
  client_.call("ps.reset", w.take());
}

long long PsClient::push(int stage, const std::vector<float>& gradients) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(stage));
  w.floats(gradients);
  ByteReader r(client_.call("ps.push", w.take()));
  return r.i64();
}

PsStageState PsClient::pull(int stage) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(stage));
  const std::string response = client_.call("ps.pull", w.take());
  ByteReader r(response);
  PsStageState state;
  state.parameters = r.floats();
  state.optimizer_state = r.floats();
  state.version = r.i64();
  return state;
}

void PsClient::restore(int stage, const std::vector<float>& parameters,
                       const std::vector<float>& optimizer_state) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(stage));
  w.floats(parameters);
  w.floats(optimizer_state);
  client_.call("ps.restore", w.take());
}

int PsClient::stage_count() {
  ByteReader r(client_.call("ps.count", {}));
  return static_cast<int>(r.u32());
}

}  // namespace parcae::rpc
