// KvStore over the wire: the full etcd-like API (put / get / cas /
// erase / list / lease grant / keepalive / revoke) served by a
// KvService and consumed through a KvClient with the same signatures
// as the in-process store.
//
// The lease machinery crossing a real transport is what makes lease
// expiry the *real* unpredicted-preemption signal: an agent whose
// connection dies (or whose keepalives are dropped by fault
// injection) simply stops renewing, and the scheduler — co-located
// with the store, driving its logical clock — sees the tombstone.
// Watches and advance_clock() stay server-side on purpose: the
// scheduler owns the store the way the paper's scheduler owns etcd;
// streaming watch events to remote peers is out of scope
// (docs/rpc.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/kv_store.h"

namespace parcae::rpc {

class RpcClient;
class RpcServer;

// Server side: registers the kv.* methods on an RpcServer, delegating
// to a caller-owned KvStore. The store's own mutex makes concurrent
// access from a transport thread and the scheduler thread safe; fault
// points inside the store (kv.put / kv.cas / kv.keepalive) fire
// server-side and surface to remote callers as InjectedFault.
class KvService {
 public:
  explicit KvService(KvStore& store) : store_(store) {}
  void bind(RpcServer& server);

 private:
  KvStore& store_;
};

// Client side: KvStore's signatures over an RpcClient. Throws what the
// store would throw (InjectedFault from armed kv.* points) plus the
// transport's RpcTimeout/RpcError when the wire itself fails.
class KvClient {
 public:
  explicit KvClient(RpcClient& client) : client_(client) {}

  std::uint64_t put(const std::string& key, const std::string& value);
  std::uint64_t put_with_lease(const std::string& key,
                               const std::string& value,
                               std::uint64_t lease_id);
  std::optional<KvEntry> get(const std::string& key);
  bool cas(const std::string& key, std::uint64_t expected_version,
           const std::string& value);
  bool erase(const std::string& key);
  std::vector<std::string> list(const std::string& prefix);
  std::uint64_t revision();
  std::uint64_t lease_grant(double ttl_s);
  bool lease_keepalive(std::uint64_t lease_id);
  bool lease_revoke(std::uint64_t lease_id);
  bool lease_alive(std::uint64_t lease_id);

 private:
  RpcClient& client_;
};

}  // namespace parcae::rpc
