// ParcaePS over the wire: gradient push, full-state pull/restore, and
// pool reset with tensor framing (§9.3).
//
// The PsService owns the per-stage ParcaePs replicas (the "CPU DRAM"
// host of Figure 7); the training side only ever reaches them through
// a PsClient. Gradients cross the wire as raw-IEEE float tensors, so
// a pushed gradient and a pulled checkpoint are bit-exact with the
// in-process path. The ps.push fault point fires server-side before
// any state changes, and the server's replay cache means a push whose
// *response* was lost is never double-applied on retry.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/parcae_ps.h"

namespace parcae {
class FaultInjector;
}  // namespace parcae

namespace parcae::rpc {

class RpcClient;
class RpcServer;

// One stage's full checkpoint as it crosses the wire.
struct PsStageState {
  std::vector<float> parameters;
  std::vector<float> optimizer_state;
  long long version = 0;
};

// Server side: owns the ParcaePs pool, rebuilt on ps.reset when a
// migration re-shards the model. Locking rule: the pool pointer array
// is guarded by mu_ (reset can race a transport-thread push); each
// ParcaePs serializes its own state internally.
class PsService {
 public:
  void bind(RpcServer& server);

  // Forwarded to every current and future replica.
  void set_fault_injector(FaultInjector* faults);

  int stage_count() const;
  // Direct handle for tests; the runtime goes through PsClient.
  ParcaePs* stage(int s);

 private:
  ParcaePs* checked_stage(std::uint32_t s);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ParcaePs>> pool_;
  FaultInjector* faults_ = nullptr;
};

// Client side. Throws InjectedFault (armed server-side ps.push) and
// the transport's RpcTimeout/RpcError.
class PsClient {
 public:
  explicit PsClient(RpcClient& client) : client_(client) {}

  // Replaces the pool with one replica per entry (version resets; the
  // optimizer state is restored when non-empty).
  void reset(float learning_rate, const std::vector<PsStageState>& stages);
  // One committed iteration's mean gradient for `stage`; returns the
  // replica's new version.
  long long push(int stage, const std::vector<float>& gradients);
  PsStageState pull(int stage);
  void restore(int stage, const std::vector<float>& parameters,
               const std::vector<float>& optimizer_state);
  int stage_count();

 private:
  RpcClient& client_;
};

}  // namespace parcae::rpc
