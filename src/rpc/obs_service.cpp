#include "rpc/obs_service.h"

#include <utility>

#include "common/fault.h"
#include "rpc/rpc.h"
#include "rpc/serializer.h"

namespace parcae::rpc {

ObsService::ObsService(const obs::MetricsRegistry& registry,
                       obs::PrometheusOptions options)
    : provider_([&registry] { return registry.snapshot(); }),
      options_(options) {}

ObsService::ObsService(SnapshotProvider provider,
                       obs::PrometheusOptions options)
    : provider_(std::move(provider)), options_(options) {}

void ObsService::bind(RpcServer& server) {
  // Request: str format ("prom" | "json"). Response: str body.
  server.register_method("obs.metrics", [this](const std::string& p) {
    ByteReader r(p);
    const std::string format = r.str();
    r.expect_done();
    if (faults_ != nullptr) faults_->maybe_throw("obs.export");
    const obs::MetricsSnapshot snapshot = provider_();
    ByteWriter w;
    if (format == "json")
      w.str(snapshot.to_json());
    else
      w.str(obs::to_prometheus(snapshot, options_));
    return w.take();
  });
}

namespace {
std::string scrape_as(RpcClient& client, const char* format) {
  ByteWriter w;
  w.str(format);
  ByteReader r(client.call("obs.metrics", w.take()));
  std::string body = r.str();
  r.expect_done();
  return body;
}
}  // namespace

std::string ObsClient::scrape() { return scrape_as(client_, "prom"); }

std::string ObsClient::scrape_json() { return scrape_as(client_, "json"); }

}  // namespace parcae::rpc
