#include "rpc/kv_service.h"

#include "rpc/rpc.h"
#include "rpc/serializer.h"

namespace parcae::rpc {

// Method payloads (docs/rpc.md has the full table). Responses encode
// only what the in-process signature returns; KvEntry crosses as
// value + version + lease + deleted.

void KvService::bind(RpcServer& server) {
  server.register_method("kv.put", [this](const std::string& p) {
    ByteReader r(p);
    const std::string key = r.str();
    const std::string value = r.str();
    r.expect_done();
    ByteWriter w;
    w.u64(store_.put(key, value));
    return w.take();
  });
  server.register_method("kv.put_lease", [this](const std::string& p) {
    ByteReader r(p);
    const std::string key = r.str();
    const std::string value = r.str();
    const std::uint64_t lease = r.u64();
    r.expect_done();
    ByteWriter w;
    w.u64(store_.put_with_lease(key, value, lease));
    return w.take();
  });
  server.register_method("kv.get", [this](const std::string& p) {
    ByteReader r(p);
    const std::string key = r.str();
    r.expect_done();
    const auto entry = store_.get(key);
    ByteWriter w;
    w.u8(entry.has_value() ? 1 : 0);
    if (entry.has_value()) {
      w.str(entry->value);
      w.u64(entry->version);
      w.u64(entry->lease);
      w.u8(entry->deleted ? 1 : 0);
    }
    return w.take();
  });
  server.register_method("kv.cas", [this](const std::string& p) {
    ByteReader r(p);
    const std::string key = r.str();
    const std::uint64_t expected = r.u64();
    const std::string value = r.str();
    r.expect_done();
    ByteWriter w;
    w.u8(store_.cas(key, expected, value) ? 1 : 0);
    return w.take();
  });
  server.register_method("kv.erase", [this](const std::string& p) {
    ByteReader r(p);
    const std::string key = r.str();
    r.expect_done();
    ByteWriter w;
    w.u8(store_.erase(key) ? 1 : 0);
    return w.take();
  });
  server.register_method("kv.list", [this](const std::string& p) {
    ByteReader r(p);
    const std::string prefix = r.str();
    r.expect_done();
    const auto keys = store_.list(prefix);
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(keys.size()));
    for (const std::string& key : keys) w.str(key);
    return w.take();
  });
  server.register_method("kv.revision", [this](const std::string& p) {
    ByteReader(p).expect_done();
    ByteWriter w;
    w.u64(store_.revision());
    return w.take();
  });
  server.register_method("kv.lease_grant", [this](const std::string& p) {
    ByteReader r(p);
    const double ttl_s = r.f64();
    r.expect_done();
    ByteWriter w;
    w.u64(store_.lease_grant(ttl_s));
    return w.take();
  });
  server.register_method("kv.keepalive", [this](const std::string& p) {
    ByteReader r(p);
    const std::uint64_t lease = r.u64();
    r.expect_done();
    ByteWriter w;
    w.u8(store_.lease_keepalive(lease) ? 1 : 0);
    return w.take();
  });
  server.register_method("kv.lease_revoke", [this](const std::string& p) {
    ByteReader r(p);
    const std::uint64_t lease = r.u64();
    r.expect_done();
    ByteWriter w;
    w.u8(store_.lease_revoke(lease) ? 1 : 0);
    return w.take();
  });
  server.register_method("kv.lease_alive", [this](const std::string& p) {
    ByteReader r(p);
    const std::uint64_t lease = r.u64();
    r.expect_done();
    ByteWriter w;
    w.u8(store_.lease_alive(lease) ? 1 : 0);
    return w.take();
  });
}

std::uint64_t KvClient::put(const std::string& key, const std::string& value) {
  ByteWriter w;
  w.str(key);
  w.str(value);
  ByteReader r(client_.call("kv.put", w.take()));
  return r.u64();
}

std::uint64_t KvClient::put_with_lease(const std::string& key,
                                       const std::string& value,
                                       std::uint64_t lease_id) {
  ByteWriter w;
  w.str(key);
  w.str(value);
  w.u64(lease_id);
  ByteReader r(client_.call("kv.put_lease", w.take()));
  return r.u64();
}

std::optional<KvEntry> KvClient::get(const std::string& key) {
  ByteWriter w;
  w.str(key);
  const std::string response = client_.call("kv.get", w.take());
  ByteReader r(response);
  if (r.u8() == 0) return std::nullopt;
  KvEntry entry;
  entry.value = r.str();
  entry.version = r.u64();
  entry.lease = r.u64();
  entry.deleted = r.u8() != 0;
  return entry;
}

bool KvClient::cas(const std::string& key, std::uint64_t expected_version,
                   const std::string& value) {
  ByteWriter w;
  w.str(key);
  w.u64(expected_version);
  w.str(value);
  ByteReader r(client_.call("kv.cas", w.take()));
  return r.u8() != 0;
}

bool KvClient::erase(const std::string& key) {
  ByteWriter w;
  w.str(key);
  ByteReader r(client_.call("kv.erase", w.take()));
  return r.u8() != 0;
}

std::vector<std::string> KvClient::list(const std::string& prefix) {
  ByteWriter w;
  w.str(prefix);
  const std::string response = client_.call("kv.list", w.take());
  ByteReader r(response);
  const std::uint32_t n = r.u32();
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) keys.push_back(r.str());
  return keys;
}

std::uint64_t KvClient::revision() {
  ByteReader r(client_.call("kv.revision", {}));
  return r.u64();
}

std::uint64_t KvClient::lease_grant(double ttl_s) {
  ByteWriter w;
  w.f64(ttl_s);
  ByteReader r(client_.call("kv.lease_grant", w.take()));
  return r.u64();
}

bool KvClient::lease_keepalive(std::uint64_t lease_id) {
  ByteWriter w;
  w.u64(lease_id);
  ByteReader r(client_.call("kv.keepalive", w.take()));
  return r.u8() != 0;
}

bool KvClient::lease_revoke(std::uint64_t lease_id) {
  ByteWriter w;
  w.u64(lease_id);
  ByteReader r(client_.call("kv.lease_revoke", w.take()));
  return r.u8() != 0;
}

bool KvClient::lease_alive(std::uint64_t lease_id) {
  ByteWriter w;
  w.u64(lease_id);
  ByteReader r(client_.call("kv.lease_alive", w.take()));
  return r.u8() != 0;
}

}  // namespace parcae::rpc
