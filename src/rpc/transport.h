// Message transports for the RPC layer: one Transport hosts a single
// server endpoint (the scheduler/PS hub of Figure 7) and hands out
// client Connections (the agents).
//
// Two implementations:
//   - InProcTransport: deterministic same-process delivery. send()
//     runs the server's frame handler synchronously on the caller's
//     thread and queues the response; recv() pops it. No threads, no
//     wall clock — tests and the default runtime mode replay
//     bit-for-bit.
//   - TcpTransport: real localhost sockets. serve() spawns a poll-loop
//     thread that accepts connections, reassembles length-prefixed
//     frames, dispatches the handler and writes responses back;
//     connect() dials with a timeout and recv() waits on poll() up to
//     the caller's deadline. shutdown() joins the thread and closes
//     every socket.
//
// Fault points (evaluated identically by both transports, so a seeded
// chaos schedule is transport-independent):
//   rpc.send   client send throws (connection reset mid-request)
//   rpc.recv   client recv throws (connection reset mid-response)
//   rpc.drop   the frame is silently discarded (request on the client
//              side, response on the server side) — the caller times
//              out and retries
//   rpc.delay  virtual extra latency, charged to rpc.injected_delay_s
//   rpc.partition  while armed, every frame of every peer is dropped
// Per-peer partitions are explicit: set_partitioned(peer, true) makes
// that connection's frames vanish in both directions until healed.
//
// Metrics (when a registry is attached): rpc.bytes_sent /
// rpc.bytes_received / rpc.frames_sent / rpc.frames_received /
// rpc.dropped / rpc.injected_delay_s and the rpc.open_connections
// gauge. Recording only observes; inproc runs stay bit-identical.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

namespace parcae {
class FaultInjector;
namespace obs {
class MetricsRegistry;
}  // namespace obs
}  // namespace parcae

namespace parcae::rpc {

// Transport-level failure (socket error, closed endpoint, framing
// violation). Distinct from SerializeError (payload decode) and from
// application errors, which travel inside response envelopes.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error("rpc transport: " + what) {}
};

// One client's connection to the transport's server endpoint.
class Connection {
 public:
  virtual ~Connection() = default;
  // Delivers one frame to the server (throws TransportError or an
  // injected fault; a fault-dropped frame "succeeds" silently).
  virtual void send(const std::string& frame) = 0;
  // Next frame from the server, or nullopt when none arrived within
  // `timeout_s` (an InProcTransport never waits: its delivery is
  // synchronous, so an empty inbox means the frame was dropped).
  virtual std::optional<std::string> recv(double timeout_s) = 0;
  virtual void close() = 0;

  const std::string& peer() const { return peer_; }

 protected:
  explicit Connection(std::string peer) : peer_(std::move(peer)) {}
  std::string peer_;
};

// Request frame in, response frame out (RpcServer::serve_frame).
using FrameHandler = std::function<std::string(const std::string&)>;

class Transport {
 public:
  virtual ~Transport() = default;

  // Starts the server endpoint. Must be called before connect().
  virtual void serve(FrameHandler handler) = 0;
  // Stops serving: joins any transport thread and closes every socket.
  // Idempotent; implicitly run by the destructor.
  virtual void shutdown() = 0;
  virtual std::unique_ptr<Connection> connect(std::string peer) = 0;
  virtual const char* kind() const = 0;  // "inproc" | "tcp"
  virtual std::string address() const = 0;

  // Non-owning sinks; thread-safe to use from transport threads.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  // Explicit per-peer partition: while set, every frame to or from
  // that peer's connections is dropped (counted in rpc.dropped).
  void set_partitioned(const std::string& peer, bool on);
  bool partitioned(const std::string& peer) const;

 protected:
  enum class Admit { kDeliver, kDrop };

  // Client-side outbound hooks: partition, rpc.send (throws),
  // rpc.drop, rpc.delay. Counts bytes/frames on delivery.
  Admit admit_request(const Connection& conn, const std::string& frame);
  // Server-side outbound hooks for the response frame: rpc.partition
  // and rpc.drop only (the server does not know logical peer names).
  Admit admit_response(const std::string& frame);
  // Client-side inbound hooks: a partitioned peer sees silence and
  // rpc.recv may throw. Returns false when recv should report nothing.
  bool admit_recv(const Connection& conn);
  void count_received(std::size_t bytes);
  void count_dropped();
  void connection_delta(int delta);

  FaultInjector* faults_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

 private:
  mutable std::mutex partition_mu_;
  std::set<std::string> partitioned_;
};

// ---- in-process transport -------------------------------------------

class InProcTransport : public Transport {
 public:
  ~InProcTransport() override;

  void serve(FrameHandler handler) override;
  void shutdown() override;
  std::unique_ptr<Connection> connect(std::string peer) override;
  const char* kind() const override { return "inproc"; }
  std::string address() const override { return "inproc://local"; }

 private:
  friend class InProcConnection;
  // Runs the handler synchronously; throws TransportError when the
  // endpoint is not serving.
  std::string dispatch(const std::string& frame);

  std::mutex mu_;
  FrameHandler handler_;
};

// ---- TCP (localhost sockets) ----------------------------------------

// Factory; the implementation lives in tcp_transport.cpp. `port` 0
// binds an ephemeral port (address() reports the bound one);
// `connect_timeout_s` bounds the client-side dial.
std::unique_ptr<Transport> make_tcp_transport(int port = 0,
                                              double connect_timeout_s = 2.0);

// Client-only TCP transport: dials a *remote* endpoint on localhost
// port `port` instead of one hosted in this process — what a
// ParcaeAgent child process uses to reach the scheduler hub. serve()
// throws (there is no server half); connect() dials fresh each call,
// so an RpcClient with reconnect enabled can re-dial the same address
// after the scheduler restarts or a standby takes the port over. A
// refused/timed-out dial throws TransportError.
std::unique_ptr<Transport> make_tcp_dial_transport(
    int port, double connect_timeout_s = 2.0);

}  // namespace parcae::rpc
