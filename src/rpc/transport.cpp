#include "rpc/transport.h"

#include <deque>

#include "common/fault.h"
#include "obs/metrics.h"

namespace parcae::rpc {

namespace {
// Virtual latency charged per rpc.delay firing. The delay is never
// slept (that would make inproc and tcp runs diverge); it accumulates
// in rpc.injected_delay_s for the stall ledgers that care.
constexpr double kInjectedDelayS = 0.01;
}  // namespace

void Transport::set_partitioned(const std::string& peer, bool on) {
  std::lock_guard lock(partition_mu_);
  if (on)
    partitioned_.insert(peer);
  else
    partitioned_.erase(peer);
}

bool Transport::partitioned(const std::string& peer) const {
  std::lock_guard lock(partition_mu_);
  return partitioned_.count(peer) > 0;
}

Transport::Admit Transport::admit_request(const Connection& conn,
                                          const std::string& frame) {
  if (partitioned(conn.peer())) {
    count_dropped();
    return Admit::kDrop;
  }
  if (faults_ != nullptr) {
    faults_->maybe_throw("rpc.send");
    if (faults_->should_fire("rpc.partition") ||
        faults_->should_fire("rpc.drop")) {
      count_dropped();
      return Admit::kDrop;
    }
    if (faults_->should_fire("rpc.delay") && metrics_ != nullptr) {
      metrics_->counter("rpc.injected_delay_s").add(kInjectedDelayS);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->counter("rpc.frames_sent").inc();
    metrics_->counter("rpc.bytes_sent").add(static_cast<double>(frame.size()));
  }
  return Admit::kDeliver;
}

Transport::Admit Transport::admit_response(const std::string& frame) {
  if (faults_ != nullptr && (faults_->should_fire("rpc.partition") ||
                             faults_->should_fire("rpc.drop"))) {
    count_dropped();
    return Admit::kDrop;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("rpc.frames_sent").inc();
    metrics_->counter("rpc.bytes_sent").add(static_cast<double>(frame.size()));
  }
  return Admit::kDeliver;
}

bool Transport::admit_recv(const Connection& conn) {
  if (partitioned(conn.peer())) return false;
  if (faults_ != nullptr) faults_->maybe_throw("rpc.recv");
  return true;
}

void Transport::count_received(std::size_t bytes) {
  if (metrics_ == nullptr) return;
  metrics_->counter("rpc.frames_received").inc();
  metrics_->counter("rpc.bytes_received").add(static_cast<double>(bytes));
}

void Transport::count_dropped() {
  if (metrics_ != nullptr) metrics_->counter("rpc.dropped").inc();
}

void Transport::connection_delta(int delta) {
  if (metrics_ == nullptr) return;
  obs::Gauge& g = metrics_->gauge("rpc.open_connections");
  g.set(g.value() + delta);
}

// ---- in-process transport -------------------------------------------

// Delivery is synchronous: send() pushes the request through the
// handler on the calling thread and queues the response frame, so the
// whole stack (serialize -> frame -> dispatch -> serialize -> frame ->
// decode) is exercised with zero nondeterminism.
class InProcConnection : public Connection {
 public:
  InProcConnection(InProcTransport* transport, std::string peer)
      : Connection(std::move(peer)), transport_(transport) {
    transport_->connection_delta(+1);
  }
  ~InProcConnection() override { close(); }

  void send(const std::string& frame) override {
    if (closed_) throw TransportError("send on closed connection");
    if (transport_->admit_request(*this, frame) == Transport::Admit::kDrop)
      return;
    const std::string response = transport_->dispatch(frame);
    if (transport_->admit_response(response) == Transport::Admit::kDrop)
      return;
    transport_->count_received(response.size());
    inbox_.push_back(response);
  }

  std::optional<std::string> recv(double /*timeout_s*/) override {
    if (closed_) throw TransportError("recv on closed connection");
    if (!transport_->admit_recv(*this)) return std::nullopt;
    if (inbox_.empty()) return std::nullopt;  // dropped: synchronous
    std::string frame = std::move(inbox_.front());
    inbox_.pop_front();
    return frame;
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    inbox_.clear();
    transport_->connection_delta(-1);
  }

 private:
  InProcTransport* transport_;
  std::deque<std::string> inbox_;
  bool closed_ = false;
};

InProcTransport::~InProcTransport() { shutdown(); }

void InProcTransport::serve(FrameHandler handler) {
  std::lock_guard lock(mu_);
  handler_ = std::move(handler);
}

void InProcTransport::shutdown() {
  std::lock_guard lock(mu_);
  handler_ = nullptr;
}

std::unique_ptr<Connection> InProcTransport::connect(std::string peer) {
  return std::make_unique<InProcConnection>(this, std::move(peer));
}

std::string InProcTransport::dispatch(const std::string& frame) {
  FrameHandler handler;
  {
    std::lock_guard lock(mu_);
    handler = handler_;
  }
  if (!handler) throw TransportError("endpoint is not serving");
  return handler(frame);
}

}  // namespace parcae::rpc
