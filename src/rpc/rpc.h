// Request/response RPC over a Transport: correlation ids, per-call
// deadlines, deterministic retry, and exactly-once replay.
//
// Envelope (see docs/rpc.md):
//   request:  u8 kind=1, u64 client_id, u64 correlation_id,
//             u64 trace_id, u64 parent_span_id,
//             str method, bytes payload
//   response: u8 kind=2, u64 client_id, u64 correlation_id, u8 status,
//             status 0 (ok):             bytes payload
//             status 1 (error):          str what
//             status 2 (injected fault): str point, u64 hit
//
// RpcClient::call() sends the request and waits for the matching
// correlation id until the per-call deadline. A transport-level
// failure (dropped frame, timeout, reset) is retried on the
// with_retry backoff schedule *with the same correlation id*; the
// server's replay cache (keyed by client_id + correlation_id) then
// returns the recorded response without re-executing the handler, so
// a non-idempotent operation whose *response* was lost is applied
// exactly once.
//
// Distributed tracing: the request carries the caller's TraceContext
// (trace_id + the client call span as parent_span_id). Because the
// frame is built once before the retry loop, every resend carries the
// same trace id; because the replay cache answers resends without
// executing, a merged timeline shows exactly one server handler span
// per logical call. Attach writers with set_tracer() on both ends —
// the client opens an "rpc.call.<method>" span around the whole
// retry loop, the server an "rpc.handle.<method>" span around actual
// handler execution, parented across the wire.
//
// Application-level outcomes are never retried here:
// a status-2 response is rethrown as the original InjectedFault
// (callers' retry/fallback paths fire exactly as they would have
// in-process), and status 1 becomes RpcError.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/retry.h"
#include "rpc/transport.h"

namespace parcae::obs {
class TraceWriter;
}  // namespace parcae::obs

namespace parcae::rpc {

// Application-level failure reported by the server (unknown method,
// handler exception, malformed payload).
class RpcError : public std::runtime_error {
 public:
  explicit RpcError(const std::string& what)
      : std::runtime_error("rpc: " + what) {}
};

// Deadline + retry budget exhausted without a response.
class RpcTimeout : public TransportError {
 public:
  explicit RpcTimeout(const std::string& method)
      : TransportError("no response to '" + method + "' within deadline") {}
};

// Serves named methods over one Transport endpoint. Handlers take the
// request payload and return the response payload; exceptions become
// error responses (InjectedFault keeps its identity across the wire).
class RpcServer {
 public:
  using Handler = std::function<std::string(const std::string& payload)>;

  explicit RpcServer(Transport& transport) : transport_(transport) {}
  ~RpcServer() { stop(); }

  void register_method(std::string name, Handler handler);
  // Starts serving on the transport (registers serve_frame).
  void start();
  void stop();

  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  // Emits an "rpc.handle.<method>" span per executed handler, parented
  // under the envelope's trace context. Replayed responses emit none.
  void set_tracer(obs::TraceWriter* tracer) { tracer_ = tracer; }

  // Frame in, frame out — exposed for tests; normally invoked by the
  // transport (possibly on its thread: state is locked).
  std::string serve_frame(const std::string& frame);

 private:
  static constexpr std::size_t kReplayCacheSize = 512;

  Transport& transport_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceWriter* tracer_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::string, Handler, std::less<>> methods_;
  // Replay cache: (client id, correlation id) -> response frame, FIFO
  // bounded. A retried request replays the recorded response instead
  // of re-executing the handler (exactly-once for lost responses).
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> replay_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> replay_order_;
};

struct RpcClientOptions {
  // Per-call response deadline. InProc transports never wait (delivery
  // is synchronous), so this only throttles TCP waits.
  double deadline_s = 0.25;
  // Backoff schedule for transport-level retries (same-correlation-id
  // resends). Application errors are never retried at this layer.
  RetryOptions retry;
  // Reconnect mode, for clients whose server may die and come back
  // (agent → scheduler across a restart or standby takeover): the
  // constructor tolerates a refused dial, every attempt re-dials when
  // the connection is down, and a transport failure tears the
  // connection down so the next attempt dials fresh instead of
  // reusing a socket whose far end is gone. Successful re-dials after
  // a loss count into rpc.reconnects.
  bool reconnect = false;
  // Sleep the real backoff between attempts instead of accumulating
  // it virtually — required in reconnect mode for the retry window to
  // span an actual scheduler restart (hundreds of ms of wall time).
  bool sleep_on_retry = false;
};

class RpcClient {
 public:
  RpcClient(Transport& transport, std::string peer,
            RpcClientOptions options = {});

  // One remote call; returns the response payload. Throws the
  // server-side InjectedFault / RpcError, or RpcTimeout when the
  // transport retry budget is exhausted.
  std::string call(std::string_view method, std::string payload);

  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  // Emits an "rpc.call.<method>" span per call (all retries inside one
  // span) whose identity rides in the request envelope.
  void set_tracer(obs::TraceWriter* tracer) { tracer_ = tracer; }
  // Valid only while connected; in reconnect mode the connection may
  // be absent between failures (connected() tells which).
  Connection& connection() { return *connection_; }
  bool connected() const { return connection_ != nullptr; }
  void close() {
    if (connection_ != nullptr) connection_->close();
  }

 private:
  // Dials transport_.connect(peer_) when the connection is down.
  // Throws TransportError when the dial fails.
  void ensure_connected();

  Transport& transport_;
  std::string peer_;
  std::unique_ptr<Connection> connection_;
  RpcClientOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceWriter* tracer_ = nullptr;
  std::uint64_t client_id_;
  std::uint64_t next_correlation_ = 1;
  bool ever_connected_ = false;
};

}  // namespace parcae::rpc
