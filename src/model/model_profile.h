// Profiles of the five DNNs the paper evaluates (Table 3), expressed
// as the quantities the performance and memory models need: parameter
// counts, partitionable layer-block counts, FLOPs per sample, boundary
// activation sizes, and the paper's batch-size settings.
//
// The real system profiles these quantities with a one-time profiling
// run (Appendix C.1); here they are derived analytically from the
// published architectures and calibrated per-model sustained FLOP
// rates (see DESIGN.md §2 for the calibration constants).
#pragma once

#include <string>
#include <vector>

namespace parcae {

struct ModelProfile {
  std::string name;
  double parameters = 0.0;       // trainable parameter count
  int partition_units = 1;       // layer blocks a partitioner can split
  double tokens_per_sample = 1;  // sequence length for NLP, 1 for CV
  int mini_batch = 1;            // global mini-batch size (Table 3)
  int micro_batch = 1;           // pipeline micro-batch size (Table 3)
  double fwd_flops_per_sample = 0.0;
  // Sustained per-GPU throughput for this workload on a V100 (fp16),
  // capturing kernel efficiency (small CIFAR images utilize a V100 far
  // less than large transformer GEMMs).
  double effective_flops = 10e12;
  // Bytes of the activation tensor crossing a stage boundary, per
  // sample (fp16).
  double boundary_activation_bytes = 0.0;
  // Bytes of all activations inside one partition unit, per sample —
  // the recompute workspace when activation checkpointing is on.
  double unit_activation_bytes = 0.0;
  bool activation_recompute = true;
  std::string dataset;
  std::string sample_unit;  // "image" or "token"

  // fwd+bwd (+recompute fwd) FLOPs per sample.
  double train_flops_per_sample() const {
    // bwd ~= 2x fwd; recompute replays fwd once more.
    return fwd_flops_per_sample * (activation_recompute ? 4.0 : 3.0);
  }

  // Items the paper reports cost per: tokens for NLP, images for CV.
  double units_per_sample() const { return tokens_per_sample; }

  double weight_bytes() const { return parameters * 2.0; }  // fp16
};

// The five models of Table 3.
ModelProfile resnet152_profile();
ModelProfile vgg19_profile();
ModelProfile bert_large_profile();
ModelProfile gpt2_profile();   // GPT-2 1.5B
ModelProfile gpt3_profile();   // GPT-3 6.7B

// All five in the paper's order.
std::vector<ModelProfile> model_zoo();

// Lookup by name ("ResNet-152", "VGG-19", "BERT-Large", "GPT-2",
// "GPT-3"); throws std::out_of_range on unknown names.
ModelProfile model_by_name(const std::string& name);

// Models a k-GPU instance as one scheduling unit for the Figure-10
// study (§10.2): pipeline stages live on distinct nodes, and a node's
// k GPUs run k data-parallel replicas of its stage. Per "node
// micro-batch" the stage processes k samples with k GPUs' compute,
// and the k boundary-activation streams share the node's single NIC.
// Note the per-GPU memory constraint is unchanged physically (each
// GPU replicates the whole stage); the activation term becomes
// slightly conservative because micro_batch is scaled.
ModelProfile as_multi_gpu_node(ModelProfile base, int gpus_per_node);

// -----------------------------------------------------------------------
// Layer partitioner: splits `units` partition units into P contiguous
// stages as evenly as possible (the models are homogeneous stacks, the
// same assumption the paper makes for its Varuna-like search space).
// Returns per-stage unit counts, size P, or empty if P > units.
std::vector<int> partition_layers(int units, int stages);

}  // namespace parcae
