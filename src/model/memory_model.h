// Per-instance GPU memory model.
//
// Determines which pipeline depths P fit a model onto a 16 GB V100 for
// a given training system. The per-system differences (documented in
// DESIGN.md §2) reproduce the feasibility limits the paper reports:
// Bamboo must hold its successor's redundant model states (2x copies)
// and needs P >= ~20 for GPT-3; Varuna's checkpoint-based stack has
// the worst fragmentation and cannot form a GPT-3 pipeline on the
// ~15-instance L_A S_P trace at all (its min depth is 17); Parcae runs
// GPT-3 at P >= 9.
#pragma once

#include "model/model_profile.h"

namespace parcae {

struct MemorySpec {
  double gpu_memory_bytes = 16.0 * (1ull << 30);  // V100-16GB
  double framework_overhead_bytes = 1.5 * (1ull << 30);
  // Usable fraction of physical memory after allocator fragmentation
  // and framework slack; calibrated per system (see DESIGN.md §2).
  double efficiency = 0.85;
  // GPU-resident training-state bytes per parameter: fp16 weights (2)
  // + fp16 grads (2) + fp32 master weights (4) + Adam m/v (8).
  double state_bytes_per_param = 16.0;
  // Copies of model states held per instance (Bamboo: 2 — its own
  // stage plus its successor's redundant stage).
  int model_state_copies = 1;

  static MemorySpec parcae() { return MemorySpec{}; }
  static MemorySpec varuna() {
    MemorySpec s;
    s.efficiency = 0.50;
    return s;
  }
  static MemorySpec bamboo() {
    MemorySpec s;
    s.efficiency = 0.75;
    s.model_state_copies = 2;
    return s;
  }
};

class MemoryModel {
 public:
  MemoryModel(ModelProfile model, MemorySpec spec);

  // Bytes one instance needs to hold stage `1/P` of the model,
  // including in-flight 1F1B activations and recompute workspace.
  double stage_memory_bytes(int pipeline_depth) const;

  // Memory budget available per instance.
  double budget_bytes() const;

  bool fits(int pipeline_depth) const;

  // Smallest feasible pipeline depth, or -1 if none up to max_depth.
  int min_feasible_depth(int max_depth = 64) const;

  const ModelProfile& model() const { return model_; }
  const MemorySpec& spec() const { return spec_; }

 private:
  ModelProfile model_;
  MemorySpec spec_;
};

}  // namespace parcae
