#include "model/model_profile.h"

#include <stdexcept>

namespace parcae {

ModelProfile resnet152_profile() {
  ModelProfile m;
  m.name = "ResNet-152";
  m.parameters = 60.2e6;
  m.partition_units = 50;  // residual blocks
  m.tokens_per_sample = 1;
  m.mini_batch = 2048;
  m.micro_batch = 32;
  // ~11.6 GFLOPs at 224x224 scaled to CIFAR 32x32 inputs.
  m.fwd_flops_per_sample = 0.24e9;
  // Small conv kernels on 32x32 images leave a V100 mostly idle.
  m.effective_flops = 1.2e12;
  m.boundary_activation_bytes = 16.0 * 16.0 * 256.0 * 2.0;  // ~131 KB
  m.unit_activation_bytes = 3.0 * m.boundary_activation_bytes;
  m.activation_recompute = false;  // activations are tiny
  m.dataset = "CIFAR-100";
  m.sample_unit = "image";
  return m;
}

ModelProfile vgg19_profile() {
  ModelProfile m;
  m.name = "VGG-19";
  m.parameters = 143.7e6;
  m.partition_units = 19;
  m.tokens_per_sample = 1;
  m.mini_batch = 2048;
  m.micro_batch = 32;
  m.fwd_flops_per_sample = 0.4e9;
  m.effective_flops = 2.5e12;  // larger dense layers utilize better
  m.boundary_activation_bytes = 16.0 * 16.0 * 256.0 * 2.0;
  m.unit_activation_bytes = 3.0 * m.boundary_activation_bytes;
  m.activation_recompute = false;
  m.dataset = "CIFAR-100";
  m.sample_unit = "image";
  return m;
}

ModelProfile bert_large_profile() {
  ModelProfile m;
  m.name = "BERT-Large";
  m.parameters = 340e6;
  m.partition_units = 24;  // transformer layers
  m.tokens_per_sample = 128;
  m.mini_batch = 1024;
  m.micro_batch = 8;
  // ~2 FLOPs per parameter per token, forward.
  m.fwd_flops_per_sample = 2.0 * 340e6 * 128;
  m.effective_flops = 25e12;
  m.boundary_activation_bytes = 128.0 * 1024.0 * 2.0;  // seq x hidden fp16
  m.unit_activation_bytes = 17.0 * m.boundary_activation_bytes;
  m.activation_recompute = true;
  m.dataset = "WikiText-2";
  m.sample_unit = "token";
  return m;
}

ModelProfile gpt2_profile() {
  ModelProfile m;
  m.name = "GPT-2";
  m.parameters = 1.5e9;
  m.partition_units = 48;  // GPT-2 XL layers
  m.tokens_per_sample = 1024;
  m.mini_batch = 128;
  m.micro_batch = 1;
  m.fwd_flops_per_sample = 2.0 * 1.5e9 * 1024;
  m.effective_flops = 35e12;
  m.boundary_activation_bytes = 1024.0 * 1600.0 * 2.0;  // seq x hidden
  m.unit_activation_bytes = 17.0 * m.boundary_activation_bytes;
  m.activation_recompute = true;
  m.dataset = "WikiText-2";
  m.sample_unit = "token";
  return m;
}

ModelProfile gpt3_profile() {
  ModelProfile m;
  m.name = "GPT-3";
  m.parameters = 6.7e9;
  m.partition_units = 32;  // GPT-3 6.7B layers
  m.tokens_per_sample = 2048;
  m.mini_batch = 64;
  m.micro_batch = 1;
  m.fwd_flops_per_sample = 2.0 * 6.7e9 * 2048;
  m.effective_flops = 45e12;
  m.boundary_activation_bytes = 2048.0 * 4096.0 * 2.0;
  m.unit_activation_bytes = 17.0 * m.boundary_activation_bytes;
  m.activation_recompute = true;
  m.dataset = "WikiText-2";
  m.sample_unit = "token";
  return m;
}

std::vector<ModelProfile> model_zoo() {
  return {resnet152_profile(), vgg19_profile(), bert_large_profile(),
          gpt2_profile(), gpt3_profile()};
}

ModelProfile model_by_name(const std::string& name) {
  for (auto& m : model_zoo())
    if (m.name == name) return m;
  throw std::out_of_range("unknown model: " + name);
}

ModelProfile as_multi_gpu_node(ModelProfile base, int gpus_per_node) {
  if (gpus_per_node <= 1) return base;
  base.name += "-node" + std::to_string(gpus_per_node);
  base.effective_flops *= gpus_per_node;
  base.micro_batch = std::min(base.micro_batch * gpus_per_node,
                              base.mini_batch);
  return base;
}

std::vector<int> partition_layers(int units, int stages) {
  if (stages <= 0 || stages > units) return {};
  std::vector<int> out(static_cast<std::size_t>(stages), units / stages);
  // Distribute the remainder to the earliest stages (front stages hold
  // more in-flight activations, but the difference is one unit).
  for (int i = 0; i < units % stages; ++i) ++out[static_cast<std::size_t>(i)];
  return out;
}

}  // namespace parcae
