#include "model/memory_model.h"

#include <algorithm>
#include <limits>

namespace parcae {

MemoryModel::MemoryModel(ModelProfile model, MemorySpec spec)
    : model_(std::move(model)), spec_(spec) {}

double MemoryModel::budget_bytes() const {
  return spec_.gpu_memory_bytes * spec_.efficiency -
         spec_.framework_overhead_bytes;
}

double MemoryModel::stage_memory_bytes(int pipeline_depth) const {
  if (pipeline_depth <= 0 || pipeline_depth > model_.partition_units)
    return std::numeric_limits<double>::infinity();
  const double p = pipeline_depth;
  const double states = model_.parameters * spec_.state_bytes_per_param / p *
                        spec_.model_state_copies;
  const double micro = model_.micro_batch;
  double activations;
  if (model_.activation_recompute) {
    // 1F1B: stage 0 holds up to P boundary activations, plus the
    // recompute workspace of one partition unit.
    activations = p * model_.boundary_activation_bytes * micro +
                  model_.unit_activation_bytes * micro;
  } else {
    // Without recompute every in-flight microbatch keeps all unit
    // activations of this stage: (units/P per stage) x (P in flight)
    // = all units' activations once.
    activations = static_cast<double>(model_.partition_units) *
                  model_.unit_activation_bytes * micro;
  }
  // Redundancy-based systems also run their successor's computation,
  // doubling in-flight activation footprint.
  const double act_copies = spec_.model_state_copies > 1 ? 2.0 : 1.0;
  return states + activations * act_copies;
}

bool MemoryModel::fits(int pipeline_depth) const {
  return stage_memory_bytes(pipeline_depth) <= budget_bytes();
}

int MemoryModel::min_feasible_depth(int max_depth) const {
  const int limit = std::min(max_depth, model_.partition_units);
  for (int p = 1; p <= limit; ++p)
    if (fits(p)) return p;
  return -1;
}

}  // namespace parcae
