#include "fleet/election.h"

#include "runtime/kv_store.h"

namespace parcae::fleet {

LeaseElection::LeaseElection(KvStore* kv, std::string key, double ttl_s)
    : kv_(kv), key_(std::move(key)), ttl_s_(ttl_s) {}

bool LeaseElection::campaign(const std::string& candidate) {
  if (is_holder() && candidate_ == candidate) return true;
  const auto existing = kv_->get(key_);
  if (existing.has_value()) return false;  // live incumbent
  // CAS-acquire: create-only (expected version 0) so two simultaneous
  // campaigns serialize — exactly one create wins.
  if (!kv_->cas(key_, 0, candidate)) return false;
  // Bind the seat to a fresh liveness lease. cas() cannot attach a
  // lease, so rebind the key under one (put_with_lease re-homes the
  // entry); we already own the seat, so this overwrite races nobody.
  lease_ = kv_->lease_grant(ttl_s_);
  if (kv_->put_with_lease(key_, candidate, lease_) == 0) {
    // Lease died between grant and put (zero/negative TTL): no seat.
    lease_ = 0;
    return false;
  }
  candidate_ = candidate;
  return true;
}

std::optional<std::string> LeaseElection::holder() const {
  const auto entry = kv_->get(key_);
  if (!entry.has_value()) return std::nullopt;
  return entry->value;
}

bool LeaseElection::is_holder() const {
  if (lease_ == 0 || !kv_->lease_alive(lease_)) return false;
  const auto entry = kv_->get(key_);
  return entry.has_value() && entry->value == candidate_;
}

bool LeaseElection::renew() {
  if (lease_ == 0) return false;
  if (!kv_->lease_keepalive(lease_)) {
    lease_ = 0;  // expired underneath us; seat already tombstoned
    return false;
  }
  return true;
}

void LeaseElection::resign() {
  if (lease_ == 0) return;
  kv_->lease_revoke(lease_);
  lease_ = 0;
  candidate_.clear();
}

}  // namespace parcae::fleet
