#include "fleet/election.h"

#include "runtime/kv_store.h"

namespace parcae::fleet {

LeaseElection::LeaseElection(KvStore* kv, std::string key, double ttl_s)
    : kv_(kv), key_(std::move(key)), ttl_s_(ttl_s) {}

bool LeaseElection::campaign(const std::string& candidate) {
  if (is_holder() && candidate_ == candidate) return true;
  const auto existing = kv_->get(key_);
  if (existing.has_value()) return false;  // live incumbent
  // CAS-acquire: create-only (expected version 0) so two simultaneous
  // campaigns serialize — exactly one create wins.
  if (!kv_->cas(key_, 0, candidate)) return false;
  // Bind the seat to a fresh liveness lease. cas() cannot attach a
  // lease, so rebind the key under one (put_with_lease re-homes the
  // entry); we already own the seat, so this overwrite races nobody.
  lease_ = kv_->lease_grant(ttl_s_);
  if (kv_->put_with_lease(key_, candidate, lease_) == 0) {
    // Lease died between grant and put (zero/negative TTL): no seat.
    lease_ = 0;
    return false;
  }
  candidate_ = candidate;
  return true;
}

std::optional<std::string> LeaseElection::holder() const {
  const auto entry = kv_->get(key_);
  if (!entry.has_value()) return std::nullopt;
  return entry->value;
}

bool LeaseElection::is_holder() const {
  if (lease_ == 0 || !kv_->lease_alive(lease_)) return false;
  const auto entry = kv_->get(key_);
  return entry.has_value() && entry->value == candidate_;
}

bool LeaseElection::renew() {
  if (lease_ == 0) return false;
  if (!kv_->lease_keepalive(lease_)) {
    lease_ = 0;  // expired underneath us; seat already tombstoned
    return false;
  }
  return true;
}

void LeaseElection::resign() {
  if (lease_ == 0) return;
  kv_->lease_revoke(lease_);
  lease_ = 0;
  candidate_.clear();
}

void StandbyMonitor::start(double now_s) {
  started_ = true;
  last_healthy_s_ = now_s;
  failed_probes_ = 0;
}

void StandbyMonitor::record_probe(bool healthy, double now_s) {
  if (!started_) start(now_s);
  if (healthy) {
    last_healthy_s_ = now_s;
    failed_probes_ = 0;
  } else {
    ++failed_probes_;
  }
}

bool StandbyMonitor::should_take_over(double now_s) const {
  if (!started_) return false;
  return failed_probes_ >= options_.min_failed_probes &&
         silent_for(now_s) >= options_.takeover_after_s;
}

double StandbyMonitor::silent_for(double now_s) const {
  if (!started_) return 0.0;
  return now_s - last_healthy_s_;
}

}  // namespace parcae::fleet
