// Fleet simulator: N Parcae jobs multiplexed over one shared spot
// pool.
//
// The single-job ClusterSimulator answers "what does one Parcae job
// commit on this trace?". This layer answers the fleet question: given
// one preemptible pool (a Table-1 trace) and many jobs with weights
// and heterogeneous models, how much weighted liveput does the whole
// fleet commit, and how fairly is the pool divided?
//
// Two allocation regimes are simulated over the same pool trace:
//   - arbiter: the FleetArbiter rebalances leases every interval
//     (weighted max-min growth, minimal marginal-loss revocation,
//     objective-improving swaps);
//   - static partitioning (the baseline): the pool is split once by
//     weight (largest-remainder apportionment) and each job rides its
//     fixed slice — preemptions hit slices proportionally, and no
//     instance ever moves between jobs.
// Each job then runs its own full Parcae stack (SchedulerCore inside
// ParcaePolicy under the interval simulator) over its per-interval
// grant series, exposed to it as a SeriesPoolView lease view — the job
// never sees the pool, only its lease.
//
// Determinism: job j's scheduler seed is fleet_job_seed(fleet_seed, j)
// (the FaultInjector forking scheme), so a fleet run replays
// bit-for-bit and adding a job never perturbs the streams of the
// others. Per-job metrics land in a shared registry under the
// "job<j>." prefix; arbiter decisions under "fleet.*".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet_arbiter.h"
#include "fleet/instance_pool.h"
#include "obs/metrics.h"
#include "trace/spot_trace.h"

namespace parcae {

class KvStore;
class SloEngine;

namespace fleet {

struct FleetJobSpec {
  int job_id = -1;
  // Profile name resolved through model_by_name ("GPT-2", "BERT-Large",
  // "ResNet-152", "VGG-19", "GPT-3").
  std::string model = "GPT-2";
  double weight = 1.0;
};

struct FleetSimOptions {
  std::uint64_t fleet_seed = 42;
  double interval_s = 60.0;
  // Pool capacity; clamps the trace (Table-1 segments use 32).
  int capacity = 32;
  // Per-job decision-engine knobs (kept cheap: a 100-job fleet runs
  // 100 full Parcae stacks).
  int lookahead = 6;
  int history = 8;
  int mc_trials = 16;
  // Event-driven per-job scheduling (mode=event in fleet_sim_cli):
  // each job's core re-optimizes on lease-change events instead of
  // every tick (SchedulerCoreOptions::event_driven).
  bool event_driven = false;
  double debounce_ms = 250.0;
  // Optional shared sinks. Metrics get fleet.* and job<j>.* names;
  // `kv` arms the arbiter's leader election.
  obs::MetricsRegistry* metrics = nullptr;
  KvStore* kv = nullptr;
  double swap_margin = 0.05;
  // SLO rule engine (non-owning, optional; needs `metrics`). Evaluated
  // once per regime against the FleetAggregator rollup of the shared
  // registry, so rules can target fleet-wide names no single registry
  // holds — "fleet.sim.preemptions" (sum over jobs), gauge maxima like
  // "fleet.fleet.normalized_liveput.max", or pass-through "fleet.*"
  // arbiter counters. Rate rules see the delta between regimes.
  SloEngine* slo = nullptr;
};

struct FleetJobResult {
  int job_id = -1;
  std::string model;
  double weight = 1.0;
  // Instances granted per interval (the job's lease series).
  std::vector<int> grants;
  double committed_samples = 0.0;
  // Liveput normalized by the job's throughput at pool capacity (the
  // value-table currency) — comparable across models.
  double normalized_liveput = 0.0;
  double mean_grant = 0.0;
};

struct FleetSimResult {
  std::string trace;
  std::string regime;  // "arbiter" | "static"
  int jobs = 0;
  int intervals = 0;
  // The fleet objective: sum_j weight_j * normalized_liveput_j.
  double weighted_liveput = 0.0;
  // Mean over intervals of the misallocated pool fraction
  // sum_j |grant_j - fair_j| / (2 * pool): 0 = exactly the weighted
  // fair share every interval.
  double weighted_share_deviation = 0.0;
  long long lease_grants = 0;
  long long lease_revocations = 0;
  // "tick" or "event (debounce_ms=...)": how the per-job cores decided
  // when to re-optimize.
  std::string scheduler_mode = "tick";
  std::vector<FleetJobResult> per_job;
  obs::MetricsSnapshot metrics;

  std::string to_string() const;
};

// A standard heterogeneous fleet: jobs cycle through GPT-2,
// BERT-Large, ResNet-152, VGG-19 with weights cycling 1.0/2.0/1.0/0.5.
std::vector<FleetJobSpec> standard_fleet(int num_jobs);

class FleetSimulator {
 public:
  FleetSimulator(std::vector<FleetJobSpec> jobs, FleetSimOptions options);

  // Arbiter regime: FleetArbiter leases, then one full Parcae run per
  // job over its lease view.
  FleetSimResult run(const SpotTrace& pool_trace);

  // Static-partitioning baseline over the same pool and jobs.
  FleetSimResult run_static(const SpotTrace& pool_trace);

  // The fixed slice each job owns under static partitioning
  // (largest-remainder apportionment of `capacity` by weight).
  std::vector<int> static_slices(int capacity) const;

 private:
  // Run every job's Parcae stack over its grant series and assemble
  // the result (shared by both regimes).
  FleetSimResult integrate(const SpotTrace& pool_trace,
                           const std::string& regime,
                           const std::vector<std::vector<int>>& grant_series,
                           const FleetArbiter& arbiter);

  std::vector<FleetJobSpec> jobs_;
  FleetSimOptions options_;
};

}  // namespace fleet
}  // namespace parcae
