// InstanceLease: the unit of instance ownership the FleetArbiter
// grants and revokes.
//
// A lease binds a count of pool instances to one job. The arbiter
// resizes leases at interval boundaries (grants when the pool grows or
// fairness demands it, revocations when it shrinks or a swap moves
// capacity to a higher-value job); the LeaseLedger keeps the full
// audit trail — every resize with its interval, direction, and reason
// — plus the revocation-latency accounting that flows into the
// fleet.* metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parcae::fleet {

struct InstanceLease {
  std::uint64_t id = 0;       // ledger-assigned, stable for the run
  int job_id = -1;
  int count = 0;              // instances currently held
  int granted_interval = 0;   // interval the lease was opened
  int last_change_interval = 0;
};

// Why a lease changed size.
enum class LeaseChangeReason {
  kInitialGrant,   // lease opened
  kPoolGrowth,     // pool grew; fairness water-fill granted more
  kPoolShrink,     // pool shrank; arbitration revoked
  kValueSwap,      // instance moved toward higher marginal liveput
};

const char* lease_change_reason_name(LeaseChangeReason reason);

struct LeaseChange {
  int interval = 0;
  int job_id = -1;
  int delta = 0;   // signed instance-count change
  LeaseChangeReason reason = LeaseChangeReason::kInitialGrant;
};

// Append-only record of every lease resize in a fleet run.
class LeaseLedger {
 public:
  // Opens a lease for `job_id` (count 0) and returns it.
  InstanceLease& open(int job_id, int interval);

  // Records a resize of `job_id`'s lease.
  void record(int job_id, int interval, int delta, LeaseChangeReason reason);

  const std::vector<InstanceLease>& leases() const { return leases_; }
  const std::vector<LeaseChange>& changes() const { return changes_; }

  InstanceLease& lease_for(int job_id) { return leases_.at(job_id); }
  const InstanceLease& lease_for(int job_id) const {
    return leases_.at(job_id);
  }

  // Totals by direction.
  long long instances_granted() const { return granted_; }
  long long instances_revoked() const { return revoked_; }

  std::string to_string() const;

 private:
  std::vector<InstanceLease> leases_;  // indexed by job_id
  std::vector<LeaseChange> changes_;
  std::uint64_t next_id_ = 1;
  long long granted_ = 0;
  long long revoked_ = 0;
};

}  // namespace parcae::fleet
