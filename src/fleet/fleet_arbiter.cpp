#include "fleet/fleet_arbiter.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"
#include "parallel/throughput_model.h"
#include "runtime/kv_store.h"

namespace parcae::fleet {

namespace {

double wall_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Upper concave hull of a non-decreasing value curve: the smallest
// concave majorant, computed as the convex-hull upper chain over the
// points (n, value[n]). Hull marginals are non-increasing in n, which
// is what makes one-instance-at-a-time greedy arbitration sound.
std::vector<double> concave_hull(const std::vector<double>& value) {
  const std::size_t n = value.size();
  std::vector<std::size_t> stack;  // hull vertex indices
  for (std::size_t i = 0; i < n; ++i) {
    while (stack.size() >= 2) {
      const std::size_t a = stack[stack.size() - 2];
      const std::size_t b = stack[stack.size() - 1];
      // Pop b when it lies on or below chord a->i (keeps the chain
      // concave).
      const double lhs = (value[b] - value[a]) * static_cast<double>(i - a);
      const double rhs = (value[i] - value[a]) * static_cast<double>(b - a);
      if (lhs <= rhs)
        stack.pop_back();
      else
        break;
    }
    stack.push_back(i);
  }
  std::vector<double> hull(n);
  for (std::size_t s = 0; s + 1 < stack.size(); ++s) {
    const std::size_t a = stack[s];
    const std::size_t b = stack[s + 1];
    for (std::size_t i = a; i <= b; ++i) {
      const double t = static_cast<double>(i - a) / static_cast<double>(b - a);
      hull[i] = value[a] + t * (value[b] - value[a]);
    }
  }
  if (stack.size() == 1) hull[stack.front()] = value[stack.front()];
  return hull;
}

}  // namespace

int JobValueTable::usable_max() const {
  for (int n = capacity(); n >= 1; --n)
    if (value[static_cast<std::size_t>(n)] >
        value[static_cast<std::size_t>(n) - 1])
      return n;
  return 0;
}

JobValueTable value_table_from_model(const ThroughputModel& model,
                                     int capacity) {
  JobValueTable table;
  table.value.assign(static_cast<std::size_t>(capacity) + 1, 0.0);
  for (int n = 1; n <= capacity; ++n) {
    const double t = model.throughput(model.best_config(n));
    // Monotone: more instances never hurt (the job can idle extras).
    table.value[static_cast<std::size_t>(n)] =
        std::max(t, table.value[static_cast<std::size_t>(n) - 1]);
  }
  const double reference = table.value.back();
  if (reference > 0.0)
    for (double& v : table.value) v /= reference;
  return table;
}

FleetArbiter::FleetArbiter(std::vector<ArbiterJobSpec> jobs,
                           FleetArbiterOptions options)
    : jobs_(std::move(jobs)),
      options_(options),
      election_(options.kv, "fleet/arbiter", options.election_ttl_s) {
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].job_id != static_cast<int>(j))
      throw std::invalid_argument(
          "FleetArbiter: job_ids must be dense and in order");
    if (jobs_[j].values.capacity() < options_.capacity)
      jobs_[j].values.value.resize(
          static_cast<std::size_t>(options_.capacity) + 1,
          jobs_[j].values.value.empty() ? 0.0 : jobs_[j].values.value.back());
    hull_.push_back(concave_hull(jobs_[j].values.value));
  }
  grants_.assign(jobs_.size(), 0);
  for (std::size_t j = 0; j < jobs_.size(); ++j)
    ledger_.open(static_cast<int>(j), 0);
}

double FleetArbiter::marginal_gain(int job, int g) const {
  const auto& hull = hull_[static_cast<std::size_t>(job)];
  if (g < 0 || g + 1 >= static_cast<int>(hull.size())) return 0.0;
  return hull[static_cast<std::size_t>(g) + 1] -
         hull[static_cast<std::size_t>(g)];
}

double FleetArbiter::marginal_loss(int job, int g) const {
  const auto& hull = hull_[static_cast<std::size_t>(job)];
  if (g <= 0 || g >= static_cast<int>(hull.size())) return 0.0;
  return hull[static_cast<std::size_t>(g)] -
         hull[static_cast<std::size_t>(g) - 1];
}

std::vector<int> FleetArbiter::fair_shares(int pool_available) const {
  std::vector<int> share(jobs_.size(), 0);
  int remaining = std::min(pool_available, options_.capacity);
  while (remaining > 0) {
    int pick = -1;
    double best = 0.0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (share[j] >= jobs_[j].values.usable_max()) continue;
      const double normalized =
          static_cast<double>(share[j] + 1) / jobs_[j].weight;
      if (pick < 0 || normalized < best) {
        pick = static_cast<int>(j);
        best = normalized;
      }
    }
    if (pick < 0) break;  // every job capped; leave the rest unleased
    ++share[static_cast<std::size_t>(pick)];
    --remaining;
  }
  return share;
}

double FleetArbiter::weighted_value(const std::vector<int>& grants) const {
  double total = 0.0;
  for (std::size_t j = 0; j < jobs_.size() && j < grants.size(); ++j) {
    const auto& v = jobs_[j].values.value;
    const int g = std::clamp(grants[j], 0, static_cast<int>(v.size()) - 1);
    total += jobs_[j].weight * v[static_cast<std::size_t>(g)];
  }
  return total;
}

void FleetArbiter::revoke_one(int interval, LeaseChangeReason reason) {
  // Smallest marginal liveput loss per weight yields; ties go to the
  // job furthest over its weighted share, then to the higher id.
  int pick = -1;
  double best_loss = 0.0;
  double best_over = 0.0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (grants_[j] <= 0) continue;
    const double loss =
        marginal_loss(static_cast<int>(j), grants_[j]) / jobs_[j].weight;
    const double over = static_cast<double>(grants_[j]) / jobs_[j].weight;
    const bool better =
        pick < 0 || loss < best_loss ||
        (loss == best_loss &&
         (over > best_over ||
          (over == best_over && static_cast<int>(j) > pick)));
    if (better) {
      pick = static_cast<int>(j);
      best_loss = loss;
      best_over = over;
    }
  }
  if (pick < 0) return;
  --grants_[static_cast<std::size_t>(pick)];
  ledger_.record(pick, interval, -1, reason);
}

bool FleetArbiter::grant_one(int interval, LeaseChangeReason reason) {
  // Weighted max-min toward the fair share, capped at usable_max;
  // ties go to the higher marginal gain, then to the lower id.
  int pick = -1;
  double best_share = 0.0;
  double best_gain = 0.0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (grants_[j] >= jobs_[j].values.usable_max()) continue;
    const double share = static_cast<double>(grants_[j] + 1) / jobs_[j].weight;
    const double gain = marginal_gain(static_cast<int>(j), grants_[j]);
    const bool better =
        pick < 0 || share < best_share ||
        (share == best_share &&
         (gain > best_gain ||
          (gain == best_gain && static_cast<int>(j) < pick)));
    if (better) {
      pick = static_cast<int>(j);
      best_share = share;
      best_gain = gain;
    }
  }
  if (pick < 0) return false;
  ++grants_[static_cast<std::size_t>(pick)];
  ledger_.record(pick, interval, +1, reason);
  return true;
}

const std::vector<int>& FleetArbiter::rebalance(int interval,
                                                int pool_available) {
  const auto begin = std::chrono::steady_clock::now();
  obs::MetricsRegistry* metrics = options_.metrics;
  pool_available = std::clamp(pool_available, 0, options_.capacity);

  // Leadership: claim the seat once, renew every pass, re-campaign if
  // the lease lapsed (e.g. the logical clock jumped past the TTL).
  if (options_.kv != nullptr) {
    if (!campaigned_ || !election_.renew()) {
      if (election_.campaign("arbiter")) {
        campaigned_ = true;
        if (metrics) metrics->counter("fleet.elections_won").inc();
      }
    }
  }

  int held = 0;
  for (const int g : grants_) held += g;
  int delta = pool_available - held;

  int revoked = 0;
  if (delta < 0) {
    const auto shrink_begin = std::chrono::steady_clock::now();
    while (delta < 0) {
      revoke_one(interval, LeaseChangeReason::kPoolShrink);
      ++revoked;
      ++delta;
    }
    if (metrics) {
      metrics->counter("fleet.revocations").add(revoked);
      // Latency from pool-shrink observation to a complete revocation
      // decision — the arbiter-side share of preemption reaction time.
      metrics->histogram("fleet.revocation_latency_us")
          .observe(wall_us(shrink_begin));
    }
  }
  int granted = 0;
  while (delta > 0 && grant_one(interval, LeaseChangeReason::kPoolGrowth)) {
    ++granted;
    --delta;
  }
  if (metrics && granted > 0)
    metrics->counter("fleet.grants").add(granted);

  // Objective-improving swaps: move an instance from the cheapest
  // lease to the most valuable one while Σ w·value strictly improves
  // past the hysteresis margin. Hull concavity drives this to a fixed
  // point; the iteration bound is a backstop.
  int swaps = 0;
  for (int round = 0; round < 4 * options_.capacity; ++round) {
    int donor = -1, taker = -1;
    double donor_cost = 0.0, taker_gain = 0.0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (grants_[j] > 0) {
        const double cost =
            jobs_[j].weight * marginal_loss(static_cast<int>(j), grants_[j]);
        if (donor < 0 || cost < donor_cost) {
          donor = static_cast<int>(j);
          donor_cost = cost;
        }
      }
      if (grants_[j] < jobs_[j].values.usable_max()) {
        const double gain =
            jobs_[j].weight * marginal_gain(static_cast<int>(j), grants_[j]);
        if (taker < 0 || gain > taker_gain) {
          taker = static_cast<int>(j);
          taker_gain = gain;
        }
      }
    }
    if (donor < 0 || taker < 0 || donor == taker) break;
    if (taker_gain <= donor_cost * (1.0 + options_.swap_margin)) break;
    --grants_[static_cast<std::size_t>(donor)];
    ++grants_[static_cast<std::size_t>(taker)];
    ledger_.record(donor, interval, -1, LeaseChangeReason::kValueSwap);
    ledger_.record(taker, interval, +1, LeaseChangeReason::kValueSwap);
    ++swaps;
  }

  if (metrics) {
    metrics->counter("fleet.rebalances").inc();
    if (swaps > 0) metrics->counter("fleet.swaps").add(swaps);
    metrics->gauge("fleet.pool_available").set(pool_available);
    int leased = 0;
    for (const int g : grants_) leased += g;
    metrics->gauge("fleet.unleased").set(pool_available - leased);
    for (std::size_t j = 0; j < jobs_.size(); ++j)
      metrics->gauge("fleet.job" + std::to_string(j) + ".share")
          .set(grants_[j]);
    metrics->histogram("fleet.decision_us").observe(wall_us(begin));
  }
  return grants_;
}

bool FleetArbiter::holds_leadership() const {
  return options_.kv != nullptr && election_.is_holder();
}

}  // namespace parcae::fleet
