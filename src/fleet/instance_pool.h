// Instance ownership as a *lease view* rather than the raw trace.
//
// Parcae's single-job pipeline reads availability straight off a
// SpotTrace; a shared preemptible pool hosting many jobs cannot work
// that way — each job sees only the instances the FleetArbiter leased
// to it. InstancePoolView is that boundary: "the instances this
// consumer may use, per interval". Executor backends (SchedulerCore's
// oracle mode, the ClusterSimulator, SpotTrainingDriver) consume a
// view; whether it is the whole pool (TracePoolView — the trace-backed
// single-job adapter, bit-identical to the historical direct-trace
// path) or an arbiter-granted slice (SeriesPoolView over the job's
// grant history) is invisible to them.
//
// Header-only on purpose: core and runtime consume the interface
// without linking the fleet library (which depends on runtime for the
// fleet simulator), keeping the library graph acyclic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/spot_trace.h"

namespace parcae {

// Read-only view of the instances leased to one consumer over time.
class InstancePoolView {
 public:
  virtual ~InstancePoolView() = default;

  virtual const std::string& name() const = 0;
  // Most instances this view can ever grant.
  virtual int capacity() const = 0;
  virtual double duration_s() const = 0;

  // Leased-instance count sampled at interval starts: N_i = leased at
  // i * interval_s, for i in [0, floor(duration / interval_s)) — the
  // same series semantics as SpotTrace::availability_series.
  virtual std::vector<int> availability_series(double interval_s) const = 0;

  // The event-level trace behind this view when it is a whole-pool
  // window (nullptr for arbiter-granted leases). Executors that replay
  // sub-interval event timing (TraceCloudProvider) use it to stay
  // bit-identical with the historical direct-trace path.
  virtual const SpotTrace* backing_trace() const { return nullptr; }
};

// Whole-pool view over a SpotTrace: the single-job adapter. Owns or
// borrows the trace; availability == the trace's availability.
class TracePoolView final : public InstancePoolView {
 public:
  explicit TracePoolView(SpotTrace trace)
      : owned_(std::move(trace)), trace_(&owned_) {}
  // Non-owning; `trace` must outlive the view.
  explicit TracePoolView(const SpotTrace* trace)
      : trace_(trace) {}

  const std::string& name() const override { return trace_->name(); }
  int capacity() const override { return trace_->capacity(); }
  double duration_s() const override { return trace_->duration_s(); }
  std::vector<int> availability_series(double interval_s) const override {
    return trace_->availability_series(interval_s);
  }
  const SpotTrace* backing_trace() const override { return trace_; }

 private:
  SpotTrace owned_;
  const SpotTrace* trace_;
};

// Lease view from an explicit per-interval grant series (what a fleet
// job receives: its own grant history, not the pool's).
class SeriesPoolView final : public InstancePoolView {
 public:
  SeriesPoolView(std::string name, std::vector<int> series, int capacity,
                 double interval_s = 60.0)
      : name_(std::move(name)),
        series_(std::move(series)),
        capacity_(capacity),
        interval_s_(interval_s) {}

  const std::string& name() const override { return name_; }
  int capacity() const override { return capacity_; }
  double duration_s() const override {
    return static_cast<double>(series_.size()) * interval_s_;
  }
  std::vector<int> availability_series(double interval_s) const override {
    if (interval_s == interval_s_ || series_.empty()) return series_;
    // Resample by time (views are rarely re-quantized; correctness
    // over speed).
    std::vector<int> out;
    const auto n = static_cast<std::size_t>(duration_s() / interval_s);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto src = static_cast<std::size_t>(
          static_cast<double>(i) * interval_s / interval_s_);
      if (src >= series_.size()) src = series_.size() - 1;
      out.push_back(series_[src]);
    }
    return out;
  }

  const std::vector<int>& series() const { return series_; }

 private:
  std::string name_;
  std::vector<int> series_;
  int capacity_;
  double interval_s_;
};

// Stable 64-bit FNV-1a hash (the FaultInjector per-point scheme: one
// shared constant namespace, independent streams per name).
inline std::uint64_t fleet_hash_name(std::string_view name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Forks job `job_id`'s seed from the fleet seed the way FaultInjector
// forks per-point streams: seed ^ FNV-1a("job<id>"). Adding or
// removing jobs never perturbs another job's stream, so fleet runs
// replay bit-for-bit regardless of job count or interleaving.
inline std::uint64_t fleet_job_seed(std::uint64_t fleet_seed, int job_id) {
  return fleet_seed ^ fleet_hash_name("job" + std::to_string(job_id));
}

}  // namespace parcae
