// FleetArbiter: one owner for the shared spot pool, N Parcae jobs.
//
// The single-job system lets SchedulerCore believe the whole trace is
// its cluster. At fleet scale that ownership moves here: the arbiter
// holds one InstanceLease per job and resizes them at every interval
// boundary, and each job's SchedulerCore sees only its lease view.
// The design follows Singularity's global preemption-aware arbiter
// (PAPERS.md) specialized to Parcae's liveput machinery:
//
//   fairness   — weighted max-min (dominant-share weights): pool
//                growth water-fills grants toward the per-job fair
//                share grant_j / w_j, capped at the job's usable
//                maximum (instances beyond which its marginal liveput
//                is zero);
//   preemption — when the pool shrinks, revoke from the job whose
//                *marginal liveput loss per weight* is smallest,
//                reusing the job's DP value table (the liveput DP's
//                terminal value row: best achievable throughput per
//                instance count, normalized so models of different
//                scales compare);
//   objective  — maximize Σ_j w_j · liveput_j: after fairness and
//                arbitration, bounded greedy swaps move instances from
//                the lowest marginal-loss lease to the highest
//                marginal-gain one while the fleet objective strictly
//                improves.
//
// Marginals are read off the upper concave hull of each value table,
// so a job whose value jumps at its minimum feasible depth (GPT-3
// needs 9 instances before a single sample commits) is credited with
// the amortized gain of reaching the jump instead of a flat zero —
// plain per-step marginals would never climb such a plateau.
//
// Decisions, per-job shares, and revocation latencies flow into the
// metrics registry under fleet.* (fleet.rebalances, fleet.grants,
// fleet.revocations, fleet.swaps, fleet.unleased, per-job share
// gauges, decision-latency histograms). All decision logic is
// deterministic — wall-clock only feeds latency histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/election.h"
#include "fleet/lease.h"

namespace parcae {

class KvStore;
class ThroughputModel;

namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace fleet {

// The liveput DP's terminal value row for one job: value[n] = best
// achievable throughput with n instances, normalized to the job's
// throughput at pool capacity (so a GPT-3 job and a VGG job bid in
// the same currency). Non-decreasing by construction.
struct JobValueTable {
  std::vector<double> value;  // size = capacity + 1, value[0] == 0

  int capacity() const { return static_cast<int>(value.size()) - 1; }
  // Largest n whose value still exceeds value[n-1]: instances past
  // this are worthless to the job.
  int usable_max() const;
};

// Builds the table from the job's throughput model (the same
// best_config curve the liveput DP maximizes over).
JobValueTable value_table_from_model(const ThroughputModel& model,
                                     int capacity);

struct ArbiterJobSpec {
  int job_id = -1;
  double weight = 1.0;
  JobValueTable values;
};

struct FleetArbiterOptions {
  int capacity = 32;
  std::uint64_t seed = 42;
  // Non-owning metric sink for the fleet.* instruments; nullptr keeps
  // the arbiter silent.
  obs::MetricsRegistry* metrics = nullptr;
  // Optional election substrate: when set, the arbiter CAS-acquires
  // the "fleet/arbiter" seat under a TTL lease before its first
  // decision and renews it on every rebalance — the HA hook a standby
  // arbiter would contest.
  KvStore* kv = nullptr;
  double election_ttl_s = 150.0;
  // A value swap must improve the weighted fleet objective by more
  // than this fraction of the loser's marginal loss (hysteresis
  // against churn between near-equal jobs).
  double swap_margin = 0.05;
};

class FleetArbiter {
 public:
  FleetArbiter(std::vector<ArbiterJobSpec> jobs, FleetArbiterOptions options);

  // One arbitration pass: resize leases so that Σ grants <=
  // pool_available, revoking by minimal marginal-loss-per-weight on
  // shrink, water-filling by weighted fairness on growth, then
  // applying bounded objective-improving swaps. Returns the per-job
  // grant vector (indexed by job id). Deterministic.
  const std::vector<int>& rebalance(int interval, int pool_available);

  const std::vector<int>& grants() const { return grants_; }
  const LeaseLedger& ledger() const { return ledger_; }

  // The pure weighted-fairness target for this pool size (capped
  // water-fill, no value term) — the yardstick fairness deviation is
  // measured against.
  std::vector<int> fair_shares(int pool_available) const;

  // Σ_j w_j * value_j[g_j] for a grant vector (the fleet objective).
  double weighted_value(const std::vector<int>& grants) const;

  int jobs() const { return static_cast<int>(jobs_.size()); }
  int capacity() const { return options_.capacity; }
  bool holds_leadership() const;

 private:
  // Amortized marginal gain of granting job j its (g+1)th instance /
  // loss of revoking its gth, read off the concave hull.
  double marginal_gain(int job, int g) const;
  double marginal_loss(int job, int g) const;
  void revoke_one(int interval, LeaseChangeReason reason);
  bool grant_one(int interval, LeaseChangeReason reason);

  std::vector<ArbiterJobSpec> jobs_;
  FleetArbiterOptions options_;
  // Per-job upper concave hull of the value table (hull[j][n] >=
  // value[n], concave, non-decreasing).
  std::vector<std::vector<double>> hull_;
  std::vector<int> grants_;
  LeaseLedger ledger_;
  LeaseElection election_;
  bool campaigned_ = false;
};

}  // namespace fleet
}  // namespace parcae
