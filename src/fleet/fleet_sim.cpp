#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/table.h"
#include "core/slo.h"
#include "model/model_profile.h"
#include "obs/exporter.h"
#include "parallel/throughput_model.h"
#include "runtime/cluster_sim.h"
#include "runtime/parcae_policy.h"

namespace parcae::fleet {

namespace {

// Throughput of the job's best configuration at pool capacity — the
// reference that makes liveput comparable across models (the same
// normalization value_table_from_model applies).
double reference_throughput(const ModelProfile& profile, int capacity) {
  const ThroughputModel model(profile, {});
  return model.throughput(model.best_config(capacity));
}

}  // namespace

std::vector<FleetJobSpec> standard_fleet(int num_jobs) {
  static const char* kModels[] = {"GPT-2", "BERT-Large", "ResNet-152",
                                  "VGG-19"};
  static const double kWeights[] = {1.0, 2.0, 1.0, 0.5};
  std::vector<FleetJobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(num_jobs));
  for (int j = 0; j < num_jobs; ++j) {
    FleetJobSpec spec;
    spec.job_id = j;
    spec.model = kModels[j % 4];
    spec.weight = kWeights[j % 4];
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

FleetSimulator::FleetSimulator(std::vector<FleetJobSpec> jobs,
                               FleetSimOptions options)
    : jobs_(std::move(jobs)), options_(options) {}

std::vector<int> FleetSimulator::static_slices(int capacity) const {
  // Largest-remainder apportionment of the pool by weight.
  double total_weight = 0.0;
  for (const FleetJobSpec& job : jobs_) total_weight += job.weight;
  std::vector<int> slice(jobs_.size(), 0);
  if (total_weight <= 0.0 || jobs_.empty()) return slice;
  std::vector<double> remainder(jobs_.size(), 0.0);
  int assigned = 0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const double quota =
        static_cast<double>(capacity) * jobs_[j].weight / total_weight;
    slice[j] = static_cast<int>(quota);
    remainder[j] = quota - static_cast<double>(slice[j]);
    assigned += slice[j];
  }
  std::vector<std::size_t> order(jobs_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&remainder](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t r = 0; assigned < capacity && r < order.size();
       ++r, ++assigned)
    ++slice[order[r]];
  return slice;
}

FleetSimResult FleetSimulator::run(const SpotTrace& pool_trace) {
  std::vector<ArbiterJobSpec> specs;
  specs.reserve(jobs_.size());
  for (const FleetJobSpec& job : jobs_) {
    ArbiterJobSpec spec;
    spec.job_id = job.job_id;
    spec.weight = job.weight;
    spec.values = value_table_from_model(
        ThroughputModel(model_by_name(job.model), {}), options_.capacity);
    specs.push_back(std::move(spec));
  }
  FleetArbiterOptions arbiter_options;
  arbiter_options.capacity = options_.capacity;
  arbiter_options.seed = options_.fleet_seed;
  arbiter_options.metrics = options_.metrics;
  arbiter_options.kv = options_.kv;
  arbiter_options.swap_margin = options_.swap_margin;
  FleetArbiter arbiter(std::move(specs), arbiter_options);

  const std::vector<int> pool =
      pool_trace.availability_series(options_.interval_s);
  std::vector<std::vector<int>> grant_series(
      jobs_.size(), std::vector<int>(pool.size(), 0));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const std::vector<int>& grants =
        arbiter.rebalance(static_cast<int>(i), pool[i]);
    for (std::size_t j = 0; j < jobs_.size(); ++j)
      grant_series[j][i] = grants[j];
  }
  return integrate(pool_trace, "arbiter", grant_series, arbiter);
}

FleetSimResult FleetSimulator::run_static(const SpotTrace& pool_trace) {
  // The baseline still needs value tables — only for the fairness
  // yardstick (fair_shares), never for allocation.
  std::vector<ArbiterJobSpec> specs;
  specs.reserve(jobs_.size());
  for (const FleetJobSpec& job : jobs_) {
    ArbiterJobSpec spec;
    spec.job_id = job.job_id;
    spec.weight = job.weight;
    spec.values = value_table_from_model(
        ThroughputModel(model_by_name(job.model), {}), options_.capacity);
    specs.push_back(std::move(spec));
  }
  FleetArbiterOptions arbiter_options;
  arbiter_options.capacity = options_.capacity;
  arbiter_options.seed = options_.fleet_seed;
  const FleetArbiter yardstick(std::move(specs), arbiter_options);

  const std::vector<int> slice = static_slices(options_.capacity);
  const std::vector<int> pool =
      pool_trace.availability_series(options_.interval_s);
  std::vector<std::vector<int>> grant_series(
      jobs_.size(), std::vector<int>(pool.size(), 0));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    // Preemptions hit every fixed slice proportionally (instances are
    // assigned to partitions up front, and the cloud does not know
    // about partitions): job j keeps round(avail * slice_j / capacity),
    // largest remainders first, capped at its slice.
    const int avail = std::clamp(pool[i], 0, options_.capacity);
    std::vector<double> quota(jobs_.size(), 0.0);
    int assigned = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      quota[j] = static_cast<double>(avail) * slice[j] /
                 std::max(1, options_.capacity);
      grant_series[j][i] =
          std::min(slice[j], static_cast<int>(quota[j]));
      quota[j] -= static_cast<double>(grant_series[j][i]);
      assigned += grant_series[j][i];
    }
    std::vector<std::size_t> order(jobs_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&quota](std::size_t a, std::size_t b) {
                       return quota[a] > quota[b];
                     });
    for (std::size_t r = 0; assigned < avail && r < order.size(); ++r) {
      const std::size_t j = order[r];
      if (grant_series[j][i] >= slice[j]) continue;
      ++grant_series[j][i];
      ++assigned;
    }
  }
  return integrate(pool_trace, "static", grant_series, yardstick);
}

FleetSimResult FleetSimulator::integrate(
    const SpotTrace& pool_trace, const std::string& regime,
    const std::vector<std::vector<int>>& grant_series,
    const FleetArbiter& arbiter) {
  FleetSimResult result;
  result.trace = pool_trace.name();
  result.regime = regime;
  result.scheduler_mode =
      options_.event_driven
          ? "event (debounce_ms=" + format_double(options_.debounce_ms, 0) +
                ")"
          : "tick";
  result.jobs = static_cast<int>(jobs_.size());
  const std::vector<int> pool =
      pool_trace.availability_series(options_.interval_s);
  result.intervals = static_cast<int>(pool.size());

  // Fairness: misallocated pool fraction against the weighted
  // water-fill target, averaged over intervals.
  double deviation_sum = 0.0;
  int deviation_intervals = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const int avail = std::clamp(pool[i], 0, options_.capacity);
    if (avail <= 0) continue;
    const std::vector<int> fair = arbiter.fair_shares(avail);
    double misallocated = 0.0;
    for (std::size_t j = 0; j < jobs_.size(); ++j)
      misallocated += std::abs(grant_series[j][i] - fair[j]);
    deviation_sum += misallocated / (2.0 * static_cast<double>(avail));
    ++deviation_intervals;
  }
  result.weighted_share_deviation =
      deviation_intervals > 0 ? deviation_sum / deviation_intervals : 0.0;

  // Lease churn from the grant series (both regimes, same ruler).
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    for (std::size_t i = 0; i < grant_series[j].size(); ++i) {
      const int prev = i == 0 ? 0 : grant_series[j][i - 1];
      const int delta = grant_series[j][i] - prev;
      if (delta > 0)
        result.lease_grants += delta;
      else
        result.lease_revocations -= delta;
    }
  }

  // One full Parcae stack per job over its lease view.
  const double duration_s = pool_trace.duration_s();
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const FleetJobSpec& job = jobs_[j];
    const std::string prefix = "job" + std::to_string(job.job_id) + ".";
    const ModelProfile profile = model_by_name(job.model);

    SeriesPoolView lease("lease:" + prefix + job.model, grant_series[j],
                         options_.capacity, options_.interval_s);

    ParcaePolicyOptions policy_options;
    policy_options.mode = PredictionMode::kArima;
    policy_options.lookahead = options_.lookahead;
    policy_options.history = options_.history;
    policy_options.mc_trials = options_.mc_trials;
    policy_options.seed = fleet_job_seed(options_.fleet_seed, job.job_id);
    policy_options.interval_s = options_.interval_s;
    policy_options.max_instances = options_.capacity;
    policy_options.metrics = options_.metrics;
    policy_options.metric_prefix = prefix;
    policy_options.event_driven = options_.event_driven;
    policy_options.debounce_ms = options_.debounce_ms;
    ParcaePolicy policy(profile, policy_options, &lease);

    SimulationOptions sim_options;
    sim_options.interval_s = options_.interval_s;
    sim_options.record_timeline = false;
    sim_options.metrics = options_.metrics;
    sim_options.metric_prefix = prefix;
    const SimulationResult sim = simulate(policy, lease, sim_options);

    FleetJobResult job_result;
    job_result.job_id = job.job_id;
    job_result.model = job.model;
    job_result.weight = job.weight;
    job_result.grants = grant_series[j];
    job_result.committed_samples = sim.committed_samples;
    const double reference =
        reference_throughput(profile, options_.capacity);
    if (reference > 0.0 && duration_s > 0.0)
      job_result.normalized_liveput =
          sim.committed_samples / duration_s / reference;
    double grant_sum = 0.0;
    for (const int g : grant_series[j]) grant_sum += g;
    job_result.mean_grant =
        grant_series[j].empty()
            ? 0.0
            : grant_sum / static_cast<double>(grant_series[j].size());
    result.weighted_liveput += job.weight * job_result.normalized_liveput;
    result.per_job.push_back(std::move(job_result));

    if (options_.metrics != nullptr)
      options_.metrics->gauge(prefix + "fleet.normalized_liveput")
          .set(result.per_job.back().normalized_liveput);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("fleet.weighted_liveput." + regime)
        .set(result.weighted_liveput);
    options_.metrics->gauge("fleet.share_deviation." + regime)
        .set(result.weighted_share_deviation);
    result.metrics = options_.metrics->snapshot();
    // Fleet-level SLOs run against the rollup (the per-job "job<j>."
    // names folded into "fleet.*" sums/maxima), once per regime: the
    // jobs execute sequentially, so the rollup only exists here.
    if (options_.slo != nullptr) {
      obs::FleetAggregator aggregator;
      aggregator.fold(result.metrics);
      const obs::MetricsSnapshot rollup = aggregator.rollup();
      options_.slo->set_snapshot(&rollup);
      options_.slo->evaluate(result.intervals,
                             result.intervals * options_.interval_s);
      options_.slo->set_snapshot(nullptr);
    }
  }
  return result;
}

std::string FleetSimResult::to_string() const {
  std::string out;
  out += "fleet " + regime + " on " + trace + ": " + std::to_string(jobs) +
         " jobs, " + std::to_string(intervals) + " intervals\n";
  out += "  weighted liveput  " + format_double(weighted_liveput, 4) + "\n";
  out += "  share deviation   " +
         format_double(weighted_share_deviation, 4) + "\n";
  out += "  lease churn       +" + std::to_string(lease_grants) + " / -" +
         std::to_string(lease_revocations) + "\n";
  out += "  scheduler mode    " + scheduler_mode + "\n";
  for (const FleetJobResult& job : per_job) {
    out += "  job" + std::to_string(job.job_id) + " " + job.model +
           " w=" + format_double(job.weight, 1) +
           " mean_grant=" + format_double(job.mean_grant, 2) +
           " liveput=" + format_double(job.normalized_liveput, 4) + "\n";
  }
  return out;
}

}  // namespace parcae::fleet
