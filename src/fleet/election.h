// Leader election over KvStore TTL leases — the primitive the
// FleetArbiter uses to claim pool ownership and the standby
// scheduler uses for HA takeover (SchedulerProcess,
// src/runtime/scheduler_process.h).
//
// The protocol is the standard etcd election recipe on this repo's
// KvStore primitives:
//   campaign():  CAS-acquire — create-only write (expected version 0)
//                of the candidate's name at the election key, attached
//                to a fresh TTL lease. Exactly one contender wins a
//                vacant seat; losers observe the CAS failure.
//   renew():     heartbeat the lease. A holder that stops renewing
//                (silent death) loses the key at TTL expiry — the
//                logical clock (KvStore::advance_clock) erases it with
//                a tombstone, at which point any candidate's next
//                campaign() wins: re-election after holder death.
//   resign():    revoke the lease (graceful handover; the key dies
//                immediately).
//
// All calls are scheduler-thread operations; KvStore's own mutex makes
// them safe to interleave with transport-thread traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace parcae {

class KvStore;

namespace fleet {

class LeaseElection {
 public:
  // `kv` is non-owning and must outlive the election. `key` names the
  // seat (e.g. "fleet/arbiter"); `ttl_s` is the holder's liveness TTL
  // on the store's logical clock.
  LeaseElection(KvStore* kv, std::string key, double ttl_s);

  // Tries to become the holder. Returns true when `candidate` now
  // holds the seat (including when it already held it). A live
  // incumbent blocks the campaign; a dead one (expired lease) does
  // not, because expiry already erased the key.
  bool campaign(const std::string& candidate);

  // The current holder, if any seat-holder key exists.
  std::optional<std::string> holder() const;

  // Whether this election object's own campaign is the live holder.
  bool is_holder() const;

  // Heartbeat; false when leadership was already lost (expired or
  // revoked lease). A lost seat stays lost until a new campaign().
  bool renew();

  // Graceful resignation: revokes the lease, erasing the seat key.
  void resign();

  const std::string& key() const { return key_; }
  double ttl_s() const { return ttl_s_; }

 private:
  KvStore* kv_;
  std::string key_;
  double ttl_s_;
  std::uint64_t lease_ = 0;     // this object's own lease; 0 = none
  std::string candidate_;       // name campaigned under
};

// Failure detector a standby runs against the primary it shadows.
//
// The standby cannot watch the primary's KvStore (the store dies with
// the primary); all it has is an out-of-band probe — a short-deadline
// RPC against the primary's endpoint. This class turns that probe
// stream into a takeover decision, deliberately requiring BOTH
// conditions so neither a single dropped packet (probes fail, but
// silence is short) nor a paused-but-alive primary mid-GC (silence
// long, but probes recover) triggers a split brain:
//   - at least `min_failed_probes` consecutive failures, and
//   - at least `takeover_after_s` seconds since the last success.
//
// Pure bookkeeping over caller-supplied timestamps: no clock, no
// threads, unit-testable with synthetic times. The caller owns the
// probe loop (SchedulerProcess::run_standby).
struct StandbyMonitorOptions {
  double takeover_after_s = 0.75;  // silence required before takeover
  int min_failed_probes = 3;       // consecutive failures required
};

class StandbyMonitor {
 public:
  explicit StandbyMonitor(StandbyMonitorOptions options = {})
      : options_(options) {}

  // Baselines "last heard from" at `now_s`; the primary is presumed
  // healthy until probes say otherwise.
  void start(double now_s);

  void record_probe(bool healthy, double now_s);

  // True once both the failure-count and silence conditions hold.
  bool should_take_over(double now_s) const;

  // Seconds since the last healthy probe (or start()).
  double silent_for(double now_s) const;
  int failed_probes() const { return failed_probes_; }
  const StandbyMonitorOptions& options() const { return options_; }

 private:
  StandbyMonitorOptions options_;
  bool started_ = false;
  double last_healthy_s_ = 0.0;
  int failed_probes_ = 0;
};

}  // namespace fleet
}  // namespace parcae
