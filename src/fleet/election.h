// Leader election over KvStore TTL leases — the primitive the
// FleetArbiter uses to claim pool ownership (and a future standby
// arbiter/scheduler would use for HA takeover, ROADMAP item 5).
//
// The protocol is the standard etcd election recipe on this repo's
// KvStore primitives:
//   campaign():  CAS-acquire — create-only write (expected version 0)
//                of the candidate's name at the election key, attached
//                to a fresh TTL lease. Exactly one contender wins a
//                vacant seat; losers observe the CAS failure.
//   renew():     heartbeat the lease. A holder that stops renewing
//                (silent death) loses the key at TTL expiry — the
//                logical clock (KvStore::advance_clock) erases it with
//                a tombstone, at which point any candidate's next
//                campaign() wins: re-election after holder death.
//   resign():    revoke the lease (graceful handover; the key dies
//                immediately).
//
// All calls are scheduler-thread operations; KvStore's own mutex makes
// them safe to interleave with transport-thread traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace parcae {

class KvStore;

namespace fleet {

class LeaseElection {
 public:
  // `kv` is non-owning and must outlive the election. `key` names the
  // seat (e.g. "fleet/arbiter"); `ttl_s` is the holder's liveness TTL
  // on the store's logical clock.
  LeaseElection(KvStore* kv, std::string key, double ttl_s);

  // Tries to become the holder. Returns true when `candidate` now
  // holds the seat (including when it already held it). A live
  // incumbent blocks the campaign; a dead one (expired lease) does
  // not, because expiry already erased the key.
  bool campaign(const std::string& candidate);

  // The current holder, if any seat-holder key exists.
  std::optional<std::string> holder() const;

  // Whether this election object's own campaign is the live holder.
  bool is_holder() const;

  // Heartbeat; false when leadership was already lost (expired or
  // revoked lease). A lost seat stays lost until a new campaign().
  bool renew();

  // Graceful resignation: revokes the lease, erasing the seat key.
  void resign();

  const std::string& key() const { return key_; }
  double ttl_s() const { return ttl_s_; }

 private:
  KvStore* kv_;
  std::string key_;
  double ttl_s_;
  std::uint64_t lease_ = 0;     // this object's own lease; 0 = none
  std::string candidate_;       // name campaigned under
};

}  // namespace fleet
}  // namespace parcae
