#include "fleet/lease.h"

#include <stdexcept>

namespace parcae::fleet {

const char* lease_change_reason_name(LeaseChangeReason reason) {
  switch (reason) {
    case LeaseChangeReason::kInitialGrant:
      return "initial-grant";
    case LeaseChangeReason::kPoolGrowth:
      return "pool-growth";
    case LeaseChangeReason::kPoolShrink:
      return "pool-shrink";
    case LeaseChangeReason::kValueSwap:
      return "value-swap";
  }
  return "?";
}

InstanceLease& LeaseLedger::open(int job_id, int interval) {
  if (job_id != static_cast<int>(leases_.size()))
    throw std::logic_error("LeaseLedger: leases must be opened in job order");
  InstanceLease lease;
  lease.id = next_id_++;
  lease.job_id = job_id;
  lease.granted_interval = interval;
  lease.last_change_interval = interval;
  leases_.push_back(lease);
  changes_.push_back({interval, job_id, 0, LeaseChangeReason::kInitialGrant});
  return leases_.back();
}

void LeaseLedger::record(int job_id, int interval, int delta,
                         LeaseChangeReason reason) {
  if (delta == 0) return;
  InstanceLease& lease = leases_.at(static_cast<std::size_t>(job_id));
  lease.count += delta;
  lease.last_change_interval = interval;
  changes_.push_back({interval, job_id, delta, reason});
  if (delta > 0)
    granted_ += delta;
  else
    revoked_ -= delta;
}

std::string LeaseLedger::to_string() const {
  std::string out;
  for (const LeaseChange& c : changes_) {
    out += "t=" + std::to_string(c.interval) + " job" +
           std::to_string(c.job_id) + " " +
           (c.delta >= 0 ? "+" : "") + std::to_string(c.delta) + " (" +
           lease_change_reason_name(c.reason) + ")\n";
  }
  return out;
}

}  // namespace parcae::fleet
