// Experiment matrix runner and reporting helpers.
//
// Runs the full {model} x {trace} x {system} grid the evaluation
// section sweeps and aggregates it into speedup/cost summaries and a
// Markdown report — the programmatic interface behind the bench
// harnesses, exposed so downstream users can score their own policies
// against the shipped ones.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/model_profile.h"
#include "runtime/cluster_sim.h"
#include "trace/spot_trace.h"

namespace parcae {

// A named policy factory: builds a fresh policy for a (model, trace)
// cell. The trace pointer stays valid for the policy's lifetime (used
// by oracle-mode policies).
struct PolicySpec {
  std::string name;
  std::function<std::unique_ptr<SpotTrainingPolicy>(
      const ModelProfile&, const SpotTrace&)> make;
};

// The systems the paper compares: Parcae, Parcae(Ideal),
// Parcae-Reactive, Varuna, Bamboo.
std::vector<PolicySpec> standard_policies();

// Related-work systems beyond the paper's two baselines: Oobleck
// (pipeline templates), CheckFreq (fine-grained checkpointing), and a
// Snape-style on-demand + spot hybrid.
std::vector<PolicySpec> extended_policies();

struct CellResult {
  std::string model;
  std::string trace;
  std::string system;
  SimulationResult result;
};

struct MatrixOptions {
  std::vector<ModelProfile> models = model_zoo();
  std::vector<SpotTrace> traces = all_canonical_segments();
  std::vector<PolicySpec> policies = standard_policies();
  // Worker threads for grid cells (each cell owns its policy, trace
  // and metrics registry, so cells are embarrassingly parallel).
  // 0 = PARCAE_THREADS env var, else hardware concurrency
  // (ThreadPool::resolve). Cell results and their order are identical
  // at any thread count.
  int threads = 0;
};

// Runs every cell; deterministic (bit-identical at any thread count,
// ordered model-major, then trace, then policy).
std::vector<CellResult> run_matrix(const MatrixOptions& options);

struct SystemSummary {
  std::string system;
  // Geometric-mean speedup of Parcae over this system across all cells
  // where this system made progress; cells where it made none are
  // counted separately.
  double parcae_speedup_geomean = 0.0;
  int cells = 0;
  int cells_no_progress = 0;
  double avg_effective_share = 0.0;  // effective / total GPU hours
};

// Aggregates against the policy named `reference` (default "Parcae").
std::vector<SystemSummary> summarize(const std::vector<CellResult>& cells,
                                     const std::string& reference = "Parcae");

// Renders the full matrix and summary as a Markdown document.
std::string matrix_to_markdown(const std::vector<CellResult>& cells,
                               const std::vector<SystemSummary>& summary);

}  // namespace parcae
