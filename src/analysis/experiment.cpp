#include "analysis/experiment.h"

#include <cmath>
#include <map>
#include <sstream>

#include "baselines/bamboo_policy.h"
#include "baselines/checkfreq_policy.h"
#include "baselines/hybrid_policy.h"
#include "baselines/oobleck_policy.h"
#include "baselines/varuna_policy.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "runtime/parcae_policy.h"

namespace parcae {

std::vector<PolicySpec> standard_policies() {
  std::vector<PolicySpec> specs;
  specs.push_back({"Parcae", [](const ModelProfile& m, const SpotTrace&) {
                     return std::make_unique<ParcaePolicy>(
                         m, ParcaePolicyOptions{});
                   }});
  specs.push_back(
      {"Parcae(Ideal)", [](const ModelProfile& m, const SpotTrace& trace) {
         ParcaePolicyOptions options;
         options.mode = PredictionMode::kOracle;
         return std::make_unique<ParcaePolicy>(m, options, &trace);
       }});
  specs.push_back(
      {"Parcae-Reactive", [](const ModelProfile& m, const SpotTrace&) {
         ParcaePolicyOptions options;
         options.mode = PredictionMode::kReactive;
         return std::make_unique<ParcaePolicy>(m, options);
       }});
  specs.push_back({"Varuna", [](const ModelProfile& m, const SpotTrace&) {
                     return std::make_unique<VarunaPolicy>(m);
                   }});
  specs.push_back({"Bamboo", [](const ModelProfile& m, const SpotTrace&) {
                     return std::make_unique<BambooPolicy>(m);
                   }});
  return specs;
}

std::vector<PolicySpec> extended_policies() {
  std::vector<PolicySpec> specs;
  specs.push_back({"Oobleck", [](const ModelProfile& m, const SpotTrace&) {
                     return std::make_unique<OobleckPolicy>(m);
                   }});
  specs.push_back({"CheckFreq", [](const ModelProfile& m, const SpotTrace&) {
                     return std::make_unique<CheckFreqPolicy>(m);
                   }});
  specs.push_back(
      {"Hybrid(OD+spot)", [](const ModelProfile& m, const SpotTrace&) {
         return std::make_unique<HybridSpotPolicy>(m);
       }});
  return specs;
}

std::vector<CellResult> run_matrix(const MatrixOptions& options) {
  // Flatten the grid so each cell has a fixed slot: results land at
  // their index regardless of completion order, keeping the output
  // bit-identical at any thread count.
  struct Item {
    const ModelProfile* model;
    const SpotTrace* trace;
    const PolicySpec* spec;
  };
  std::vector<Item> items;
  items.reserve(options.models.size() * options.traces.size() *
                options.policies.size());
  for (const ModelProfile& model : options.models)
    for (const SpotTrace& trace : options.traces)
      for (const PolicySpec& spec : options.policies)
        items.push_back({&model, &trace, &spec});

  std::vector<CellResult> cells(items.size());
  auto run_cell = [&](std::size_t idx) {
    const Item& item = items[idx];
    auto policy = item.spec->make(*item.model, *item.trace);
    SimulationOptions sim;
    sim.units_per_sample = item.model->tokens_per_sample;
    sim.record_timeline = false;
    // Fresh registry per cell: cell.result.metrics never mixes
    // instruments across the grid.
    obs::MetricsRegistry cell_metrics;
    sim.metrics = &cell_metrics;
    CellResult& cell = cells[idx];
    cell.model = item.model->name;
    cell.trace = item.trace->name();
    cell.system = item.spec->name;
    cell.result = simulate(*policy, *item.trace, sim);
  };

  const int threads = ThreadPool::resolve(options.threads);
  if (threads <= 1 || items.size() <= 1) {
    for (std::size_t idx = 0; idx < items.size(); ++idx) run_cell(idx);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(items.size(), run_cell);
    obs::default_registry()
        .counter("threadpool.tasks")
        .add(static_cast<double>(pool.tasks_run()));
  }
  return cells;
}

std::vector<SystemSummary> summarize(const std::vector<CellResult>& cells,
                                     const std::string& reference) {
  // Index the reference system's committed units per (model, trace).
  std::map<std::pair<std::string, std::string>, double> ref_units;
  for (const auto& cell : cells)
    if (cell.system == reference)
      ref_units[{cell.model, cell.trace}] = cell.result.committed_units;

  std::map<std::string, SystemSummary> by_system;
  for (const auto& cell : cells) {
    auto& summary = by_system[cell.system];
    summary.system = cell.system;
    ++summary.cells;
    const double total = cell.result.gpu_hours.total();
    if (total > 0.0)
      summary.avg_effective_share +=
          cell.result.gpu_hours.effective / total;
    const double ref = ref_units[{cell.model, cell.trace}];
    if (cell.result.committed_units <= 0.0) {
      ++summary.cells_no_progress;
      continue;
    }
    if (ref > 0.0)
      summary.parcae_speedup_geomean +=
          std::log(ref / cell.result.committed_units);
  }
  std::vector<SystemSummary> out;
  for (auto& [_, summary] : by_system) {
    const int progressed = summary.cells - summary.cells_no_progress;
    summary.parcae_speedup_geomean =
        progressed > 0 ? std::exp(summary.parcae_speedup_geomean / progressed)
                       : 0.0;
    summary.avg_effective_share /= std::max(1, summary.cells);
    out.push_back(summary);
  }
  return out;
}

std::string matrix_to_markdown(const std::vector<CellResult>& cells,
                               const std::vector<SystemSummary>& summary) {
  std::ostringstream os;
  os << "# Spot-training comparison matrix\n\n";
  os << "| model | trace | system | units/s | USD per 1M units | "
        "effective GPU-h % |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const auto& cell : cells) {
    const auto& r = cell.result;
    os << "| " << cell.model << " | " << cell.trace << " | " << cell.system
       << " | " << format_double(r.avg_unit_throughput, 0) << " | "
       << (std::isfinite(r.cost_per_unit)
               ? format_double(r.cost_per_unit * 1e6, 3)
               : std::string("-"))
       << " | "
       << format_double(100.0 * r.gpu_hours.effective /
                            std::max(1e-9, r.gpu_hours.total()),
                        0)
       << " |\n";
  }
  os << "\n## Summary (geometric-mean Parcae speedup)\n\n";
  os << "| system | cells | no-progress cells | Parcae speedup | avg "
        "effective share |\n";
  os << "|---|---|---|---|---|\n";
  for (const auto& s : summary) {
    os << "| " << s.system << " | " << s.cells << " | "
       << s.cells_no_progress << " | "
       << format_double(s.parcae_speedup_geomean, 2) << "x | "
       << format_double(100.0 * s.avg_effective_share, 0) << "% |\n";
  }
  return os.str();
}

}  // namespace parcae
