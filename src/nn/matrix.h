// Minimal dense matrix used by the from-scratch NN training library.
//
// This library exists so the convergence-preservation experiment
// (Figure 16) can train a *real* model through the real SampleManager
// rather than asserting the reordering property abstractly. It is
// deliberately small: row-major float storage, the handful of ops an
// MLP needs, all single-threaded and deterministic.
#pragma once

#include <cstddef>
#include <vector>

namespace parcae::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& raw() { return data_; }
  const std::vector<float>& raw() const { return data_; }

  void fill(float value);

  // this += alpha * other (same shape).
  void axpy(float alpha, const Matrix& other);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// c = a * b.
Matrix matmul(const Matrix& a, const Matrix& b);
// c = a * b^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
// c = a^T * b.
Matrix matmul_tn(const Matrix& a, const Matrix& b);

}  // namespace parcae::nn
