#include "nn/optimizer.h"

#include <cassert>
#include <cmath>

namespace parcae::nn {

void Sgd::initialize(const std::vector<ParamRef>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const auto& p : params)
      velocity_.emplace_back(p.param->size(), 0.0f);
  }
}

void Sgd::step(const std::vector<ParamRef>& params) {
  initialize(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i].param->raw();
    const auto& g = params[i].grad->raw();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      vel[j] = momentum_ * vel[j] + g[j];
      p[j] -= lr_ * vel[j];
    }
  }
}

std::vector<float> Sgd::state() const {
  std::vector<float> out;
  for (const auto& vel : velocity_) out.insert(out.end(), vel.begin(), vel.end());
  return out;
}

void Sgd::load_state(const std::vector<float>& state) {
  std::size_t expected = 0;
  for (const auto& vel : velocity_) expected += vel.size();
  if (state.size() != expected) {
    // A checkpoint from a never-stepped optimizer (or a mismatched
    // shape): reset to fresh velocity.
    for (auto& vel : velocity_) std::fill(vel.begin(), vel.end(), 0.0f);
    return;
  }
  std::size_t offset = 0;
  for (auto& vel : velocity_) {
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(offset),
              state.begin() + static_cast<std::ptrdiff_t>(offset + vel.size()),
              vel.begin());
    offset += vel.size();
  }
}

void Adam::initialize(const std::vector<ParamRef>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const auto& p : params) {
      m_.emplace_back(p.param->size(), 0.0f);
      v_.emplace_back(p.param->size(), 0.0f);
    }
  }
}

void Adam::step(const std::vector<ParamRef>& params) {
  initialize(params);
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i].param->raw();
    const auto& g = params[i].grad->raw();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

std::vector<float> Adam::state() const {
  std::vector<float> out;
  out.push_back(static_cast<float>(t_));
  for (const auto& m : m_) out.insert(out.end(), m.begin(), m.end());
  for (const auto& v : v_) out.insert(out.end(), v.begin(), v.end());
  return out;
}

void Adam::load_state(const std::vector<float>& state) {
  if (state.empty()) return;
  t_ = static_cast<long long>(state[0]);
  std::size_t expected = 1;
  for (const auto& m : m_) expected += m.size();
  for (const auto& v : v_) expected += v.size();
  if (state.size() != expected) {
    // A checkpoint from a never-stepped optimizer (state = [t] only)
    // or a mismatched shape: reset moments to zero.
    for (auto& m : m_) std::fill(m.begin(), m.end(), 0.0f);
    for (auto& v : v_) std::fill(v.begin(), v.end(), 0.0f);
    return;
  }
  std::size_t offset = 1;
  for (auto& m : m_) {
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(offset),
              state.begin() + static_cast<std::ptrdiff_t>(offset + m.size()),
              m.begin());
    offset += m.size();
  }
  for (auto& v : v_) {
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(offset),
              state.begin() + static_cast<std::ptrdiff_t>(offset + v.size()),
              v.begin());
    offset += v.size();
  }
}

}  // namespace parcae::nn
