// A small multi-layer perceptron with checkpoint/restore, used as the
// trainable model in the convergence experiment (Figure 16): it plays
// the role the paper's ResNet-152 plays — a real model whose loss
// curve we compare between on-demand (fixed sample order) and Parcae
// (migration-induced sample reordering) training.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace parcae::nn {

struct MlpCheckpoint {
  std::vector<float> parameters;
  std::vector<float> optimizer_state;
  long long step = 0;
};

class Mlp {
 public:
  // layer_sizes: [input, hidden..., classes]. Requires >= 2 entries.
  Mlp(std::vector<std::size_t> layer_sizes, std::unique_ptr<Optimizer> opt,
      std::uint64_t seed = 1);

  // One optimizer step on a batch. Returns mean loss.
  float train_batch(const Matrix& x, const std::vector<int>& labels);

  // Mean loss without updating parameters.
  float eval_loss(const Matrix& x, const std::vector<int>& labels);

  // Accuracy on a batch.
  double eval_accuracy(const Matrix& x, const std::vector<int>& labels);

  MlpCheckpoint checkpoint() const;
  void restore(const MlpCheckpoint& ckpt);

  long long steps() const { return step_; }
  std::size_t parameter_count() const;

  // Flat parameter vector (ParcaePS gradient-sync tests).
  std::vector<float> flat_parameters() const;
  void set_flat_parameters(const std::vector<float>& flat);

  // Flat gradient vector from the last train_batch() (same layout as
  // flat_parameters) — what ParcaeAgents push to ParcaePS.
  std::vector<float> flat_gradients() const;

 private:
  Matrix forward(const Matrix& x);
  std::vector<ParamRef> params();

  std::vector<Linear> linears_;
  std::vector<Relu> relus_;
  SoftmaxCrossEntropy loss_;
  std::unique_ptr<Optimizer> opt_;
  long long step_ = 0;
};

}  // namespace parcae::nn
