#include "nn/layers.h"

#include <cassert>
#include <cmath>

namespace parcae::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : w_(in_features, out_features),
      b_(1, out_features),
      dw_(in_features, out_features),
      db_(1, out_features) {
  // Kaiming-uniform-ish init, deterministic from the provided rng.
  const double bound = std::sqrt(6.0 / static_cast<double>(in_features));
  for (auto& v : w_.raw()) v = static_cast<float>(rng.uniform(-bound, bound));
}

Matrix Linear::forward(const Matrix& x) {
  assert(x.cols() == w_.rows());
  cached_input_ = x;
  Matrix y = matmul(x, w_);
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (std::size_t j = 0; j < y.cols(); ++j) y(i, j) += b_(0, j);
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  assert(grad_out.rows() == cached_input_.rows());
  dw_.axpy(1.0f, matmul_tn(cached_input_, grad_out));
  for (std::size_t i = 0; i < grad_out.rows(); ++i)
    for (std::size_t j = 0; j < grad_out.cols(); ++j)
      db_(0, j) += grad_out(i, j);
  return matmul_nt(grad_out, w_);
}

void Linear::zero_grad() {
  dw_.fill(0.0f);
  db_.fill(0.0f);
}

Matrix Relu::forward(const Matrix& x) {
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.raw()[i] > 0.0f) {
      mask_.raw()[i] = 1.0f;
    } else {
      y.raw()[i] = 0.0f;
    }
  }
  return y;
}

Matrix Relu::backward(const Matrix& grad_out) const {
  assert(grad_out.rows() == mask_.rows() && grad_out.cols() == mask_.cols());
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g.raw()[i] *= mask_.raw()[i];
  return g;
}

float SoftmaxCrossEntropy::forward(const Matrix& logits,
                                   const std::vector<int>& labels) {
  assert(logits.rows() == labels.size());
  probs_ = logits;
  labels_ = labels;
  correct_ = 0;
  double loss = 0.0;
  for (std::size_t i = 0; i < probs_.rows(); ++i) {
    float max_logit = probs_(i, 0);
    std::size_t argmax = 0;
    for (std::size_t j = 1; j < probs_.cols(); ++j)
      if (probs_(i, j) > max_logit) {
        max_logit = probs_(i, j);
        argmax = j;
      }
    if (static_cast<int>(argmax) == labels[i]) ++correct_;
    double denom = 0.0;
    for (std::size_t j = 0; j < probs_.cols(); ++j)
      denom += std::exp(static_cast<double>(probs_(i, j) - max_logit));
    for (std::size_t j = 0; j < probs_.cols(); ++j)
      probs_(i, j) = static_cast<float>(
          std::exp(static_cast<double>(probs_(i, j) - max_logit)) / denom);
    loss -= std::log(std::max(
        1e-12, static_cast<double>(probs_(i, static_cast<std::size_t>(
                                              labels[i])))));
  }
  return static_cast<float>(loss / static_cast<double>(probs_.rows()));
}

Matrix SoftmaxCrossEntropy::backward() const {
  Matrix g = probs_;
  const float scale = 1.0f / static_cast<float>(g.rows());
  for (std::size_t i = 0; i < g.rows(); ++i) {
    g(i, static_cast<std::size_t>(labels_[i])) -= 1.0f;
    for (std::size_t j = 0; j < g.cols(); ++j) g(i, j) *= scale;
  }
  return g;
}

}  // namespace parcae::nn
