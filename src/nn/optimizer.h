// Optimizers for the NN training library: SGD (+momentum) and Adam.
// Operate on flat parameter/gradient views so the MLP can expose its
// parameters as a list of (param, grad) matrix pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace parcae::nn {

struct ParamRef {
  Matrix* param;
  Matrix* grad;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<ParamRef>& params) = 0;
  // Sizes internal slots for `params` without updating anything; must
  // be called (or a step taken) before load_state on a fresh optimizer.
  virtual void initialize(const std::vector<ParamRef>& params) = 0;
  // Serialized optimizer state (e.g. Adam moments) for checkpointing.
  virtual std::vector<float> state() const = 0;
  virtual void load_state(const std::vector<float>& state) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f)
      : lr_(lr), momentum_(momentum) {}
  void step(const std::vector<ParamRef>& params) override;
  void initialize(const std::vector<ParamRef>& params) override;
  std::vector<float> state() const override;
  void load_state(const std::vector<float>& state) override;

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(const std::vector<ParamRef>& params) override;
  void initialize(const std::vector<ParamRef>& params) override;
  std::vector<float> state() const override;
  void load_state(const std::vector<float>& state) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  long long t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace parcae::nn
