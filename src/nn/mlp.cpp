#include "nn/mlp.h"

#include <cassert>

namespace parcae::nn {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, std::unique_ptr<Optimizer> opt,
         std::uint64_t seed)
    : opt_(std::move(opt)) {
  assert(layer_sizes.size() >= 2);
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    linears_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
    if (i + 2 < layer_sizes.size()) relus_.emplace_back();
  }
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i].forward(h);
    if (i < relus_.size()) h = relus_[i].forward(h);
  }
  return h;
}

std::vector<ParamRef> Mlp::params() {
  std::vector<ParamRef> out;
  for (auto& l : linears_) {
    out.push_back({&l.weight(), &l.weight_grad()});
    out.push_back({&l.bias(), &l.bias_grad()});
  }
  return out;
}

float Mlp::train_batch(const Matrix& x, const std::vector<int>& labels) {
  for (auto& l : linears_) l.zero_grad();
  const Matrix logits = forward(x);
  const float loss = loss_.forward(logits, labels);
  Matrix grad = loss_.backward();
  for (std::size_t i = linears_.size(); i-- > 0;) {
    if (i < relus_.size()) grad = relus_[i].backward(grad);
    grad = linears_[i].backward(grad);
  }
  opt_->step(params());
  ++step_;
  return loss;
}

float Mlp::eval_loss(const Matrix& x, const std::vector<int>& labels) {
  return loss_.forward(forward(x), labels);
}

double Mlp::eval_accuracy(const Matrix& x, const std::vector<int>& labels) {
  loss_.forward(forward(x), labels);
  return static_cast<double>(loss_.correct()) /
         static_cast<double>(labels.size());
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : linears_) n += l.weight().size() + l.bias().size();
  return n;
}

std::vector<float> Mlp::flat_parameters() const {
  std::vector<float> out;
  out.reserve(parameter_count());
  for (const auto& l : linears_) {
    out.insert(out.end(), l.weight().raw().begin(), l.weight().raw().end());
    out.insert(out.end(), l.bias().raw().begin(), l.bias().raw().end());
  }
  return out;
}

std::vector<float> Mlp::flat_gradients() const {
  std::vector<float> out;
  out.reserve(parameter_count());
  for (const auto& l : linears_) {
    out.insert(out.end(), l.weight_grad().raw().begin(),
               l.weight_grad().raw().end());
    out.insert(out.end(), l.bias_grad().raw().begin(),
               l.bias_grad().raw().end());
  }
  return out;
}

void Mlp::set_flat_parameters(const std::vector<float>& flat) {
  assert(flat.size() == parameter_count());
  std::size_t offset = 0;
  for (auto& l : linears_) {
    auto copy_into = [&](Matrix& m) {
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                flat.begin() + static_cast<std::ptrdiff_t>(offset + m.size()),
                m.raw().begin());
      offset += m.size();
    };
    copy_into(l.weight());
    copy_into(l.bias());
  }
}

MlpCheckpoint Mlp::checkpoint() const {
  MlpCheckpoint ckpt;
  ckpt.parameters = flat_parameters();
  ckpt.optimizer_state = opt_->state();
  ckpt.step = step_;
  return ckpt;
}

void Mlp::restore(const MlpCheckpoint& ckpt) {
  set_flat_parameters(ckpt.parameters);
  opt_->initialize(params());
  opt_->load_state(ckpt.optimizer_state);
  step_ = ckpt.step;
}

}  // namespace parcae::nn
