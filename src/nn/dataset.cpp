#include "nn/dataset.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace parcae::nn {

Matrix Dataset::gather(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), features.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < features.rows());
    for (std::size_t j = 0; j < features.cols(); ++j)
      out(i, j) = features(indices[i], j);
  }
  return out;
}

std::vector<int> Dataset::gather_labels(
    const std::vector<std::size_t>& indices) const {
  std::vector<int> out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) out[i] = labels[indices[i]];
  return out;
}

Dataset make_blobs(std::size_t n, std::size_t dims, int classes, double noise,
                   std::uint64_t seed) {
  assert(classes >= 2 && dims >= 1);
  Rng rng(seed);
  Dataset ds;
  ds.features = Matrix(n, dims);
  ds.labels.resize(n);
  // Class means: random unit directions scaled to radius 2.
  std::vector<std::vector<double>> means(static_cast<std::size_t>(classes),
                                         std::vector<double>(dims, 0.0));
  for (auto& mean : means) {
    double norm = 0.0;
    for (auto& v : mean) {
      v = rng.normal();
      norm += v * v;
    }
    norm = std::sqrt(norm);
    for (auto& v : mean) v = 2.0 * v / (norm > 0.0 ? norm : 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(classes)));
    ds.labels[i] = c;
    for (std::size_t j = 0; j < dims; ++j)
      ds.features(i, j) = static_cast<float>(
          means[static_cast<std::size_t>(c)][j] + noise * rng.normal());
  }
  return ds;
}

}  // namespace parcae::nn
