// Layers for the MLP training library: Linear, ReLU, and a fused
// softmax + cross-entropy loss. Each layer caches its forward inputs
// and produces parameter gradients on backward.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace parcae::nn {

class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  // x: [batch, in] -> [batch, out].
  Matrix forward(const Matrix& x);
  // grad_out: [batch, out] -> grad wrt x [batch, in]; accumulates
  // parameter gradients.
  Matrix backward(const Matrix& grad_out);

  void zero_grad();

  Matrix& weight() { return w_; }
  Matrix& bias() { return b_; }
  Matrix& weight_grad() { return dw_; }
  Matrix& bias_grad() { return db_; }
  const Matrix& weight() const { return w_; }
  const Matrix& bias() const { return b_; }
  const Matrix& weight_grad() const { return dw_; }
  const Matrix& bias_grad() const { return db_; }

 private:
  Matrix w_;   // [in, out]
  Matrix b_;   // [1, out]
  Matrix dw_;
  Matrix db_;
  Matrix cached_input_;
};

class Relu {
 public:
  Matrix forward(const Matrix& x);
  Matrix backward(const Matrix& grad_out) const;

 private:
  Matrix mask_;
};

// Softmax over the last dimension fused with mean cross-entropy
// against integer labels.
class SoftmaxCrossEntropy {
 public:
  // logits: [batch, classes]; labels: size batch. Returns mean loss.
  float forward(const Matrix& logits, const std::vector<int>& labels);
  // Gradient wrt logits of the mean loss.
  Matrix backward() const;
  // Correct predictions from the last forward.
  int correct() const { return correct_; }

 private:
  Matrix probs_;
  std::vector<int> labels_;
  int correct_ = 0;
};

}  // namespace parcae::nn
