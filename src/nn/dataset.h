// Synthetic classification datasets for the convergence experiment.
// Deterministic from a seed; a Gaussian-mixture task with enough class
// overlap that the loss curve has visible structure over many epochs.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace parcae::nn {

struct Dataset {
  Matrix features;          // [n, dims]
  std::vector<int> labels;  // size n

  std::size_t size() const { return labels.size(); }
  std::size_t dims() const { return features.cols(); }

  // Rows of `indices` gathered into a batch.
  Matrix gather(const std::vector<std::size_t>& indices) const;
  std::vector<int> gather_labels(const std::vector<std::size_t>& indices) const;
};

// `classes` Gaussian blobs in `dims` dimensions with per-class means on
// a scaled simplex and unit covariance scaled by `noise`.
Dataset make_blobs(std::size_t n, std::size_t dims, int classes, double noise,
                   std::uint64_t seed);

}  // namespace parcae::nn
