#include "nn/stage.h"

#include <cassert>

#include "model/model_profile.h"

namespace parcae::nn {

StageModule::StageModule(std::vector<std::size_t> dims, bool ends_network,
                         std::uint64_t seed)
    : dims_(std::move(dims)), ends_network_(ends_network) {
  assert(dims_.size() >= 2);
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    linears_.emplace_back(dims_[i], dims_[i + 1], rng);
    const bool last_linear_of_stage = i + 2 == dims_.size();
    if (!(last_linear_of_stage && ends_network_)) relus_.emplace_back();
  }
}

Matrix StageModule::forward(const Matrix& input) {
  Matrix h = input;
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i].forward(h);
    if (i < relus_.size()) h = relus_[i].forward(h);
  }
  return h;
}

Matrix StageModule::backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (std::size_t i = linears_.size(); i-- > 0;) {
    if (i < relus_.size()) g = relus_[i].backward(g);
    g = linears_[i].backward(g);
  }
  return g;
}

void StageModule::zero_grad() {
  for (auto& l : linears_) l.zero_grad();
}

std::size_t StageModule::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : linears_) n += l.weight().size() + l.bias().size();
  return n;
}

std::vector<ParamRef> StageModule::params() {
  std::vector<ParamRef> out;
  for (auto& l : linears_) {
    out.push_back({&l.weight(), &l.weight_grad()});
    out.push_back({&l.bias(), &l.bias_grad()});
  }
  return out;
}

std::vector<float> StageModule::flat_parameters() const {
  std::vector<float> out;
  out.reserve(parameter_count());
  for (const auto& l : linears_) {
    out.insert(out.end(), l.weight().raw().begin(), l.weight().raw().end());
    out.insert(out.end(), l.bias().raw().begin(), l.bias().raw().end());
  }
  return out;
}

void StageModule::set_flat_parameters(const std::vector<float>& flat) {
  assert(flat.size() == parameter_count());
  std::size_t offset = 0;
  for (auto& l : linears_) {
    auto copy_into = [&](Matrix& m) {
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                flat.begin() + static_cast<std::ptrdiff_t>(offset + m.size()),
                m.raw().begin());
      offset += m.size();
    };
    copy_into(l.weight());
    copy_into(l.bias());
  }
}

std::vector<float> StageModule::flat_gradients() const {
  std::vector<float> out;
  out.reserve(parameter_count());
  for (const auto& l : linears_) {
    out.insert(out.end(), l.weight_grad().raw().begin(),
               l.weight_grad().raw().end());
    out.insert(out.end(), l.bias_grad().raw().begin(),
               l.bias_grad().raw().end());
  }
  return out;
}

void StageModule::set_flat_gradients(const std::vector<float>& flat) {
  assert(flat.size() == parameter_count());
  std::size_t offset = 0;
  for (auto& l : linears_) {
    auto copy_into = [&](Matrix& m) {
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                flat.begin() + static_cast<std::ptrdiff_t>(offset + m.size()),
                m.raw().begin());
      offset += m.size();
    };
    copy_into(l.weight_grad());
    copy_into(l.bias_grad());
  }
}

std::vector<std::vector<std::size_t>> split_layer_dims(
    const std::vector<std::size_t>& layer_sizes, int stages) {
  assert(layer_sizes.size() >= 2);
  const int units = static_cast<int>(layer_sizes.size()) - 1;
  const std::vector<int> counts = partition_layers(units, stages);
  std::vector<std::vector<std::size_t>> out;
  if (counts.empty()) return out;
  std::size_t cursor = 0;
  for (int count : counts) {
    std::vector<std::size_t> dims;
    dims.push_back(layer_sizes[cursor]);
    for (int i = 0; i < count; ++i) dims.push_back(layer_sizes[++cursor]);
    out.push_back(std::move(dims));
  }
  return out;
}

}  // namespace parcae::nn
