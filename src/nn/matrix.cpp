#include "nn/matrix.h"

#include <cassert>

namespace parcae::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  for (auto& v : data_) v = value;
}

void Matrix::axpy(float alpha, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j) {
      float s = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(j, k);
      c(i, j) = s;
    }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k)
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = a(k, i);
      if (aki == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aki * b(k, j);
    }
  return c;
}

}  // namespace parcae::nn
