// Pipeline stages for real (in-process) pipeline-parallel training.
//
// A StageModule is a contiguous slice of an MLP — the unit a
// ParcaeAgent hosts. Stages exchange boundary activations forward and
// boundary gradients backward, exactly like pipeline-parallel DNN
// training; parameter gradients stay inside the stage. The split is
// mathematically exact: a pipeline of stages computes the same
// function and gradients as the monolithic model, which the
// training-cluster tests exploit to check Parcae's semantics claims
// (migrations and sample reordering do not change what is learned).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace parcae::nn {

// One "partition unit" in the Parcae sense: Linear + ReLU (the ReLU is
// omitted after the network's final layer).
class StageModule {
 public:
  // dims: [in, h1, ..., out] for this stage's slice; `ends_network`
  // marks the stage holding the network's last layer (no trailing
  // ReLU — its output feeds the loss).
  StageModule(std::vector<std::size_t> dims, bool ends_network,
              std::uint64_t seed);

  Matrix forward(const Matrix& input);
  // grad wrt this stage's input; accumulates parameter gradients.
  Matrix backward(const Matrix& grad_output);
  void zero_grad();

  // Flattened parameters / gradients / optimizer-visible refs.
  std::vector<float> flat_parameters() const;
  void set_flat_parameters(const std::vector<float>& flat);
  std::vector<float> flat_gradients() const;
  void set_flat_gradients(const std::vector<float>& flat);
  std::size_t parameter_count() const;
  std::vector<ParamRef> params();

  bool ends_network() const { return ends_network_; }
  const std::vector<std::size_t>& dims() const { return dims_; }

 private:
  std::vector<std::size_t> dims_;
  bool ends_network_;
  std::vector<Linear> linears_;
  std::vector<Relu> relus_;
};

// Splits a monolithic layer specification [in, h1, ..., out] (L = n-1
// linear layers) into `stages` contiguous StageModule dims, balancing
// layers like partition_layers. Returns one dims vector per stage.
std::vector<std::vector<std::size_t>> split_layer_dims(
    const std::vector<std::size_t>& layer_sizes, int stages);

}  // namespace parcae::nn
