#include "obs/profile_span.h"

#include <cstdio>
#include <fstream>

#include "obs/json_util.h"

namespace parcae::obs {

TraceWriter::TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}

double TraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceWriter::push(std::string_view name, std::string_view cat,
                       char phase, double value, std::uint64_t trace_id,
                       std::uint64_t span_id,
                       std::uint64_t parent_span_id) {
  TraceEvent event;
  event.name = std::string(name);
  event.cat = std::string(cat);
  event.phase = phase;
  event.ts_us = now_us();
  event.value = value;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceWriter::begin(std::string_view name, std::string_view cat) {
  push(name, cat, 'B', 0.0);
}

void TraceWriter::begin(std::string_view name, std::string_view cat,
                        const TraceContext& context,
                        std::uint64_t parent_span_id) {
  push(name, cat, 'B', 0.0, context.trace_id, context.span_id,
       parent_span_id);
}

void TraceWriter::end(std::string_view name, std::string_view cat) {
  push(name, cat, 'E', 0.0);
}

void TraceWriter::instant(std::string_view name, std::string_view cat) {
  push(name, cat, 'i', 0.0);
}

void TraceWriter::counter(std::string_view name, double value) {
  push(name, "counter", 'C', value);
}

void TraceWriter::enable_trace_ids(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ids_enabled_) return;  // first seed wins; one stream per writer
  ids_enabled_ = true;
  id_state_ = seed;
}

bool TraceWriter::trace_ids_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_enabled_;
}

std::uint64_t TraceWriter::next_span_id() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t id = 0;
  while (id == 0) id = splitmix64(id_state_);
  return id;
}

void TraceWriter::set_process(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  pid_ = pid;
  process_name_ = std::move(name);
}

std::vector<TraceEvent> TraceWriter::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceWriter::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceWriter::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string TraceWriter::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Big enough for the three-id args block: 57 chars of fixed text
  // plus up to 3 x 16 hex digits.
  char buf[160];
  if (!process_name_.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":1,\"args\":{\"name\":",
                  pid_);
    out += buf;
    out += json_quote(process_name_) + "}}";
    first = false;
  }
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json_quote(e.name) +
           ",\"cat\":" + json_quote(e.cat) + ",\"ph\":\"";
    out += e.phase;
    out += "\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"pid\":%d,\"tid\":1",
                  e.ts_us, pid_);
    out += buf;
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (e.phase == 'C') {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.9g}", e.value);
      out += buf;
    } else if (e.span_id != 0) {
      // Hex strings: u64 ids do not fit a JSON double exactly.
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"trace_id\":\"%llx\",\"span_id\":\"%llx\","
                    "\"parent_span_id\":\"%llx\"}",
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<unsigned long long>(e.span_id),
                    static_cast<unsigned long long>(e.parent_span_id));
      out += buf;
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json() << "\n";
  return static_cast<bool>(os);
}

ProfileSpan::ProfileSpan(std::string_view name, MetricsRegistry* metrics,
                         TraceWriter* trace, std::string_view cat)
    : name_(name),
      cat_(cat),
      metrics_(metrics),
      trace_(trace),
      start_(std::chrono::steady_clock::now()) {
  if (trace_ == nullptr) return;
  if (trace_->trace_ids_enabled()) {
    const TraceContext& parent = current_trace_context();
    context_.trace_id = parent.trace_id;
    context_.span_id = trace_->next_span_id();
    trace_->begin(name_, cat_, context_, parent.span_id);
    saved_context_ = detail::exchange_current(context_);
    installed_context_ = true;
  } else {
    trace_->begin(name_, cat_);
  }
}

double ProfileSpan::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ProfileSpan::~ProfileSpan() {
  if (metrics_) metrics_->histogram(name_ + ".ms").observe(elapsed_ms());
  if (installed_context_) (void)detail::exchange_current(saved_context_);
  if (trace_) trace_->end(name_, cat_);
}

}  // namespace parcae::obs
