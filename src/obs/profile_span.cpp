#include "obs/profile_span.h"

#include <cstdio>
#include <fstream>

#include "obs/json_util.h"

namespace parcae::obs {

TraceWriter::TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}

double TraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceWriter::push(std::string_view name, std::string_view cat,
                       char phase, double value) {
  TraceEvent event;
  event.name = std::string(name);
  event.cat = std::string(cat);
  event.phase = phase;
  event.ts_us = now_us();
  event.value = value;
  events_.push_back(std::move(event));
}

void TraceWriter::begin(std::string_view name, std::string_view cat) {
  push(name, cat, 'B', 0.0);
}

void TraceWriter::end(std::string_view name, std::string_view cat) {
  push(name, cat, 'E', 0.0);
}

void TraceWriter::instant(std::string_view name, std::string_view cat) {
  push(name, cat, 'i', 0.0);
}

void TraceWriter::counter(std::string_view name, double value) {
  push(name, "counter", 'C', value);
}

std::string TraceWriter::to_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[96];
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json_quote(e.name) +
           ",\"cat\":" + json_quote(e.cat) + ",\"ph\":\"";
    out += e.phase;
    out += "\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"pid\":1,\"tid\":1",
                  e.ts_us);
    out += buf;
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (e.phase == 'C') {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.9g}", e.value);
      out += buf;
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json() << "\n";
  return static_cast<bool>(os);
}

ProfileSpan::ProfileSpan(std::string_view name, MetricsRegistry* metrics,
                         TraceWriter* trace, std::string_view cat)
    : name_(name),
      cat_(cat),
      metrics_(metrics),
      trace_(trace),
      start_(std::chrono::steady_clock::now()) {
  if (trace_) trace_->begin(name_, cat_);
}

double ProfileSpan::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ProfileSpan::~ProfileSpan() {
  if (metrics_) metrics_->histogram(name_ + ".ms").observe(elapsed_ms());
  if (trace_) trace_->end(name_, cat_);
}

}  // namespace parcae::obs
