#include "obs/timeseries.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "obs/json_util.h"

namespace parcae::obs {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string format_cell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}
}  // namespace

void TimeSeriesRecorder::begin_row() {
  rows_.emplace_back(columns_.size(), kNaN);
}

std::size_t TimeSeriesRecorder::column_index(std::string_view column) {
  const auto it = index_.find(column);
  if (it != index_.end()) return it->second;
  const std::size_t idx = columns_.size();
  columns_.emplace_back(column);
  index_.emplace(columns_.back(), idx);
  return idx;
}

void TimeSeriesRecorder::set(std::string_view column, double value) {
  if (rows_.empty()) begin_row();
  const std::size_t idx = column_index(column);
  std::vector<double>& row = rows_.back();
  if (row.size() <= idx) row.resize(idx + 1, kNaN);
  row[idx] = value;
}

double TimeSeriesRecorder::at(std::size_t row, std::string_view column) const {
  const auto it = index_.find(column);
  if (row >= rows_.size() || it == index_.end()) return kNaN;
  const std::vector<double>& r = rows_[row];
  return it->second < r.size() ? r[it->second] : kNaN;
}

std::string TimeSeriesRecorder::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ",";
    out += columns_[c];
  }
  out += "\n";
  for (const std::vector<double>& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) out += ",";
      const double v = c < row.size() ? row[c] : kNaN;
      if (!std::isnan(v)) out += format_cell(v);
    }
    out += "\n";
  }
  return out;
}

std::string TimeSeriesRecorder::to_jsonl() const {
  std::string out;
  for (const std::vector<double>& row : rows_) {
    out += "{";
    bool first = true;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const double v = c < row.size() ? row[c] : kNaN;
      if (std::isnan(v)) continue;
      if (!first) out += ",";
      first = false;
      out += json_quote(columns_[c]) + ":" + format_cell(v);
    }
    out += "}\n";
  }
  return out;
}

bool TimeSeriesRecorder::write_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_csv();
  return static_cast<bool>(os);
}

bool TimeSeriesRecorder::write_jsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_jsonl();
  return static_cast<bool>(os);
}

void TimeSeriesRecorder::clear() {
  columns_.clear();
  index_.clear();
  rows_.clear();
}

}  // namespace parcae::obs
