#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"

namespace parcae::obs {

namespace {
// Smallest bucket bound and per-bucket growth factor (2^(1/8)).
constexpr double kMinBound = 1e-6;
const double kGrowth = std::pow(2.0, 1.0 / 8.0);
const double kInvLogGrowth = 1.0 / std::log(kGrowth);
}  // namespace

int Histogram::bucket_index(double value) {
  if (!(value > kMinBound)) return 0;  // underflow (and NaN) bucket
  const int idx =
      1 + static_cast<int>(std::floor(std::log(value / kMinBound) *
                                      kInvLogGrowth));
  return std::clamp(idx, 1, kBuckets);
}

double Histogram::bucket_value(int index) {
  if (index <= 0) return kMinBound;
  // Geometric midpoint of [kMinBound*g^(i-1), kMinBound*g^i].
  return kMinBound * std::pow(kGrowth, static_cast<double>(index) - 0.5);
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

// Requires mu_ held.
double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(
             std::clamp(q, 0.0, 1.0) * static_cast<double>(count_))));
  // The first and last ranks are tracked exactly.
  if (target <= 1) return min_;
  if (target >= count_) return max_;
  std::uint64_t cum = 0;
  for (int i = 0; i <= kBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= target) return std::clamp(bucket_value(i), min_, max_);
  }
  return max_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

HistogramStats Histogram::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStats s;
  s.count = count_;
  if (count_ == 0) return s;
  s.sum = sum_;
  s.mean = sum_ / static_cast<double>(count_);
  s.min = min_;
  s.max = max_;
  s.p50 = quantile_locked(0.50);
  s.p95 = quantile_locked(0.95);
  s.p99 = quantile_locked(0.99);
  return s;
}

double MetricsSnapshot::counter_or(const std::string& name,
                                   double fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge_or(const std::string& name,
                                 double fallback) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

std::string MetricsSnapshot::render() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable t({"metric", "kind", "value"});
    for (const auto& [name, value] : counters)
      t.row().add(name).add("counter").add(value, 3);
    for (const auto& [name, value] : gauges)
      t.row().add(name).add("gauge").add(value, 3);
    out += t.to_string();
  }
  if (!histograms.empty()) {
    if (!out.empty()) out += "\n";
    TextTable t({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : histograms)
      t.row()
          .add(name)
          .add(static_cast<long long>(h.count))
          .add(h.mean, 4)
          .add(h.p50, 4)
          .add(h.p95, 4)
          .add(h.p99, 4)
          .add(h.max, 4);
    out += t.to_string();
  }
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  TextTable t({"kind", "name", "count", "sum", "mean", "p50", "p95", "p99",
               "max"});
  for (const auto& [name, value] : counters)
    t.row().add("counter").add(name).add(1).add(value, 6).add("").add("")
        .add("").add("").add("");
  for (const auto& [name, value] : gauges)
    t.row().add("gauge").add(name).add(1).add(value, 6).add("").add("")
        .add("").add("").add("");
  for (const auto& [name, h] : histograms)
    t.row()
        .add("histogram")
        .add(name)
        .add(static_cast<long long>(h.count))
        .add(h.sum, 6)
        .add(h.mean, 6)
        .add(h.p50, 6)
        .add(h.p95, 6)
        .add(h.p99, 6)
        .add(h.max, 6);
  return t.to_csv();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

double MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h.stats();
  return snap;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace parcae::obs
