#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "obs/json_util.h"

namespace parcae::obs {

namespace {
// Smallest bucket bound and per-bucket growth factor (2^(1/8)).
constexpr double kMinBound = 1e-6;
const double kGrowth = std::pow(2.0, 1.0 / 8.0);
const double kInvLogGrowth = 1.0 / std::log(kGrowth);
}  // namespace

std::string format_metric_value(double value) {
  char buf[40];
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // %.17g round-trips every double; prefer the shortest of %.15g/%.17g
  // that parses back exactly, so common values stay human-sized.
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  if (std::strtod(buf, nullptr) != value)
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

int Histogram::bucket_index(double value) {
  if (!(value > kMinBound)) return 0;  // underflow (and NaN) bucket
  const int idx =
      1 + static_cast<int>(std::floor(std::log(value / kMinBound) *
                                      kInvLogGrowth));
  return std::clamp(idx, 1, kBuckets);
}

double Histogram::bucket_value(int index) {
  if (index <= 0) return kMinBound;
  // Geometric midpoint of [kMinBound*g^(i-1), kMinBound*g^i].
  return kMinBound * std::pow(kGrowth, static_cast<double>(index) - 0.5);
}

double Histogram::bucket_upper_bound(int index) {
  if (index <= 0) return kMinBound;
  return kMinBound * std::pow(kGrowth, static_cast<double>(index));
}

double Histogram::bucket_midpoint(int index) { return bucket_value(index); }

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

// Requires mu_ held.
double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(
             std::clamp(q, 0.0, 1.0) * static_cast<double>(count_))));
  // The first and last ranks are tracked exactly.
  if (target <= 1) return min_;
  if (target >= count_) return max_;
  std::uint64_t cum = 0;
  for (int i = 0; i <= kBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= target) return std::clamp(bucket_value(i), min_, max_);
  }
  return max_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

HistogramStats Histogram::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStats s;
  s.count = count_;
  if (count_ == 0) return s;
  s.sum = sum_;
  s.mean = sum_ / static_cast<double>(count_);
  s.min = min_;
  s.max = max_;
  s.p50 = quantile_locked(0.50);
  s.p95 = quantile_locked(0.95);
  s.p99 = quantile_locked(0.99);
  for (int i = 0; i <= kBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n != 0) s.buckets.push_back({i, bucket_upper_bound(i), n});
  }
  return s;
}

double HistogramStats::quantile(double q) const {
  if (count == 0) return 0.0;
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(
             std::clamp(q, 0.0, 1.0) * static_cast<double>(count))));
  if (target <= 1) return min;
  if (target >= count) return max;
  std::uint64_t cum = 0;
  for (const HistogramBucket& b : buckets) {
    cum += b.count;
    if (cum >= target)
      return std::clamp(Histogram::bucket_midpoint(b.index), min, max);
  }
  return max;
}

void HistogramStats::merge(const HistogramStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  // Bucket-wise sum: both lists are ascending by index.
  std::vector<HistogramBucket> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].index < other.buckets[j].index)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               other.buckets[j].index < buckets[i].index) {
      merged.push_back(other.buckets[j++]);
    } else {
      HistogramBucket b = buckets[i++];
      b.count += other.buckets[j++].count;
      merged.push_back(b);
    }
  }
  buckets = std::move(merged);
  mean = sum / static_cast<double>(count);
  p50 = quantile(0.50);
  p95 = quantile(0.95);
  p99 = quantile(0.99);
}

double MetricsSnapshot::counter_or(const std::string& name,
                                   double fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge_or(const std::string& name,
                                 double fallback) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

std::string MetricsSnapshot::render() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable t({"metric", "kind", "value"});
    for (const auto& [name, value] : counters)
      t.row().add(name).add("counter").add(value, 3);
    for (const auto& [name, value] : gauges)
      t.row().add(name).add("gauge").add(value, 3);
    out += t.to_string();
  }
  if (!histograms.empty()) {
    if (!out.empty()) out += "\n";
    TextTable t({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : histograms)
      t.row()
          .add(name)
          .add(static_cast<long long>(h.count))
          .add(h.mean, 4)
          .add(h.p50, 4)
          .add(h.p95, 4)
          .add(h.p99, 4)
          .add(h.max, 4);
    out += t.to_string();
  }
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  TextTable t({"kind", "name", "count", "sum", "mean", "p50", "p95", "p99",
               "max"});
  for (const auto& [name, value] : counters)
    t.row().add("counter").add(name).add(1).add(value, 6).add("").add("")
        .add("").add("").add("");
  for (const auto& [name, value] : gauges)
    t.row().add("gauge").add(name).add(1).add(value, 6).add("").add("")
        .add("").add("").add("");
  for (const auto& [name, h] : histograms) {
    t.row()
        .add("histogram")
        .add(name)
        .add(static_cast<long long>(h.count))
        .add(h.sum, 6)
        .add(h.mean, 6)
        .add(h.p50, 6)
        .add(h.p95, 6)
        .add(h.p99, 6)
        .add(h.max, 6);
    // One row per occupied bucket: count = in-bucket, sum = cumulative
    // (Prometheus-style le semantics) — external tools re-aggregate
    // from these without the live registry.
    std::uint64_t cum = 0;
    for (const HistogramBucket& b : h.buckets) {
      cum += b.count;
      t.row()
          .add("bucket")
          .add(name + ".le=" + format_metric_value(b.upper))
          .add(static_cast<long long>(b.count))
          .add(static_cast<long long>(cum))
          .add("")
          .add("")
          .add("")
          .add("")
          .add("");
    }
  }
  return t.to_csv();
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += json_quote(name) + ":" + format_metric_value(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += json_quote(name) + ":" + format_metric_value(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += json_quote(name) + ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + format_metric_value(h.sum) +
           ",\"mean\":" + format_metric_value(h.mean) +
           ",\"min\":" + format_metric_value(h.min) +
           ",\"max\":" + format_metric_value(h.max) +
           ",\"p50\":" + format_metric_value(h.p50) +
           ",\"p95\":" + format_metric_value(h.p95) +
           ",\"p99\":" + format_metric_value(h.p99) + ",\"buckets\":[";
    bool bfirst = true;
    for (const HistogramBucket& b : h.buckets) {
      if (!bfirst) out += ",";
      bfirst = false;
      out += "{\"index\":" + std::to_string(b.index) +
             ",\"le\":" + format_metric_value(b.upper) +
             ",\"count\":" + std::to_string(b.count) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

double MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h.stats();
  return snap;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace parcae::obs
