#include "obs/trace_context.h"

namespace parcae::obs {

namespace {
thread_local TraceContext t_current;
}  // namespace

const TraceContext& current_trace_context() { return t_current; }

TraceContextScope::TraceContextScope(TraceContext context)
    : saved_(t_current) {
  t_current = context;
}

TraceContextScope::~TraceContextScope() { t_current = saved_; }

namespace detail {
TraceContext exchange_current(TraceContext context) {
  const TraceContext previous = t_current;
  t_current = context;
  return previous;
}
}  // namespace detail

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t derive_trace_id(std::uint64_t seed, std::uint64_t interval) {
  std::uint64_t state = seed ^ 0x7261726365746361ull;  // "parcaetra"-ish tag
  (void)splitmix64(state);
  state ^= interval;
  const std::uint64_t id = splitmix64(state);
  return id == 0 ? 1 : id;
}

std::uint64_t fork_trace_seed(std::uint64_t seed, std::uint64_t component) {
  std::uint64_t state = seed;
  (void)splitmix64(state);
  state ^= component * 0x9e3779b97f4a7c15ull;
  return splitmix64(state);
}

}  // namespace parcae::obs
