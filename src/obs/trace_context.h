// Distributed trace context: the causal identity a span carries across
// component and process boundaries.
//
// A TraceContext names one position in a causal tree: the trace it
// belongs to (one scheduler decision and everything it causes) and the
// span that is currently open. ProfileSpan reads the thread's current
// context to parent itself, allocates a fresh span id, and installs
// itself as current for its scope; the RPC client stamps the current
// context into the request envelope, and the RPC server installs the
// envelope's context around the handler — so a client-side call span
// in one process and the server-side handler span in another share one
// trace_id and a parent/child span edge, and `trace_tool merge` can
// fuse their per-process trace files into a single timeline with
// cross-process flow arrows.
//
// Ids are deterministic: trace ids derive from (seed, interval) and
// span ids from a per-writer SplitMix64 stream forked from the job
// seed — no wall clock, no global RNG — so the id graph of a seeded
// run replays bit-for-bit (timestamps are the only wall-clock field in
// a trace file). Context is thread-local and does not cross ThreadPool
// workers; the decision-path inner loops run contextless by design.
#pragma once

#include <cstdint>

namespace parcae::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no active trace
  // Id of the currently open span (the parent of any span opened under
  // this context). 0 = root: children record parent_span_id 0.
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

// The calling thread's current context ({0, 0} when none is active).
const TraceContext& current_trace_context();

// RAII: installs `context` as the thread's current context, restoring
// the previous one on destruction. Used by the RPC server around
// handlers (explicit context from the wire) and by executor backends
// to root a whole interval under one trace id.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

namespace detail {
// Swaps the thread's current context, returning the previous one
// (ProfileSpan's non-RAII install path; prefer TraceContextScope).
TraceContext exchange_current(TraceContext context);
}  // namespace detail

// SplitMix64 step: the id-derivation primitive (also Rng's seeding
// scheme). Pure function, so id streams are reproducible anywhere.
std::uint64_t splitmix64(std::uint64_t& state);

// Deterministic trace id for one scheduler interval: a SplitMix64 hash
// of (seed, interval), never 0.
std::uint64_t derive_trace_id(std::uint64_t seed, std::uint64_t interval);

// Deterministic per-component span-id stream forked from the job seed
// and a component tag (client vs hub writers get independent streams).
std::uint64_t fork_trace_seed(std::uint64_t seed, std::uint64_t component);

}  // namespace parcae::obs
