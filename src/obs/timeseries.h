// Columnar per-interval time series.
//
// The simulator (and any other interval-driven backend) samples a few
// scalars every scheduling interval — live instances, the liveput
// estimate, effective throughput, stall seconds, dollars spent — into
// named columns. Rows align 1:1 with scheduling intervals, and the
// whole series exports as CSV (one row per interval, for plotting)
// or JSONL (one object per interval). Columns may appear mid-run;
// earlier rows hold NaN for them and export as empty cells.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace parcae::obs {

class TimeSeriesRecorder {
 public:
  // Start the next row (call once per interval, before set()).
  void begin_row();
  // Set `column` in the current row, creating the column on first use.
  // A set() before any begin_row() starts row 0 implicitly.
  void set(std::string_view column, double value);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  // NaN when the cell was never set.
  double at(std::size_t row, std::string_view column) const;

  std::string to_csv() const;
  std::string to_jsonl() const;
  bool write_csv(const std::string& path) const;
  bool write_jsonl(const std::string& path) const;

  void clear();

 private:
  std::size_t column_index(std::string_view column);

  std::vector<std::string> columns_;
  std::map<std::string, std::size_t, std::less<>> index_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace parcae::obs
