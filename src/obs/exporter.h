// Live telemetry export: Prometheus text exposition of a
// MetricsSnapshot, and fleet rollups of per-job prefixed registries.
//
// The rendering half is pure (snapshot in, exposition text out) so it
// is testable and byte-deterministic; the serving half — the
// `obs.metrics` RPC endpoint a scraper hits over the existing inproc/
// TCP transports — lives in src/rpc/obs_service.* (the rpc layer
// depends on obs, not the reverse).
//
// Name mapping: Parcae instrument names are dotted
// ("job3.scheduler.intervals"); Prometheus names are underscore_cased
// with an optional job label split off the "job<N>." prefix:
//   parcae_scheduler_intervals_total{job="3"} 42
// Counters get a _total suffix, histograms the conventional
// _bucket{le="..."} / _sum / _count triple (cumulative buckets, +Inf
// included). Values use format_metric_value — byte-identical with
// MetricsSnapshot::to_json, so there is no snapshot-vs-exporter drift.
//
// FleetAggregator folds per-job prefixed snapshots into fleet rollups:
// counters sum, gauges sum plus a ".max" companion, histograms merge
// bucket-wise (HistogramStats::merge) so fleet-level p99s are exactly
// what one merged histogram would report.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace parcae::obs {

// Splits a "job<digits>." prefix: returns true and fills job/suffix
// ("job3.scheduler.intervals" -> "3", "scheduler.intervals").
bool split_job_prefix(std::string_view name, std::string* job,
                      std::string* suffix);

// Prometheus metric-name mangling: '.' -> '_', any other character
// outside [a-zA-Z0-9_:] -> '_', leading digit prefixed with '_'.
std::string prometheus_name(std::string_view name);

struct PrometheusOptions {
  // Prefixed to every metric name ("parcae_" by default).
  std::string namespace_prefix = "parcae_";
  // Split "job<N>." instrument prefixes into a {job="N"} label.
  bool job_labels = true;
};

// The whole snapshot in Prometheus text exposition format 0.0.4
// (# HELP / # TYPE headers, one family per instrument). Deterministic:
// families render in registry (lexicographic) order.
std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const PrometheusOptions& options = {});

// Folds per-job prefixed snapshots into "fleet.<suffix>" rollups.
class FleetAggregator {
 public:
  // Accumulates one snapshot: "job<N>." instruments are folded into
  // their fleet rollup; anything else passes through unchanged (last
  // write wins for duplicate pass-through names).
  void fold(const MetricsSnapshot& snapshot);

  // Distinct job ids folded so far.
  int jobs() const { return static_cast<int>(jobs_seen_); }

  // The rollup: "fleet.<suffix>" counters (sum), gauges (sum, plus
  // "fleet.<suffix>.max"), histograms (bucket merge), pass-through
  // instruments, and a "fleet.jobs" gauge.
  MetricsSnapshot rollup() const;

 private:
  std::size_t jobs_seen_ = 0;
  std::map<std::string, bool> job_ids_;
  MetricsSnapshot rolled_;  // fleet.* aggregates + pass-through
};

}  // namespace parcae::obs
