#include "obs/exporter.h"

#include <algorithm>
#include <cctype>

namespace parcae::obs {

bool split_job_prefix(std::string_view name, std::string* job,
                      std::string* suffix) {
  if (name.rfind("job", 0) != 0) return false;
  std::size_t i = 3;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i])))
    ++i;
  if (i == 3 || i >= name.size() || name[i] != '.' || i + 1 >= name.size())
    return false;
  if (job != nullptr) *job = std::string(name.substr(3, i - 3));
  if (suffix != nullptr) *suffix = std::string(name.substr(i + 1));
  return true;
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

namespace {

struct FamilyName {
  std::string metric;  // mangled, namespaced
  std::string label;   // "" or "{job=\"3\"}"
};

FamilyName family_name(const std::string& raw,
                       const PrometheusOptions& options) {
  FamilyName f;
  std::string job, suffix;
  if (options.job_labels && split_job_prefix(raw, &job, &suffix)) {
    f.metric = options.namespace_prefix + prometheus_name(suffix);
    f.label = "{job=\"" + job + "\"}";
  } else {
    f.metric = options.namespace_prefix + prometheus_name(raw);
  }
  return f;
}

void append_header(std::string& out, const std::string& metric,
                   const char* type, std::map<std::string, bool>& seen) {
  if (seen.count(metric) != 0) return;
  seen[metric] = true;
  out += "# HELP " + metric + " Parcae instrument " + metric + "\n";
  out += "# TYPE " + metric + " " + type + "\n";
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const PrometheusOptions& options) {
  std::string out;
  // One family may cover many job labels; emit HELP/TYPE once each.
  std::map<std::string, bool> seen;
  for (const auto& [name, value] : snapshot.counters) {
    const FamilyName f = family_name(name, options);
    const std::string metric = f.metric + "_total";
    append_header(out, metric, "counter", seen);
    out += metric + f.label + " " + format_metric_value(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const FamilyName f = family_name(name, options);
    append_header(out, f.metric, "gauge", seen);
    out += f.metric + f.label + " " + format_metric_value(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const FamilyName f = family_name(name, options);
    append_header(out, f.metric, "histogram", seen);
    // Cumulative le buckets; the label set merges {job} with {le}.
    const std::string label_open =
        f.label.empty() ? "{" : f.label.substr(0, f.label.size() - 1) + ",";
    std::uint64_t cum = 0;
    for (const HistogramBucket& b : h.buckets) {
      cum += b.count;
      out += f.metric + "_bucket" + label_open + "le=\"" +
             format_metric_value(b.upper) + "\"} " + std::to_string(cum) +
             "\n";
    }
    out += f.metric + "_bucket" + label_open + "le=\"+Inf\"} " +
           std::to_string(h.count) + "\n";
    out += f.metric + "_sum" + f.label + " " + format_metric_value(h.sum) +
           "\n";
    out += f.metric + "_count" + f.label + " " + std::to_string(h.count) +
           "\n";
  }
  return out;
}

void FleetAggregator::fold(const MetricsSnapshot& snapshot) {
  std::string job, suffix;
  for (const auto& [name, value] : snapshot.counters) {
    if (split_job_prefix(name, &job, &suffix)) {
      job_ids_[job] = true;
      rolled_.counters["fleet." + suffix] += value;
    } else {
      rolled_.counters[name] = value;
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (split_job_prefix(name, &job, &suffix)) {
      job_ids_[job] = true;
      rolled_.gauges["fleet." + suffix] += value;
      const std::string max_name = "fleet." + suffix + ".max";
      const auto [it, fresh] = rolled_.gauges.try_emplace(max_name, value);
      if (!fresh) it->second = std::max(it->second, value);
    } else {
      rolled_.gauges[name] = value;
    }
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (split_job_prefix(name, &job, &suffix)) {
      job_ids_[job] = true;
      rolled_.histograms["fleet." + suffix].merge(h);
    } else {
      rolled_.histograms[name] = h;
    }
  }
  jobs_seen_ = job_ids_.size();
}

MetricsSnapshot FleetAggregator::rollup() const {
  MetricsSnapshot out = rolled_;
  out.gauges["fleet.jobs"] = static_cast<double>(jobs_seen_);
  return out;
}

}  // namespace parcae::obs
