// JSON string escaping shared by the observability exporters (Chrome
// trace events, time-series JSONL) and the EventLog JSONL export.
#pragma once

#include <string>
#include <string_view>

namespace parcae::obs {

// Escapes the contents of `s` for embedding inside a JSON string
// literal (no surrounding quotes added): quotes, backslashes, and
// control characters become their \-sequences.
std::string json_escape(std::string_view s);

// `s` escaped and wrapped in double quotes.
std::string json_quote(std::string_view s);

}  // namespace parcae::obs
