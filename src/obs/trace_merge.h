// Fuse per-process Chrome trace files into one Perfetto timeline.
//
// Each input file (one TraceWriter's to_json output — the scheduler/
// agent side and the cluster hub side of a run, or N fleet jobs)
// becomes one process track (pid = input index + 1, labeled with a
// process_name metadata event). Cross-process causality is recovered
// from the distributed-trace ids ProfileSpan stamps into event args
// (obs/trace_context.h): whenever a span's parent_span_id names a span
// that begins in a *different* input, a Chrome flow arrow
// (ph 's' -> ph 'f') is drawn from the parent's begin to the child's
// begin — a scheduler decision span visibly fans out into the KV/PS
// handler spans it caused on the hub.
//
// Merging is pure text-in/text-out and deterministic: output events
// keep their per-input order and timestamps; flow events derive their
// ids from the child span id. The parser accepts exactly the JSON
// this repo emits (flat event objects, one optional args object) and
// rejects anything else with a diagnostic rather than guessing.
#pragma once

#include <string>
#include <vector>

namespace parcae::obs {

struct TraceMergeInput {
  std::string label;  // process name on the merged timeline
  std::string json;   // one TraceWriter::to_json document
};

struct TraceMergeStats {
  std::size_t events = 0;       // events re-emitted (all inputs)
  std::size_t flow_arrows = 0;  // cross-process arrows added
  std::size_t traces = 0;       // distinct trace ids seen
};

// Merges `inputs` into one Chrome trace JSON document. Returns an
// empty string and fills *error on a malformed input; `stats` is
// optional.
std::string merge_traces(const std::vector<TraceMergeInput>& inputs,
                         std::string* error,
                         TraceMergeStats* stats = nullptr);

}  // namespace parcae::obs
