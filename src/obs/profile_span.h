// RAII profiling spans and Chrome trace-event export.
//
// A ProfileSpan times a scope, records the elapsed milliseconds into
// a histogram named "<name>.ms" in a MetricsRegistry, and (when a
// TraceWriter is attached) emits a begin/end event pair so the whole
// run — intervals, ARIMA fits, Monte-Carlo sampling, the liveput DP,
// migration planning and execution — renders as a timeline in
// chrome://tracing or https://ui.perfetto.dev. Both sinks are
// optional; with neither attached a span is two clock reads.
//
// TraceWriter collects events in memory and serializes them as the
// Chrome trace-event JSON object format ({"traceEvents": [...]}).
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace parcae::obs {

// One Chrome trace event. `phase` is the trace-event ph field:
// 'B'/'E' duration begin/end, 'i' instant, 'C' counter.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'i';
  double ts_us = 0.0;   // microseconds since the writer's epoch
  double value = 0.0;   // counter events only
};

class TraceWriter {
 public:
  TraceWriter();

  void begin(std::string_view name, std::string_view cat);
  void end(std::string_view name, std::string_view cat);
  void instant(std::string_view name, std::string_view cat);
  void counter(std::string_view name, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  // {"traceEvents": [...], "displayTimeUnit": "ms"} — loadable by
  // chrome://tracing and Perfetto.
  std::string to_json() const;
  bool write_file(const std::string& path) const;

 private:
  double now_us() const;
  void push(std::string_view name, std::string_view cat, char phase,
            double value);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
};

// Scoped timer: histogram "<name>.ms" on destruction, plus a B/E pair
// in `trace` when attached. Nest freely; nesting renders as stacked
// slices on the timeline.
class ProfileSpan {
 public:
  explicit ProfileSpan(std::string_view name,
                       MetricsRegistry* metrics = nullptr,
                       TraceWriter* trace = nullptr,
                       std::string_view cat = "parcae");
  ~ProfileSpan();
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

  double elapsed_ms() const;

 private:
  std::string name_;
  std::string cat_;
  MetricsRegistry* metrics_;
  TraceWriter* trace_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace parcae::obs
