// RAII profiling spans and Chrome trace-event export.
//
// A ProfileSpan times a scope, records the elapsed milliseconds into
// a histogram named "<name>.ms" in a MetricsRegistry, and (when a
// TraceWriter is attached) emits a begin/end event pair so the whole
// run — intervals, ARIMA fits, Monte-Carlo sampling, the liveput DP,
// migration planning and execution — renders as a timeline in
// chrome://tracing or https://ui.perfetto.dev. Both sinks are
// optional; with neither attached a span is two clock reads.
//
// Distributed tracing: a TraceWriter with trace ids enabled
// (enable_trace_ids(seed)) allocates a deterministic span id for every
// ProfileSpan, parents it under the thread's current TraceContext, and
// installs the span as current for its scope — so nested spans, RPC
// client call spans, and (via the envelope) server-side handler spans
// in another process all join one causal trace. `trace_tool merge`
// fuses per-process files on these ids (docs/observability.md).
//
// TraceWriter collects events in memory and serializes them as the
// Chrome trace-event JSON object format ({"traceEvents": [...]}).
// push() is mutex-guarded: the TCP transport's server thread may emit
// handler spans into the hub writer while a timed-out client retries.
#pragma once

#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace parcae::obs {

// One Chrome trace event. `phase` is the trace-event ph field:
// 'B'/'E' duration begin/end, 'i' instant, 'C' counter.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'i';
  double ts_us = 0.0;   // microseconds since the writer's epoch
  double value = 0.0;   // counter events only
  // Distributed-trace identity ('B' events; 0 = not part of a trace).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

class TraceWriter {
 public:
  TraceWriter();

  void begin(std::string_view name, std::string_view cat);
  // Begin event carrying a distributed-trace identity.
  void begin(std::string_view name, std::string_view cat,
             const TraceContext& context, std::uint64_t parent_span_id);
  void end(std::string_view name, std::string_view cat);
  void instant(std::string_view name, std::string_view cat);
  void counter(std::string_view name, double value);

  // Turns on deterministic span-id allocation (SplitMix64 stream
  // seeded from the job seed; see obs/trace_context.h). First call
  // wins — N cores sharing one writer keep one id stream.
  void enable_trace_ids(std::uint64_t seed);
  bool trace_ids_enabled() const;
  // Next span id from the writer's stream (never 0). Requires
  // trace_ids_enabled().
  std::uint64_t next_span_id();

  // Process identity stamped on every event (defaults to pid 1, no
  // name). `trace_tool merge` re-numbers pids, but naming the process
  // here labels single-file timelines too.
  void set_process(int pid, std::string name);

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  // {"traceEvents": [...], "displayTimeUnit": "ms"} — loadable by
  // chrome://tracing and Perfetto. Span ids render as hex strings in
  // event args ({"trace_id":"...","span_id":"..."}).
  std::string to_json() const;
  bool write_file(const std::string& path) const;

 private:
  double now_us() const;
  void push(std::string_view name, std::string_view cat, char phase,
            double value, std::uint64_t trace_id = 0,
            std::uint64_t span_id = 0, std::uint64_t parent_span_id = 0);

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  bool ids_enabled_ = false;
  std::uint64_t id_state_ = 0;
  int pid_ = 1;
  std::string process_name_;
};

// Scoped timer: histogram "<name>.ms" on destruction, plus a B/E pair
// in `trace` when attached. Nest freely; nesting renders as stacked
// slices on the timeline. When the writer has trace ids enabled the
// span joins the thread's current TraceContext (see header comment).
class ProfileSpan {
 public:
  explicit ProfileSpan(std::string_view name,
                       MetricsRegistry* metrics = nullptr,
                       TraceWriter* trace = nullptr,
                       std::string_view cat = "parcae");
  ~ProfileSpan();
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

  double elapsed_ms() const;
  // This span's distributed identity ({0,0} when the writer has no
  // trace ids). trace_id may still be 0 when no root context was
  // active — the span id alone keeps parent/child edges intact.
  const TraceContext& context() const { return context_; }

 private:
  std::string name_;
  std::string cat_;
  MetricsRegistry* metrics_;
  TraceWriter* trace_;
  TraceContext context_;
  TraceContext saved_context_;
  bool installed_context_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace parcae::obs
