// Always-on metrics for the scheduler and its executor backends:
// named counters, gauges, and log-bucketed histograms.
//
// The paper's evaluation argues from internal quantities — optimizer
// latency (Figure 18b), migration cost breakdowns (Table 4),
// per-interval liveput — that ad-hoc printouts cannot surface from a
// long run. A MetricsRegistry owns named instruments; looking one up
// is a mutex-guarded map find (hold the returned reference to
// amortize it), recording into a counter or gauge is a single atomic
// op, and a histogram observation is one lock + one bucket increment.
// Cheap enough to leave compiled in and enabled by default.
//
// There is one process-wide default_registry() for code without an
// injected registry (the baselines' stall accounting); SchedulerCore
// and the CLI tools use per-run instances so concurrent runs do not
// mix. Recording only *observes* — it never feeds back into
// decisions, so golden outputs are bit-identical with metrics on.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parcae::obs {

// Shortest round-trippable rendering shared by every numeric export
// path (CSV buckets, JSON snapshots, the Prometheus exporter), so a
// value serialized twice is byte-identical — no rounding drift between
// snapshot and exporter.
std::string format_metric_value(double value);

// Monotonically increasing sum (events seen, seconds stalled, ...).
class Counter {
 public:
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void inc() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Last-written value (instances available, pending stall, ...).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// One occupied histogram bucket at snapshot time. `index` is the
// log-bucket index (0 = underflow), `upper` its inclusive upper bound,
// `count` the observations that landed in it (not cumulative).
struct HistogramBucket {
  int index = 0;
  double upper = 0.0;
  std::uint64_t count = 0;
};

// Summary of one histogram at snapshot time. `buckets` holds the
// occupied buckets in ascending index order — enough for external
// tools (and FleetAggregator) to re-aggregate and re-derive quantiles
// exactly as the live Histogram would.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<HistogramBucket> buckets;

  // Same linear-rank-over-buckets estimate Histogram::quantile
  // computes, re-derived from the sparse bucket list: merging two
  // snapshots and asking for p99 gives the answer the merged live
  // histograms would have given.
  double quantile(double q) const;
  // Folds `other` into this summary (bucket-wise sum, exact
  // min/max/count/sum merge) and recomputes mean/p50/p95/p99.
  void merge(const HistogramStats& other);
};

// Log-bucketed histogram: geometric buckets growing by 2^(1/8) (~9%
// per bucket) from 1e-6 up to ~1.8e13, so quantile estimates are
// within ~±4.5% of the true value anywhere in that range. Sum, min,
// and max are tracked exactly; values <= 1e-6 (including 0) land in
// the underflow bucket and report as min().
class Histogram {
 public:
  static constexpr int kBuckets = 512;

  void observe(double value);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;
  double mean() const;
  // Linear rank over buckets, geometric midpoint within one; q in
  // [0, 1]. Returns 0 when empty.
  double quantile(double q) const;
  HistogramStats stats() const;

  // Bucket geometry, public so snapshots and external tools can
  // re-aggregate: the inclusive upper bound and the geometric midpoint
  // (the quantile estimate) of bucket `index`.
  static double bucket_upper_bound(int index);
  static double bucket_midpoint(int index);

 private:
  static int bucket_index(double value);
  static double bucket_value(int index);
  double quantile_locked(double q) const;

  mutable std::mutex mu_;
  std::array<std::uint64_t, kBuckets + 1> buckets_{};  // [0] = underflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Everything a registry held at one moment, detached from it (safe to
// copy into results and reports).
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  // 0.0 when the name is absent.
  double counter_or(const std::string& name, double fallback = 0.0) const;
  double gauge_or(const std::string& name, double fallback = 0.0) const;

  // Aligned text tables (counters+gauges, then histograms with
  // count/mean/p50/p95/p99/max).
  std::string render() const;
  // "kind,name,count,sum,mean,p50,p95,p99,max" rows for every
  // instrument (counters/gauges fill only count=1 and sum), plus one
  // `bucket` row per occupied histogram bucket
  // ("bucket,<hist>.le=<upper>,<count>,<cumulative>") so external
  // tools can re-aggregate without the live registry.
  std::string to_csv() const;
  // Full-fidelity JSON object: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,mean,min,max,p50,p95,p99,
  // "buckets":[{"index":i,"le":bound,"count":n},...]}}}. Numbers use
  // format_metric_value, byte-identical with the exporter.
  std::string to_json() const;
};

// Named-instrument registry. References returned by counter() /
// gauge() / histogram() stay valid until clear() (std::map nodes are
// stable); record through them freely from the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Current value, 0.0 when the instrument does not exist (the
  // queries never create instruments).
  double counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  MetricsSnapshot snapshot() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// The process-wide registry used when no per-run instance is injected.
MetricsRegistry& default_registry();

}  // namespace parcae::obs
