#include "obs/trace_merge.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "obs/json_util.h"

namespace parcae::obs {

namespace {

// ---- minimal JSON parser (exactly what TraceWriter emits) -----------
//
// Flat values only as far as the merger needs them: a document is an
// object, "traceEvents" is an array of objects whose fields are
// strings, numbers, or one nested "args" object of strings/numbers.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    auto v = value();
    skip_ws();
    if (!v || pos_ != text_.size()) {
      if (error != nullptr)
        *error = failed_.empty() ? "trailing bytes after JSON document"
                                 : failed_;
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool fail(const std::string& what) {
    if (failed_.empty())
      failed_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        fail("bad literal");
        return std::nullopt;
      }
      pos_ += 4;
      return JsonValue{};
    }
    return number();
  }

  std::optional<JsonValue> boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return v;
    }
    fail("bad literal");
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) {
      fail("bad number");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::optional<JsonValue> string_value() {
    if (!consume('"')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case '/': v.string.push_back('/'); break;
        case 'b': v.string.push_back('\b'); break;
        case 'f': v.string.push_back('\f'); break;
        case 'n': v.string.push_back('\n'); break;
        case 'r': v.string.push_back('\r'); break;
        case 't': v.string.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          const unsigned code = static_cast<unsigned>(
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16));
          pos_ += 4;
          // The writer only escapes control characters (< 0x20), so a
          // single byte is always enough here.
          v.string.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          fail("bad escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> array() {
    if (!consume('[')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      auto item = value();
      if (!item) return std::nullopt;
      v.array.push_back(std::move(*item));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume(']')) return std::nullopt;
      return v;
    }
  }

  std::optional<JsonValue> object() {
    if (!consume('{')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      auto key = string_value();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto val = value();
      if (!val) return std::nullopt;
      v.object.emplace(std::move(key->string), std::move(*val));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume('}')) return std::nullopt;
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string failed_;
};

// ---- merge ----------------------------------------------------------

std::uint64_t hex_id(const JsonValue* v) {
  if (v == nullptr || v->kind != JsonValue::Kind::kString) return 0;
  return std::strtoull(v->string.c_str(), nullptr, 16);
}

struct ParsedEvent {
  const JsonValue* raw = nullptr;
  int input = 0;  // 0-based input index
  char phase = '?';
  double ts = 0.0;
  std::string name;
  std::string cat;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

void append_event_json(std::string& out, const ParsedEvent& e, int pid) {
  // Big enough for the three-id args block: 57 chars of fixed text
  // plus up to 3 x 16 hex digits.
  char buf[160];
  out += "{\"name\":" + json_quote(e.name) + ",\"cat\":" +
         json_quote(e.cat) + ",\"ph\":\"";
  out += e.phase;
  out += "\"";
  std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"pid\":%d,\"tid\":1", e.ts,
                pid);
  out += buf;
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  if (e.phase == 'C') {
    const JsonValue* args = e.raw->find("args");
    const JsonValue* v = args != nullptr ? args->find("value") : nullptr;
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.9g}",
                  v != nullptr ? v->number : 0.0);
    out += buf;
  } else if (e.span_id != 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"trace_id\":\"%llx\",\"span_id\":\"%llx\","
                  "\"parent_span_id\":\"%llx\"}",
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.span_id),
                  static_cast<unsigned long long>(e.parent_span_id));
    out += buf;
  }
  out += "}";
}

}  // namespace

std::string merge_traces(const std::vector<TraceMergeInput>& inputs,
                         std::string* error, TraceMergeStats* stats) {
  std::vector<JsonValue> docs;
  docs.reserve(inputs.size());
  std::vector<ParsedEvent> events;
  std::map<std::uint64_t, std::size_t> begin_by_span;  // span id -> event
  std::map<std::uint64_t, bool> trace_ids;

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    JsonParser parser(inputs[i].json);
    auto doc = parser.parse(error);
    if (!doc) {
      if (error != nullptr)
        *error = inputs[i].label + ": " + *error;
      return "";
    }
    docs.push_back(std::move(*doc));
  }
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const JsonValue* list = docs[i].find("traceEvents");
    if (list == nullptr || list->kind != JsonValue::Kind::kArray) {
      if (error != nullptr)
        *error = inputs[i].label + ": no traceEvents array";
      return "";
    }
    for (const JsonValue& raw : list->array) {
      const JsonValue* ph = raw.find("ph");
      if (ph == nullptr || ph->string.empty()) continue;
      if (ph->string[0] == 'M') continue;  // re-labeled below
      ParsedEvent e;
      e.raw = &raw;
      e.input = static_cast<int>(i);
      e.phase = ph->string[0];
      const JsonValue* name = raw.find("name");
      const JsonValue* cat = raw.find("cat");
      const JsonValue* ts = raw.find("ts");
      e.name = name != nullptr ? name->string : "";
      e.cat = cat != nullptr ? cat->string : "";
      e.ts = ts != nullptr ? ts->number : 0.0;
      if (const JsonValue* args = raw.find("args"); args != nullptr) {
        e.trace_id = hex_id(args->find("trace_id"));
        e.span_id = hex_id(args->find("span_id"));
        e.parent_span_id = hex_id(args->find("parent_span_id"));
      }
      if (e.phase == 'B' && e.span_id != 0)
        begin_by_span[e.span_id] = events.size();
      if (e.trace_id != 0) trace_ids[e.trace_id] = true;
      events.push_back(std::move(e));
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":1,\"args\":{\"name\":",
                  static_cast<int>(i) + 1);
    out += buf;
    out += json_quote(inputs[i].label) + "}}";
  }
  for (const ParsedEvent& e : events) {
    if (!first) out += ",";
    first = false;
    append_event_json(out, e, e.input + 1);
  }
  // Cross-process flow arrows: child span whose parent begins in a
  // different input. The flow id is the child span id (unique per
  // edge); Chrome pairs 's'/'f' on (cat, name, id).
  std::size_t arrows = 0;
  for (const ParsedEvent& e : events) {
    if (e.phase != 'B' || e.parent_span_id == 0) continue;
    const auto it = begin_by_span.find(e.parent_span_id);
    if (it == begin_by_span.end()) continue;
    const ParsedEvent& parent = events[it->second];
    if (parent.input == e.input) continue;  // same-process: nesting shows it
    ++arrows;
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"rpc\",\"cat\":\"flow\",\"ph\":\"s\","
                  "\"id\":\"%llx\",\"ts\":%.3f,\"pid\":%d,\"tid\":1}",
                  static_cast<unsigned long long>(e.span_id), parent.ts,
                  parent.input + 1);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"rpc\",\"cat\":\"flow\",\"ph\":\"f\","
                  "\"bp\":\"e\",\"id\":\"%llx\",\"ts\":%.3f,\"pid\":%d,"
                  "\"tid\":1}",
                  static_cast<unsigned long long>(e.span_id), e.ts,
                  e.input + 1);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  if (stats != nullptr) {
    stats->events = events.size();
    stats->flow_arrows = arrows;
    stats->traces = trace_ids.size();
  }
  return out;
}

}  // namespace parcae::obs
