#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parcae {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double l1_distance(std::span<const double> pred,
                   std::span<const double> truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    s += std::abs(pred[i] - truth[i]);
  return s / static_cast<double>(pred.size());
}

double normalized_l1(std::span<const double> pred,
                     std::span<const double> truth) {
  double denom = 0.0;
  for (double t : truth) denom += std::abs(t);
  if (denom == 0.0) return 0.0;
  denom /= static_cast<double>(truth.size());
  return l1_distance(pred, truth) / denom;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) {
    fit.intercept = ys.empty() ? 0.0 : ys[0];
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  (void)n;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> least_squares(const std::vector<double>& x_row_major,
                                  std::size_t rows, std::size_t cols,
                                  const std::vector<double>& y) {
  assert(x_row_major.size() == rows * cols);
  assert(y.size() == rows);
  // Form the normal equations A = X'X (cols x cols), b = X'y.
  std::vector<double> a(cols * cols, 0.0);
  std::vector<double> b(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = &x_row_major[r * cols];
    for (std::size_t i = 0; i < cols; ++i) {
      b[i] += xr[i] * y[r];
      for (std::size_t j = i; j < cols; ++j) a[i * cols + j] += xr[i] * xr[j];
    }
  }
  for (std::size_t i = 0; i < cols; ++i)
    for (std::size_t j = 0; j < i; ++j) a[i * cols + j] = a[j * cols + i];

  // Gaussian elimination with partial pivoting; small ridge for
  // numerical robustness on nearly collinear designs.
  for (std::size_t i = 0; i < cols; ++i) a[i * cols + i] += 1e-9;
  std::vector<std::size_t> piv(cols);
  for (std::size_t i = 0; i < cols; ++i) piv[i] = i;
  for (std::size_t col = 0; col < cols; ++col) {
    std::size_t best = col;
    for (std::size_t r = col + 1; r < cols; ++r)
      if (std::abs(a[r * cols + col]) > std::abs(a[best * cols + col]))
        best = r;
    if (std::abs(a[best * cols + col]) < 1e-12) return {};
    if (best != col) {
      for (std::size_t j = 0; j < cols; ++j)
        std::swap(a[best * cols + j], a[col * cols + j]);
      std::swap(b[best], b[col]);
    }
    const double pivot = a[col * cols + col];
    for (std::size_t r = col + 1; r < cols; ++r) {
      const double factor = a[r * cols + col] / pivot;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < cols; ++j)
        a[r * cols + j] -= factor * a[col * cols + j];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> beta(cols, 0.0);
  for (std::size_t i = cols; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < cols; ++j) s -= a[i * cols + j] * beta[j];
    beta[i] = s / a[i * cols + i];
  }
  return beta;
}

}  // namespace parcae
