#include "common/fault.h"

#include <charconv>
#include <cstdlib>
#include <tuple>

#include "obs/metrics.h"

namespace parcae {
namespace {

// Stable 64-bit hash of the point name (FNV-1a), mixed into the
// injector seed so each point owns an independent stream.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_int(std::string_view text, int& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
  // std::from_chars<double> is not universally available; strtod on a
  // bounded copy.
  const std::string copy(text);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

}  // namespace

InjectedFault::InjectedFault(std::string point, std::uint64_t hit)
    : std::runtime_error("injected fault at '" + point + "' (hit " +
                         std::to_string(hit) + ")"),
      point_(std::move(point)),
      hit_(hit) {}

FaultInjector::FaultInjector(std::uint64_t seed)
    : seed_(seed), pick_rng_(seed ^ 0x7061726361655f66ull) {}

void FaultInjector::arm(const std::string& point, FaultTrigger trigger) {
  Point p;
  p.trigger = trigger;
  p.rng = Rng(seed_ ^ hash_name(point));
  std::lock_guard lock(*mu_);
  points_[point] = std::move(p);
}

void FaultInjector::disarm(const std::string& point) {
  std::lock_guard lock(*mu_);
  points_.erase(point);
}

bool FaultInjector::arm_from_spec(const std::string& spec,
                                  std::string* error) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string_view part(spec.data() + begin, end - begin);
    begin = end + 1;
    if (part.empty()) continue;

    const std::size_t colon = part.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      if (error != nullptr)
        *error = "expected 'point:options' in '" + std::string(part) + "'";
      return false;
    }
    const std::string name(part.substr(0, colon));
    FaultTrigger trigger;
    std::string_view options = part.substr(colon + 1);
    bool any = false;
    while (!options.empty()) {
      std::size_t comma = options.find(',');
      if (comma == std::string_view::npos) comma = options.size();
      const std::string_view option = options.substr(0, comma);
      options.remove_prefix(
          comma == options.size() ? comma : comma + 1);
      if (option.empty()) continue;
      const std::size_t eq = option.find('=');
      const std::string_view key = option.substr(0, eq);
      const std::string_view value =
          eq == std::string_view::npos ? std::string_view()
                                       : option.substr(eq + 1);
      bool ok = true;
      if (key == "once" && eq == std::string_view::npos) {
        trigger.one_shot = true;
      } else if (key == "prob") {
        ok = parse_double(value, trigger.probability) &&
             trigger.probability >= 0.0 && trigger.probability <= 1.0;
      } else if (key == "nth") {
        ok = parse_u64(value, trigger.nth) && trigger.nth > 0;
      } else if (key == "max") {
        ok = parse_u64(value, trigger.max_fires) && trigger.max_fires > 0;
      } else if (key == "window") {
        const std::size_t dash = value.find('-');
        ok = dash != std::string_view::npos &&
             parse_int(value.substr(0, dash), trigger.window_begin) &&
             parse_int(value.substr(dash + 1), trigger.window_end) &&
             trigger.window_end >= trigger.window_begin;
      } else {
        ok = false;
      }
      if (!ok) {
        if (error != nullptr)
          *error = "bad option '" + std::string(option) + "' for point '" +
                   name + "'";
        return false;
      }
      any = true;
    }
    if (!any) {
      if (error != nullptr)
        *error = "point '" + name + "' has no trigger options";
      return false;
    }
    arm(name, trigger);
  }
  return true;
}

std::pair<bool, std::uint64_t> FaultInjector::evaluate_locked(
    std::string_view point) {
  const auto it = points_.find(point);
  if (it == points_.end()) return {false, 0};
  Point& p = it->second;
  if (p.disarmed) return {false, p.hits};
  ++p.hits;
  const FaultTrigger& t = p.trigger;
  if (interval_ < t.window_begin ||
      (t.window_end >= 0 && interval_ > t.window_end))
    return {false, p.hits};
  if (t.max_fires > 0 && p.fires >= t.max_fires) return {false, p.hits};

  bool fire = false;
  if (t.nth > 0 && p.hits == t.nth) fire = true;
  // The probability draw happens whenever armed (even when nth already
  // decided), keeping each point's stream a pure function of its hit
  // count.
  if (t.probability > 0.0 && p.rng.uniform() < t.probability) fire = true;
  if (!fire) return {false, p.hits};

  ++p.fires;
  ++total_fired_;
  if (t.one_shot) p.disarmed = true;
  if (metrics_ != nullptr) {
    // MetricsRegistry has its own lock and never calls back in, so
    // counting under mu_ cannot deadlock.
    metrics_->counter("fault.injected").inc();
    metrics_->counter("fault.injected." + std::string(point)).inc();
  }
  return {true, p.hits};
}

bool FaultInjector::should_fire(std::string_view point) {
  std::lock_guard lock(*mu_);
  return evaluate_locked(point).first;
}

void FaultInjector::maybe_throw(std::string_view point) {
  bool fired = false;
  std::uint64_t hit = 0;
  {
    std::lock_guard lock(*mu_);
    std::tie(fired, hit) = evaluate_locked(point);
  }
  if (fired) throw InjectedFault(std::string(point), hit);
}

std::uint64_t FaultInjector::pick(std::uint64_t n) {
  std::lock_guard lock(*mu_);
  return n == 0 ? 0 : pick_rng_.uniform_int(n);
}

bool FaultInjector::armed() const {
  std::lock_guard lock(*mu_);
  return !points_.empty();
}

std::uint64_t FaultInjector::total_fired() const {
  std::lock_guard lock(*mu_);
  return total_fired_;
}

std::uint64_t FaultInjector::hits(std::string_view point) const {
  std::lock_guard lock(*mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fired(std::string_view point) const {
  std::lock_guard lock(*mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::string FaultInjector::describe() const {
  std::lock_guard lock(*mu_);
  std::string out;
  for (const auto& [name, point] : points_) {
    if (!out.empty()) out += ", ";
    out += name;
    if (point.disarmed) out += " (spent)";
  }
  return out;
}

}  // namespace parcae
