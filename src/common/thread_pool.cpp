#include "common/thread_pool.h"

#include <cstdlib>
#include <string>

namespace parcae {

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::env_threads(int fallback) {
  const char* env = std::getenv("PARCAE_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return fallback;
  return static_cast<int>(v);
}

int ThreadPool::resolve(int requested) {
  if (requested > 0) return requested;
  return env_threads(hardware_threads());
}

ThreadPool::ThreadPool(int threads) : threads_(resolve(threads)) {
  if (threads_ < 1) threads_ = 1;
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();  // threads == 1: the caller is the pool
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial path: run inline, rethrow the first exception in index
    // order naturally.
    for (std::size_t i = 0; i < n; ++i) body(i);
    tasks_run_.fetch_add(n, std::memory_order_relaxed);
    return;
  }

  struct ForState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    // Slot i is written only by the thread that ran body(i); read
    // after the completion barrier.
    std::vector<std::exception_ptr> errors;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = &body;
  state->errors.assign(n, nullptr);

  auto drain = [state, this] {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      try {
        (*state->body)(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min(workers_.size(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i) enqueue(drain);
  drain();  // the caller participates

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  lock.unlock();

  for (std::size_t i = 0; i < n; ++i)
    if (state->errors[i]) std::rethrow_exception(state->errors[i]);
}

}  // namespace parcae
