#include "common/retry.h"

#include <cmath>

#include "obs/metrics.h"

namespace parcae {

double RetryOptions::backoff_for_attempt(int attempt) const {
  if (attempt <= 1) return 0.0;
  const double raw =
      initial_backoff_s * std::pow(backoff_multiplier, attempt - 2);
  return std::min(raw, max_backoff_s);
}

namespace detail {

bool retry_admits_another(const RetryOptions& options, int attempt,
                          double& backoff_accum) {
  if (attempt >= options.max_attempts) return false;
  const double delay = options.backoff_for_attempt(attempt + 1);
  if (backoff_accum + delay > options.budget_s) return false;
  backoff_accum += delay;
  return true;
}

void count_attempt(obs::MetricsRegistry* metrics, std::string_view name,
                   int attempt) {
  if (metrics == nullptr) return;
  metrics->counter("retry.attempts").inc();
  if (attempt > 1) {
    metrics->counter("retry.retries").inc();
    metrics->counter("retry." + std::string(name) + ".retries").inc();
  }
}

void count_exhausted(obs::MetricsRegistry* metrics, std::string_view name) {
  if (metrics == nullptr) return;
  metrics->counter("retry.exhausted").inc();
  metrics->counter("retry." + std::string(name) + ".exhausted").inc();
}

}  // namespace detail
}  // namespace parcae
