// Fixed-size worker pool for the decision path's embarrassingly
// parallel loops (liveput DP candidates, experiment-matrix cells).
//
// Design constraints, in order:
//   1. Determinism. parallel_for(n, body) indexes every task; bodies
//      write results by index, so the output layout is identical at
//      any thread count. When several bodies throw, the exception
//      with the lowest index is the one rethrown.
//   2. No surprises at threads == 1. A pool of size 1 spawns no
//      worker threads at all: submit() and parallel_for() run inline
//      on the caller, byte-for-byte the serial code path.
//   3. Caller participation. parallel_for's calling thread drains the
//      same index counter as the workers, so a pool of size T applies
//      T CPUs (T-1 workers + the caller), and nested/reentrant use
//      cannot deadlock (the caller always makes progress itself).
//
// Thread-count resolution follows one convention everywhere:
// `resolve(requested)` returns `requested` when > 0, else the
// PARCAE_THREADS environment variable when set to a positive integer,
// else std::thread::hardware_concurrency(). Decision paths *inside* a
// policy default to 1 (bit-identical legacy behavior unless opted
// in); the experiment matrix defaults to resolve(0).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace parcae {

class ThreadPool {
 public:
  // `threads` <= 0 resolves via resolve(threads).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Tasks executed so far (parallel_for bodies + submitted tasks);
  // callers mirror this into the "threadpool.tasks" metric.
  std::uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  // Run `fn` on a worker (inline when the pool has no workers) and
  // expose its result — or its exception — through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task, this] {
      (*task)();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
    });
    return future;
  }

  // Invoke body(0) .. body(n-1), returning after all complete. Bodies
  // run concurrently in unspecified order; anything they write must be
  // disjoint per index. If bodies throw, the lowest-index exception is
  // rethrown (deterministically) after the loop finishes.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  static int hardware_threads();
  // PARCAE_THREADS when set to a positive integer, else `fallback`.
  static int env_threads(int fallback);
  // requested > 0 -> requested; else env_threads(hardware_threads()).
  static int resolve(int requested);

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();

  int threads_ = 1;
  std::vector<std::thread> workers_;  // threads_ - 1 of them
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<std::uint64_t> tasks_run_{0};
};

}  // namespace parcae
