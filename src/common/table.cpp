#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace parcae {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  const double av = std::abs(v);
  if (av >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (av >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (av >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  return format_double(scaled, precision) + suffix;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

TextTable& TextTable::add(const char* cell) { return add(std::string(cell)); }

TextTable& TextTable::add(double value, int precision) {
  return add(format_double(value, precision));
}

TextTable& TextTable::add(long long value) {
  return add(std::to_string(value));
}

TextTable& TextTable::add(int value) { return add(std::to_string(value)); }

TextTable& TextTable::add(std::size_t value) {
  return add(std::to_string(value));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << c << std::string(width[i] - c.size(), ' ');
      if (i + 1 < width.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w;
  total += 2 * (width.empty() ? 0 : width.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace parcae
