// Deterministic fault injection for the real runtime (§8 exception
// handling).
//
// The happy path alone cannot defend Parcae's semantics claims —
// exactly-once samples and replica consistency matter precisely when
// preemptions are *unpredicted*, land mid-migration, or a ParcaePS
// push fails. A FaultInjector holds named fault points ("ps.push",
// "cluster.kill_mid_iteration", ...) armed with per-point triggers:
// fire with probability p, on exactly the nth evaluation, at most k
// times, only inside an interval window, or once ever. Evaluation is
// deterministic: each point draws from its own Rng forked from the
// injector seed and the point name, so arming one point never
// perturbs another and a seeded chaos schedule replays bit-for-bit.
//
// Consumers hold a nullable FaultInjector*; with no injector (or no
// armed points) every check is a null/absent-key test and zero RNG
// draws, so fault-free runs stay bit-identical to builds that never
// heard of this header. Specs come from code (arm()), from CLI keys,
// or from the PARCAE_FAULTS environment variable:
//
//   PARCAE_FAULTS="ps.push:prob=0.1;cluster.kill_mid_iteration:nth=3,once"
//
// Every firing increments fault.injected and fault.injected.<point>
// in the attached MetricsRegistry, so an injected run is auditable.
//
// Locking rules: a single mutex guards the point table, every
// evaluation, and every counter read — the TCP transport evaluates
// rpc.* points from its server thread while the driver thread
// evaluates kv.*/ps.* points on the same injector. Determinism is
// unaffected: each point's stream is a pure function of its own hit
// count, and the runtime's RPCs are synchronous ping-pong, so the
// per-point hit order is identical with or without contention.
// set_interval/set_metrics are configuration, called before threads
// start.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "common/rng.h"

namespace parcae {

namespace obs {
class MetricsRegistry;
}  // namespace obs

// Thrown by maybe_throw() at an armed fault point.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::string point, std::uint64_t hit);
  const std::string& point() const { return point_; }
  // 1-based evaluation count at which the fault fired.
  std::uint64_t hit() const { return hit_; }

 private:
  std::string point_;
  std::uint64_t hit_;
};

// When a point fires. Conditions combine conjunctively: the window
// must admit the current interval AND (nth matches OR the probability
// draw succeeds), subject to the one-shot / max-fires budget.
struct FaultTrigger {
  double probability = 0.0;   // fires when the point's rng draws < p
  std::uint64_t nth = 0;      // fires on exactly the nth evaluation; 0 = off
  bool one_shot = false;      // disarm after the first firing
  std::uint64_t max_fires = 0;  // total firing budget; 0 = unlimited
  int window_begin = 0;       // first interval (inclusive) the point is live
  int window_end = -1;        // last interval (inclusive); -1 = unbounded
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0);

  // Arms (or re-arms) a fault point. Resets its hit/fire counts.
  void arm(const std::string& point, FaultTrigger trigger);
  void disarm(const std::string& point);

  // Parses and arms a spec string:
  //   spec    := point-spec (';' point-spec)*
  //   point   := name ':' option (',' option)*
  //   option  := 'prob=' float | 'nth=' int | 'max=' int
  //            | 'window=' int '-' int | 'once'
  // Returns false (arming nothing further) on a malformed spec and
  // describes the problem in *error.
  bool arm_from_spec(const std::string& spec, std::string* error = nullptr);

  // The interval-window clock; executor backends set it each interval.
  void set_interval(int interval) { interval_ = interval; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  // Evaluates the point; true when the fault fires now. Unarmed
  // points never fire and consume no randomness.
  bool should_fire(std::string_view point);
  // should_fire(), throwing InjectedFault on a firing.
  void maybe_throw(std::string_view point);

  // Deterministic victim-selection stream (uniform on [0, n)), kept
  // separate from the trigger streams so consumers can pick kill
  // targets without perturbing firing schedules.
  std::uint64_t pick(std::uint64_t n);

  bool armed() const;
  // Evaluations / firings of one point so far (0 when never armed).
  std::uint64_t hits(std::string_view point) const;
  std::uint64_t fired(std::string_view point) const;
  std::uint64_t total_fired() const;

  // Human-readable list of armed points ("a, b, c"), for banners.
  std::string describe() const;

 private:
  struct Point {
    FaultTrigger trigger;
    Rng rng;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    bool disarmed = false;
  };

  // Evaluates under mu_; returns {fired, hit count at evaluation}.
  std::pair<bool, std::uint64_t> evaluate_locked(std::string_view point);

  // Behind a pointer so the injector stays movable (a moved-from
  // injector is dead; only construction-time moves happen in practice).
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::uint64_t seed_;
  Rng pick_rng_;
  int interval_ = 0;
  std::uint64_t total_fired_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, Point, std::less<>> points_;
};

}  // namespace parcae
