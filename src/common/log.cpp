#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace parcae {
namespace {

LogLevel env_or_default_level() {
  LogLevel level = LogLevel::kWarn;
  const char* env = std::getenv("PARCAE_LOG_LEVEL");
  if (env != nullptr && !parse_log_level(env, level)) {
    std::fprintf(stderr,
                 "[WARN] PARCAE_LOG_LEVEL=%s not recognized "
                 "(debug|info|warn|error|off); keeping warn\n",
                 env);
  }
  return level;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> g_level{env_or_default_level()};
  return g_level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }

LogLevel log_level() { return level_ref().load(); }

bool parse_log_level(std::string_view name, LogLevel& out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") {
    out = LogLevel::kDebug;
  } else if (lower == "info") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    out = LogLevel::kWarn;
  } else if (lower == "error") {
    out = LogLevel::kError;
  } else if (lower == "off" || lower == "none" || lower == "silent") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace parcae
