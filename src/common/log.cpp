#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/json_util.h"
#include "obs/trace_context.h"

namespace parcae {
namespace {

// JSONL mirror state, all behind one mutex: the sink stream, whether
// we own (and must fclose) it, and the line sequence counter.
struct JsonlSink {
  std::mutex mu;
  std::FILE* stream = nullptr;
  bool owned = false;
  bool env_checked = false;
  std::uint64_t lines = 0;

  // Replaces the stream, closing a previously owned one.
  void replace(std::FILE* next, bool own) {
    if (owned && stream != nullptr) std::fclose(stream);
    stream = next;
    owned = own;
  }

  // First-use PARCAE_LOG_JSONL resolution (mu held).
  void check_env() {
    if (env_checked) return;
    env_checked = true;
    const char* path = std::getenv("PARCAE_LOG_JSONL");
    if (path == nullptr || *path == '\0') return;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[WARN] PARCAE_LOG_JSONL=%s: cannot open\n",
                   path);
      return;
    }
    replace(f, /*own=*/true);
  }
};

JsonlSink& jsonl_sink() {
  static JsonlSink g_sink;
  return g_sink;
}

LogLevel env_or_default_level() {
  LogLevel level = LogLevel::kWarn;
  const char* env = std::getenv("PARCAE_LOG_LEVEL");
  if (env != nullptr && !parse_log_level(env, level)) {
    std::fprintf(stderr,
                 "[WARN] PARCAE_LOG_LEVEL=%s not recognized "
                 "(debug|info|warn|error|off); keeping warn\n",
                 env);
  }
  return level;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> g_level{env_or_default_level()};
  return g_level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }

LogLevel log_level() { return level_ref().load(); }

bool parse_log_level(std::string_view name, LogLevel& out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") {
    out = LogLevel::kDebug;
  } else if (lower == "info") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    out = LogLevel::kWarn;
  } else if (lower == "error") {
    out = LogLevel::kError;
  } else if (lower == "off" || lower == "none" || lower == "silent") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void set_log_jsonl(std::FILE* sink) {
  JsonlSink& s = jsonl_sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.env_checked = true;  // an explicit setter overrides the env var
  s.replace(sink, /*own=*/false);
}

bool set_log_jsonl_path(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  JsonlSink& s = jsonl_sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.env_checked = true;
  s.replace(f, /*own=*/true);
  return true;
}

std::uint64_t log_jsonl_lines() {
  JsonlSink& s = jsonl_sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.lines;
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  JsonlSink& s = jsonl_sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.check_env();
  if (s.stream == nullptr) return;
  // Trace identity comes from the caller's thread, not the sink: the
  // line is stamped with whatever span was open where the PARCAE_*
  // macro ran.
  const obs::TraceContext& ctx = obs::current_trace_context();
  const std::string quoted = obs::json_quote(msg);
  std::fprintf(s.stream, "{\"seq\":%llu,\"level\":\"%s\",\"message\":%s",
               static_cast<unsigned long long>(s.lines),
               level_name(level), quoted.c_str());
  if (ctx.valid())
    std::fprintf(s.stream,
                 ",\"trace_id\":\"%llx\",\"span_id\":\"%llx\"",
                 static_cast<unsigned long long>(ctx.trace_id),
                 static_cast<unsigned long long>(ctx.span_id));
  std::fputs("}\n", s.stream);
  std::fflush(s.stream);
  ++s.lines;
}

}  // namespace parcae
