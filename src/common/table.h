// Aligned text-table and CSV writers used by the benchmark harnesses to
// print the paper's tables and figure series in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace parcae {

// Collects rows of string cells and renders them with aligned columns.
// Numeric convenience overloads format with a fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Begin a new row; subsequent add() calls append cells to it.
  TextTable& row();
  TextTable& add(const std::string& cell);
  TextTable& add(const char* cell);
  TextTable& add(double value, int precision = 2);
  TextTable& add(long long value);
  TextTable& add(int value);
  TextTable& add(std::size_t value);

  // Render with two-space column gaps and a separator under the header.
  std::string to_string() const;
  void print(std::ostream& os) const;

  // Render the same content as CSV (no alignment, comma-separated,
  // cells containing commas/quotes are quoted).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format helpers shared by benches.
std::string format_double(double v, int precision);
std::string format_si(double v, int precision = 2);  // 1.2k, 3.4M, ...

}  // namespace parcae
