// Minimal leveled logger. The cluster simulator logs migrations,
// preemptions, and configuration changes through this so examples can
// show a narrated run while benches keep quiet.
//
// Besides the human stderr lines, the logger can mirror every emitted
// line into a structured JSONL sink (set_log_jsonl_path(), or the
// PARCAE_LOG_JSONL environment variable naming a file). Each line is
// one JSON object carrying a monotonic sequence number — not a wall
// clock, so seeded runs produce byte-identical logs — and, when the
// calling thread has an active obs::TraceContext, the trace/span ids
// of the enclosing span (hex, the trace-file convention), tying log
// lines to the distributed trace that caused them:
//
//   {"seq":7,"level":"WARN","message":"...","trace_id":"9c41...","span_id":"5a"}
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace parcae {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global log level; defaults to kWarn so tests and benches stay
// quiet. The PARCAE_LOG_LEVEL environment variable (debug / info /
// warn / error / off, case-insensitive) overrides the default at
// first use; set_log_level() overrides both.
void set_log_level(LogLevel level);
LogLevel log_level();

// Parses a level name into `out`; returns false (leaving `out`
// untouched) when the name is not recognized.
bool parse_log_level(std::string_view name, LogLevel& out);

void log_message(LogLevel level, const std::string& msg);

// JSONL mirror sink. set_log_jsonl() hands over a non-owning stream
// (nullptr disables); set_log_jsonl_path() opens `path` for writing
// (truncating) and owns the handle until replaced or disabled —
// returns false and leaves the sink unchanged when the open fails.
// The PARCAE_LOG_JSONL environment variable names a path opened the
// same way at the logger's first use; explicit setters override it.
void set_log_jsonl(std::FILE* sink);
bool set_log_jsonl_path(const std::string& path);
// Lines mirrored so far (the next line's "seq"); resets never.
std::uint64_t log_jsonl_lines();

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define PARCAE_LOG(level)                                 \
  if (static_cast<int>(level) < static_cast<int>(::parcae::log_level())) \
    ;                                                     \
  else                                                    \
    ::parcae::detail::LogLine(level)

#define PARCAE_DEBUG PARCAE_LOG(::parcae::LogLevel::kDebug)
#define PARCAE_INFO PARCAE_LOG(::parcae::LogLevel::kInfo)
#define PARCAE_WARN PARCAE_LOG(::parcae::LogLevel::kWarn)
#define PARCAE_ERROR PARCAE_LOG(::parcae::LogLevel::kError)

}  // namespace parcae
