// Minimal leveled logger. The cluster simulator logs migrations,
// preemptions, and configuration changes through this so examples can
// show a narrated run while benches keep quiet.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace parcae {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global log level; defaults to kWarn so tests and benches stay
// quiet. The PARCAE_LOG_LEVEL environment variable (debug / info /
// warn / error / off, case-insensitive) overrides the default at
// first use; set_log_level() overrides both.
void set_log_level(LogLevel level);
LogLevel log_level();

// Parses a level name into `out`; returns false (leaving `out`
// untouched) when the name is not recognized.
bool parse_log_level(std::string_view name, LogLevel& out);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define PARCAE_LOG(level)                                 \
  if (static_cast<int>(level) < static_cast<int>(::parcae::log_level())) \
    ;                                                     \
  else                                                    \
    ::parcae::detail::LogLine(level)

#define PARCAE_DEBUG PARCAE_LOG(::parcae::LogLevel::kDebug)
#define PARCAE_INFO PARCAE_LOG(::parcae::LogLevel::kInfo)
#define PARCAE_WARN PARCAE_LOG(::parcae::LogLevel::kWarn)
#define PARCAE_ERROR PARCAE_LOG(::parcae::LogLevel::kError)

}  // namespace parcae
