// Deterministic pseudo-random number generation for Parcae.
//
// All stochastic components of the system (Monte-Carlo preemption
// sampling, trace synthesis, the NN training library) draw from Rng so
// that every experiment is reproducible bit-for-bit from a seed.
// The generator is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace parcae {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform on [0, 2^64).
  std::uint64_t next_u64();

  // Uniform on [0, 1).
  double uniform();

  // Uniform on [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer on [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Uniform integer on [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);

  // Bernoulli trial with success probability p.
  bool bernoulli(double p);

  // Poisson-distributed count (Knuth for small lambda, normal
  // approximation above 64).
  std::uint64_t poisson(double lambda);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(xs[i - 1], xs[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& xs) {
    shuffle(std::span<T>(xs));
  }

  // k distinct indices drawn uniformly from [0, n), in random order.
  // Precondition: k <= n. Uses partial Fisher-Yates, O(n) space.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Allocation-free overload for hot loops: `pool` is refilled with
  // [0, n) and `out` with the k victims, reusing their capacity.
  // Consumes exactly the same generator draws as the allocating
  // overload, so sequences are bit-identical for a given seed.
  void sample_without_replacement(std::size_t n, std::size_t k,
                                  std::vector<std::size_t>& pool,
                                  std::vector<std::size_t>& out);

  // Derive an independent child generator (for parallel components
  // that must not share a stream).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace parcae
