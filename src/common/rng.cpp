#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace parcae {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double x = normal(lambda, std::sqrt(lambda));
    return x < 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
  }
  const double limit = std::exp(-lambda);
  double prod = uniform();
  std::uint64_t k = 0;
  while (prod > limit) {
    prod *= uniform();
    ++k;
  }
  return k;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> pool;
  std::vector<std::size_t> out;
  sample_without_replacement(n, k, pool, out);
  return out;
}

void Rng::sample_without_replacement(std::size_t n, std::size_t k,
                                     std::vector<std::size_t>& pool,
                                     std::vector<std::size_t>& out) {
  assert(k <= n);
  pool.resize(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  out.clear();
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace parcae
