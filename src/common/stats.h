// Small statistics helpers shared across Parcae modules: running
// moments (Welford), percentiles, and the trace-forecast error metrics
// used by the availability-predictor evaluation (Figure 5a).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace parcae {

// Numerically stable running mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear-interpolated percentile, q in [0,1]. Copies and sorts.
double percentile(std::span<const double> xs, double q);

double mean(std::span<const double> xs);

// Mean absolute error between prediction and truth (same length).
double l1_distance(std::span<const double> pred, std::span<const double> truth);

// The paper's Figure-5a metric: L1 distance normalized by the mean
// magnitude of the ground truth, so traces of different availability
// levels are comparable. Returns 0 when truth is identically zero.
double normalized_l1(std::span<const double> pred,
                     std::span<const double> truth);

// Simple ordinary least squares fit y ~ a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

// Solve the normal equations (X'X) beta = X'y for dense column-major
// design matrices via Gaussian elimination with partial pivoting.
// X has `rows` rows and `cols` columns laid out row-major.
// Returns empty vector if the system is singular.
std::vector<double> least_squares(const std::vector<double>& x_row_major,
                                  std::size_t rows, std::size_t cols,
                                  const std::vector<double>& y);

}  // namespace parcae
