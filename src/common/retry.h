// Deterministic retry with exponential backoff, for the runtime's
// recoverable operations (ParcaePS gradient pushes, KvStore writes).
//
// The backoff schedule is a pure function of the options — no jitter,
// no wall clock — so a seeded fault schedule recovers identically on
// every run. Delays are *virtual*: the runtime here is in-process and
// interval-quantized, so with_retry accumulates the backoff it would
// have slept (callers charge it to their stall ledgers if they care)
// instead of blocking the test suite. Two budgets bound an attempt
// storm: max_attempts and a total backoff budget in (virtual)
// seconds; when both are spent the last exception is rethrown
// unchanged, so callers see the real failure, not a wrapper.
//
// Every retry and exhaustion is counted into the attached registry:
//   retry.attempts / retry.retries / retry.exhausted
//   retry.<name>.retries / retry.<name>.exhausted
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>

namespace parcae {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct RetryOptions {
  int max_attempts = 4;            // total tries, including the first
  double initial_backoff_s = 0.05;  // delay before the 2nd attempt
  double backoff_multiplier = 2.0;
  double max_backoff_s = 2.0;      // per-delay cap
  double budget_s = 10.0;          // total virtual backoff budget

  // Virtual delay before attempt `attempt` (1-based; the first
  // attempt is free). Deterministic:
  //   min(initial * multiplier^(attempt-2), max_backoff_s)
  double backoff_for_attempt(int attempt) const;
};

// What a with_retry call did (mostly a test/telemetry hook).
struct RetryStats {
  int attempts = 0;
  double backoff_s = 0.0;  // total virtual delay accumulated
};

namespace detail {
// Non-template bookkeeping shared by every with_retry instantiation.
// Returns true while another attempt is allowed after a failure on
// attempt `attempt` (1-based), accumulating the virtual backoff.
bool retry_admits_another(const RetryOptions& options, int attempt,
                          double& backoff_accum);
void count_attempt(obs::MetricsRegistry* metrics, std::string_view name,
                   int attempt);
void count_exhausted(obs::MetricsRegistry* metrics, std::string_view name);
}  // namespace detail

// Invokes `fn` until it returns without throwing, retrying failures on
// the deterministic backoff schedule. When the attempt or backoff
// budget is exhausted the last exception propagates to the caller.
template <typename F>
auto with_retry(const RetryOptions& options, std::string_view name,
                obs::MetricsRegistry* metrics, F&& fn,
                RetryStats* stats = nullptr) -> decltype(fn()) {
  double backoff_accum = 0.0;
  for (int attempt = 1;; ++attempt) {
    detail::count_attempt(metrics, name, attempt);
    if (stats != nullptr) stats->attempts = attempt;
    try {
      return fn();
    } catch (...) {
      if (!detail::retry_admits_another(options, attempt, backoff_accum)) {
        detail::count_exhausted(metrics, name);
        if (stats != nullptr) stats->backoff_s = backoff_accum;
        throw;  // rethrow the last error unchanged
      }
      if (stats != nullptr) stats->backoff_s = backoff_accum;
    }
  }
}

}  // namespace parcae
