// α–β communication cost model (Valiant's bridging model, as used by
// Parcae's cost estimator §9.4) and collective-operation timings.
//
// All costs are analytical: time(bytes) = α + β·bytes per hop, with
// collective algorithms expressed in terms of hop counts and volume.
// The cluster has two link classes: intra-node (NVLink, only relevant
// for the multi-GPU-instance study, Fig 10) and inter-node (cloud VPC
// networking between p3.2xlarge instances).
#pragma once

#include <cstddef>

namespace parcae {

struct LinkModel {
  double alpha_s = 0.0;           // per-message latency (seconds)
  double beta_s_per_byte = 0.0;   // inverse bandwidth (seconds/byte)

  double time(double bytes) const { return alpha_s + beta_s_per_byte * bytes; }
};

struct NetworkModel {
  // Defaults model AWS p3.2xlarge: "up to 10 Gbps" network, ~1.25 GB/s
  // sustained, ~0.2 ms effective message latency; NVLink ~150 GB/s.
  LinkModel inter_node{200e-6, 1.0 / 1.25e9};
  LinkModel intra_node{10e-6, 1.0 / 150e9};

  // Point-to-point transfer of `bytes` over one link.
  double p2p_time(double bytes, bool same_node = false) const;

  // Ring all-reduce over `world` participants: 2(w-1) hops, each
  // moving bytes/w. Equals 0 for world <= 1.
  double ring_allreduce_time(double bytes, int world,
                             bool same_node = false) const;

  // Binomial-tree broadcast: ceil(log2 w) sequential hops of the full
  // payload. Equals 0 for world <= 1.
  double broadcast_time(double bytes, int world, bool same_node = false) const;

  // All-gather via ring: (w-1) hops of bytes/w each.
  double allgather_time(double bytes, int world, bool same_node = false) const;

  // Scatter of equal shards from one root: (w-1) sends of bytes/w.
  double scatter_time(double bytes, int world, bool same_node = false) const;

  // All-to-all exchange used by pipeline migration: every instance
  // re-shards its model states; each sends/receives ~bytes of state.
  // Modeled as (w-1) rounds of pairwise exchange of bytes/(w-1),
  // serialized on each instance's NIC.
  double all_to_all_time(double bytes_per_rank, int world,
                         bool same_node = false) const;

  // Effective slowdown when `flows` transfers share one link
  // (bandwidth is divided, latency unchanged). flows <= 1 -> 1.0.
  static double contention_factor(int flows);
};

}  // namespace parcae
