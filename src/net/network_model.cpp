#include "net/network_model.h"

#include <algorithm>
#include <cmath>

namespace parcae {
namespace {
int ceil_log2(int n) {
  int bits = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}
}  // namespace

double NetworkModel::p2p_time(double bytes, bool same_node) const {
  const LinkModel& link = same_node ? intra_node : inter_node;
  return link.time(bytes);
}

double NetworkModel::ring_allreduce_time(double bytes, int world,
                                         bool same_node) const {
  if (world <= 1 || bytes <= 0.0) return 0.0;
  const LinkModel& link = same_node ? intra_node : inter_node;
  const double hops = 2.0 * (world - 1);
  return hops * link.time(bytes / world);
}

double NetworkModel::broadcast_time(double bytes, int world,
                                    bool same_node) const {
  if (world <= 1 || bytes <= 0.0) return 0.0;
  const LinkModel& link = same_node ? intra_node : inter_node;
  return static_cast<double>(ceil_log2(world)) * link.time(bytes);
}

double NetworkModel::allgather_time(double bytes, int world,
                                    bool same_node) const {
  if (world <= 1 || bytes <= 0.0) return 0.0;
  const LinkModel& link = same_node ? intra_node : inter_node;
  return static_cast<double>(world - 1) * link.time(bytes / world);
}

double NetworkModel::scatter_time(double bytes, int world,
                                  bool same_node) const {
  if (world <= 1 || bytes <= 0.0) return 0.0;
  const LinkModel& link = same_node ? intra_node : inter_node;
  return static_cast<double>(world - 1) * link.time(bytes / world);
}

double NetworkModel::all_to_all_time(double bytes_per_rank, int world,
                                     bool same_node) const {
  if (world <= 1 || bytes_per_rank <= 0.0) return 0.0;
  const LinkModel& link = same_node ? intra_node : inter_node;
  return static_cast<double>(world - 1) *
         link.time(bytes_per_rank / std::max(1, world - 1));
}

double NetworkModel::contention_factor(int flows) {
  return flows <= 1 ? 1.0 : static_cast<double>(flows);
}

}  // namespace parcae
