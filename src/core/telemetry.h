// Structured telemetry for the runtime.
//
// Production spot-training needs an audit trail: which preemptions
// arrived, what the optimizer decided and why, which migrations ran
// and what they cost. EventLog is a bounded, queryable, structured log
// the policies append to; benches and operators render it. (The real
// system logs the same information through its scheduler; here it is
// also the hook tests use to assert *why* a decision happened, not
// just its effect.)
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace parcae {

enum class EventCategory {
  kCloud,       // preemption notices, grants
  kPrediction,  // forecasts issued
  kDecision,    // optimizer/adaptation choices
  kMigration,   // executed migrations
  kCheckpoint,  // PS pushes / restores
  kWarning,     // anomalies (mispredictions, infeasible targets)
  kAlert,       // SLO rule breaches (src/core/slo.h)
};

const char* event_category_name(EventCategory category);

struct TelemetryEvent {
  double time_s = 0.0;
  EventCategory category = EventCategory::kDecision;
  std::string message;
  // Small structured payload (stringly typed, bounded).
  std::map<std::string, std::string> fields;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(double time_s, EventCategory category, std::string message,
              std::map<std::string, std::string> fields = {});

  std::size_t size() const { return events_.size(); }
  std::size_t dropped() const { return dropped_; }

  // All events (oldest first).
  const std::deque<TelemetryEvent>& events() const { return events_; }

  // Events of one category, oldest first.
  std::vector<const TelemetryEvent*> by_category(
      EventCategory category) const;

  // Count per category.
  std::map<EventCategory, std::size_t> histogram() const;

  // Human-readable rendering ("[ 120s] migration  pipeline -> 4x7 ...").
  std::string render(std::size_t last_n = 0) const;

  // One JSON object per line, oldest first:
  //   {"t":120,"category":"migration","message":"...","fields":{...}}
  // Strings are escaped per RFC 8259 (quotes, backslashes, control
  // characters), so messages with newlines or quotes stay one line.
  std::string to_jsonl() const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<TelemetryEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace parcae
