// Liveput optimizer (§7): dynamic program over look-ahead intervals.
//
// Given the predicted availability sequence N_1..N_I, finds the
// sequence of parallel configurations maximizing the expected number
// of committed training samples (Equations 3-6):
//
//   F(i+1, c') = max_{c : c.instances() <= N_i}
//                  { F(i, c) + phi(c, N_i -> c', N_{i+1}) }
//   phi = THROUGHPUT(c') * E_v[ T - T_mig(c -> c' | v) ]
//
// The expectation over preemption mappings v comes from the cached
// Monte-Carlo summaries (PreemptionSampler); migration strategy and
// cost follow §7.2 (depth change -> pipeline migration; otherwise the
// cheaper of intra-/inter-stage, with the wipe-out probability charged
// as a ParcaePS rollback).
//
// Performance layer (the paper's < 0.3 s/optimization budget,
// Figure 18b):
//   - every evaluated DP edge (from, idle, to, k) is memoized, so
//     repeated interval pairs — ubiquitous under flat forecasts and
//     across the scheduler's once-a-minute re-optimizations — cost a
//     hash lookup instead of re-running the mixture arithmetic;
//   - with options.threads > 1 the candidate loop over c' runs on a
//     ThreadPool. Each candidate's inner scan over predecessors stays
//     serial, so max/tie-breaking — and therefore every plan — is
//     bit-identical at any thread count. The MC sampler cache is
//     pre-warmed serially in the exact order the serial DP would
//     first touch each key, keeping RNG consumption (and thus all
//     summaries) unchanged, then frozen for lock-free parallel reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "migration/cost_model.h"
#include "migration/preemption.h"
#include "parallel/throughput_model.h"

namespace parcae {

class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct LiveputOptimizerOptions {
  double interval_s = 60.0;  // T: prediction/optimization interval
  int mc_trials = 256;       // Monte-Carlo trials per (D,P,idle,k)
  std::uint64_t seed = 7;
  // Optional metrics sink (non-owning): DP run counters here, MC
  // sampling latency in the PreemptionSampler.
  obs::MetricsRegistry* metrics = nullptr;
  // Worker threads for the DP candidate loop. 1 (the default) is the
  // serial legacy path; 0 resolves to PARCAE_THREADS / hardware
  // concurrency (ThreadPool::resolve). Results are bit-identical at
  // any thread count.
  int threads = 1;
  // Prepended to every metric name (fleet jobs sharing a registry);
  // "" keeps the historical names. Applied once at construction.
  std::string metric_prefix;
};

struct LiveputPlan {
  // Configurations chosen for each predicted interval (size = I).
  std::vector<ParallelConfig> configs;
  // Expected committed samples over the look-ahead window.
  double expected_samples = 0.0;

  ParallelConfig next() const {
    return configs.empty() ? kIdleConfig : configs.front();
  }
};

class LiveputOptimizer {
 public:
  LiveputOptimizer(const ThroughputModel* throughput,
                   CostEstimator estimator,
                   LiveputOptimizerOptions options = {});
  ~LiveputOptimizer();
  LiveputOptimizer(const LiveputOptimizer&) = delete;
  LiveputOptimizer& operator=(const LiveputOptimizer&) = delete;

  // `current`: configuration running now (may be kIdleConfig when
  // suspended). `n_now`: instances available now. `predicted`: the
  // availability forecast N_1..N_I (one entry per future interval).
  LiveputPlan optimize(ParallelConfig current, int n_now,
                       const std::vector<int>& predicted);

  // Convenience: first step of the optimal plan.
  ParallelConfig advise(ParallelConfig current, int n_now,
                        const std::vector<int>& predicted);

  // Expected migration stall for transitioning c -> c' while k of the
  // N_from instances get preempted (exposed for tests and benches).
  // Memoized on (from, idle, to, clamped k).
  double expected_migration_cost(ParallelConfig from, int n_from,
                                 ParallelConfig to, int preemptions);

  const ThroughputModel& throughput_model() const { return *throughput_; }

  // DP worker threads after resolution (1 = serial).
  int threads() const { return threads_; }

  // Transition-cost memo telemetry (also flushed to the metrics
  // registry as liveput_dp.edge_cache_{hits,misses} after each
  // optimize() call).
  std::uint64_t edge_cache_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t edge_cache_misses() const {
    return memo_misses_.load(std::memory_order_relaxed);
  }

 private:
  // The mixture arithmetic behind expected_migration_cost, after the
  // trivial cases are peeled off; `idle`/`k` are already normalized.
  double transition_cost(ParallelConfig from, int idle, ParallelConfig to,
                         int k);
  // Serially populate the sampler cache for one DP edge's source so
  // the parallel candidate loop only ever reads it.
  void warm_transition(ParallelConfig from, int n_from, int k);
  void flush_metrics();

  const ThroughputModel* throughput_;
  CostEstimator estimator_;
  LiveputOptimizerOptions options_;
  // Prefixed metric names, precomputed (see options_.metric_prefix).
  std::string name_runs_, name_edge_hits_, name_edge_misses_, name_tasks_;
  PreemptionSampler sampler_;
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // created on first threaded run

  // Transition-cost memo: packed (from, idle, to, k) -> expected
  // stall seconds. Guarded for the parallel candidate loop; keys
  // evaluated concurrently within one interval are distinct, so a
  // value is computed exactly once.
  std::shared_mutex memo_mu_;
  std::unordered_map<std::uint64_t, double> memo_;
  // Config-space cache: N -> enumerate_configs(N) + idle sentinel.
  // Only touched serially (space resolution happens before the
  // parallel candidate loop).
  std::unordered_map<int, std::vector<ParallelConfig>> space_cache_;
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  std::uint64_t flushed_hits_ = 0;
  std::uint64_t flushed_misses_ = 0;
  std::uint64_t flushed_tasks_ = 0;
};

}  // namespace parcae
