// Liveput optimizer (§7): dynamic program over look-ahead intervals.
//
// Given the predicted availability sequence N_1..N_I, finds the
// sequence of parallel configurations maximizing the expected number
// of committed training samples (Equations 3-6):
//
//   F(i+1, c') = max_{c : c.instances() <= N_i}
//                  { F(i, c) + phi(c, N_i -> c', N_{i+1}) }
//   phi = THROUGHPUT(c') * E_v[ T - T_mig(c -> c' | v) ]
//
// The expectation over preemption mappings v comes from the cached
// Monte-Carlo summaries (PreemptionSampler); migration strategy and
// cost follow §7.2 (depth change -> pipeline migration; otherwise the
// cheaper of intra-/inter-stage, with the wipe-out probability charged
// as a ParcaePS rollback).
#pragma once

#include <cstdint>
#include <vector>

#include "migration/cost_model.h"
#include "migration/preemption.h"
#include "parallel/throughput_model.h"

namespace parcae {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct LiveputOptimizerOptions {
  double interval_s = 60.0;  // T: prediction/optimization interval
  int mc_trials = 256;       // Monte-Carlo trials per (D,P,idle,k)
  std::uint64_t seed = 7;
  // Optional metrics sink (non-owning): DP run counters here, MC
  // sampling latency in the PreemptionSampler.
  obs::MetricsRegistry* metrics = nullptr;
};

struct LiveputPlan {
  // Configurations chosen for each predicted interval (size = I).
  std::vector<ParallelConfig> configs;
  // Expected committed samples over the look-ahead window.
  double expected_samples = 0.0;

  ParallelConfig next() const {
    return configs.empty() ? kIdleConfig : configs.front();
  }
};

class LiveputOptimizer {
 public:
  LiveputOptimizer(const ThroughputModel* throughput,
                   CostEstimator estimator,
                   LiveputOptimizerOptions options = {});

  // `current`: configuration running now (may be kIdleConfig when
  // suspended). `n_now`: instances available now. `predicted`: the
  // availability forecast N_1..N_I (one entry per future interval).
  LiveputPlan optimize(ParallelConfig current, int n_now,
                       const std::vector<int>& predicted);

  // Convenience: first step of the optimal plan.
  ParallelConfig advise(ParallelConfig current, int n_now,
                        const std::vector<int>& predicted);

  // Expected migration stall for transitioning c -> c' while k of the
  // N_from instances get preempted (exposed for tests and benches).
  double expected_migration_cost(ParallelConfig from, int n_from,
                                 ParallelConfig to, int preemptions);

  const ThroughputModel& throughput_model() const { return *throughput_; }

 private:
  const ThroughputModel* throughput_;
  CostEstimator estimator_;
  LiveputOptimizerOptions options_;
  PreemptionSampler sampler_;
};

}  // namespace parcae
