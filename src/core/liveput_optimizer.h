// Liveput optimizer (§7): dynamic program over look-ahead intervals.
//
// Given the predicted availability sequence N_1..N_I, finds the
// sequence of parallel configurations maximizing the expected number
// of committed training samples (Equations 3-6):
//
//   F(i+1, c') = max_{c : c.instances() <= N_i}
//                  { F(i, c) + phi(c, N_i -> c', N_{i+1}) }
//   phi = THROUGHPUT(c') * E_v[ T - T_mig(c -> c' | v) ]
//
// The expectation over preemption mappings v comes from the cached
// Monte-Carlo summaries (PreemptionSampler); migration strategy and
// cost follow §7.2 (depth change -> pipeline migration; otherwise the
// cheaper of intra-/inter-stage, with the wipe-out probability charged
// as a ParcaePS rollback).
//
// Performance layer (the paper's < 0.3 s/optimization budget,
// Figure 18b; docs/performance.md §7 for the scale story):
//   - every evaluated DP edge (from, idle, to, k) is memoized (bounded
//     by options.edge_cache_capacity), so repeated interval pairs —
//     ubiquitous under flat forecasts and across the scheduler's
//     re-optimizations — cost a hash lookup instead of re-running the
//     mixture arithmetic;
//   - per-interval candidate spaces are stored as SoA slabs
//     (ConfigSpaceSoA): configs plus a contiguous throughput array,
//     and transition costs for one DP column land in a dense
//     [candidate][predecessor] slab, so the hot predecessor scan is a
//     branch-light walk over contiguous doubles instead of
//     pointer-chasing + hash lookups;
//   - consecutive optimize() calls warm-start from the previous value
//     table: a column i is recomputed only when its direct inputs
//     (predicted[i-1], predicted[i]; for i = 0 the live config and
//     n_now) changed or its predecessor column's values changed.
//     Reused columns are bit-identical to what a full re-solve would
//     produce (options.verify_incremental re-runs the full DP and
//     aborts on any divergence; options.full_resolve disables reuse);
//   - with options.threads > 1 the candidate loop over c' runs on a
//     ThreadPool. Transition costs and MC summaries are materialized
//     serially into the slab first (in the exact order the serial DP
//     would first touch each key, keeping RNG consumption unchanged),
//     so the parallel phase only reads plain arrays and every plan is
//     bit-identical at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "migration/cost_model.h"
#include "migration/preemption.h"
#include "parallel/throughput_model.h"

namespace parcae {

class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct LiveputOptimizerOptions {
  double interval_s = 60.0;  // T: prediction/optimization interval
  int mc_trials = 256;       // Monte-Carlo trials per (D,P,idle,k)
  std::uint64_t seed = 7;
  // Optional metrics sink (non-owning): DP run counters here, MC
  // sampling latency in the PreemptionSampler.
  obs::MetricsRegistry* metrics = nullptr;
  // Worker threads for the DP candidate loop. 1 (the default) is the
  // serial legacy path; 0 resolves to PARCAE_THREADS / hardware
  // concurrency (ThreadPool::resolve). Results are bit-identical at
  // any thread count.
  int threads = 1;
  // Prepended to every metric name (fleet jobs sharing a registry);
  // "" keeps the historical names. Applied once at construction.
  std::string metric_prefix;
  // Escape hatch: disable warm-started column reuse and re-solve the
  // full DP every optimize() call.
  bool full_resolve = false;
  // Debug pin: after an incremental solve that reused any column, run
  // the full DP too and abort the process if any value, parent, or
  // plan entry differs. Expensive; for tests and triage only.
  bool verify_incremental = false;
  // LRU bound on the per-N config-space cache (a churning fleet sees
  // many distinct N over a long run). Minimum 1.
  std::size_t space_cache_capacity = 64;
  // Insertion cap on the transition-cost memo. Beyond this the memo
  // stops growing and further unique edges are computed directly
  // (counted as liveput_dp.edge_cache_bypass). At N = 1024 the edge
  // universe is ~10^7 pairs; the cap keeps memory bounded.
  std::size_t edge_cache_capacity = 1u << 20;
};

struct LiveputPlan {
  // Configurations chosen for each predicted interval (size = I).
  std::vector<ParallelConfig> configs;
  // Expected committed samples over the look-ahead window.
  double expected_samples = 0.0;

  ParallelConfig next() const {
    return configs.empty() ? kIdleConfig : configs.front();
  }
};

// SoA view of one interval's candidate space: the feasible configs
// for N instances (+ the idle sentinel, always last) next to a
// contiguous throughput slab, so the DP scans plain arrays.
struct ConfigSpaceSoA {
  std::vector<ParallelConfig> configs;
  std::vector<double> throughput;  // throughput(configs[j])
  std::size_t size() const { return configs.size(); }
};

class LiveputOptimizer {
 public:
  LiveputOptimizer(const ThroughputModel* throughput,
                   CostEstimator estimator,
                   LiveputOptimizerOptions options = {});
  ~LiveputOptimizer();
  LiveputOptimizer(const LiveputOptimizer&) = delete;
  LiveputOptimizer& operator=(const LiveputOptimizer&) = delete;

  // `current`: configuration running now (may be kIdleConfig when
  // suspended). `n_now`: instances available now. `predicted`: the
  // availability forecast N_1..N_I (one entry per future interval).
  LiveputPlan optimize(ParallelConfig current, int n_now,
                       const std::vector<int>& predicted);

  // Convenience: first step of the optimal plan.
  ParallelConfig advise(ParallelConfig current, int n_now,
                        const std::vector<int>& predicted);

  // Expected migration stall for transitioning c -> c' while k of the
  // N_from instances get preempted (exposed for tests and benches).
  // Memoized on (from, idle, to, clamped k).
  double expected_migration_cost(ParallelConfig from, int n_from,
                                 ParallelConfig to, int preemptions);

  const ThroughputModel& throughput_model() const { return *throughput_; }

  // DP worker threads after resolution (1 = serial).
  int threads() const { return threads_; }

  // Drop the warm-started value table; the next optimize() re-solves
  // every column. Cheap; used on scheduler reset.
  void invalidate();

  // Transition-cost memo telemetry (also flushed to the metrics
  // registry as liveput_dp.edge_cache_{hits,misses,bypass} after each
  // optimize() call).
  std::uint64_t edge_cache_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t edge_cache_misses() const {
    return memo_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t edge_cache_bypass() const {
    return memo_bypass_.load(std::memory_order_relaxed);
  }

  // Incremental-DP telemetry (liveput_dp.states_reused /
  // liveput_dp.states_re_expanded): DP states carried over from the
  // previous solve vs. recomputed, cumulatively and for the most
  // recent optimize() call.
  std::uint64_t states_reused() const { return states_reused_; }
  std::uint64_t states_re_expanded() const { return states_re_expanded_; }
  std::uint64_t last_states_reused() const { return last_states_reused_; }
  std::uint64_t last_states_re_expanded() const {
    return last_states_re_expanded_;
  }

  // Config-space LRU telemetry (liveput_dp.space_cache_evictions).
  std::uint64_t space_cache_evictions() const {
    return space_cache_evictions_;
  }
  std::size_t space_cache_size() const { return space_cache_.size(); }

 private:
  // Previous solve, persisted for warm starts. `spaces` holds strong
  // refs so LRU eviction can never invalidate a column we may reuse.
  struct WarmState {
    bool valid = false;
    ParallelConfig current = kIdleConfig;
    int n_now = 0;
    std::vector<int> predicted;
    std::vector<std::shared_ptr<const ConfigSpaceSoA>> spaces;
    std::vector<std::vector<double>> best;
    std::vector<std::vector<int>> parent;
  };

  // The mixture arithmetic behind expected_migration_cost, after the
  // trivial cases are peeled off; `idle`/`k` are already normalized.
  double transition_cost(ParallelConfig from, int idle, ParallelConfig to,
                         int k);
  // Config space for N instances through the bounded LRU cache.
  std::shared_ptr<const ConfigSpaceSoA> resolve_space(int n);
  // Compute DP column i into best_out/parent_out: serially fill the
  // transition-cost slab (first-touch order identical to the legacy
  // serial scan), then run the candidate argmax loop (parallel when
  // threads > 1). prev_space/best_prev are null for i == 0.
  void compute_column(std::size_t i, ParallelConfig current, int n_now,
                      const std::vector<int>& predicted,
                      const ConfigSpaceSoA* prev_space,
                      const std::vector<double>* best_prev,
                      const ConfigSpaceSoA& cur_space,
                      std::vector<double>& best_out,
                      std::vector<int>& parent_out);
  // Backtrack a plan out of per-column value/parent tables.
  LiveputPlan backtrack(
      const std::vector<std::shared_ptr<const ConfigSpaceSoA>>& spaces,
      const std::vector<std::vector<double>>& best,
      const std::vector<std::vector<int>>& parent) const;
  void flush_metrics();

  const ThroughputModel* throughput_;
  CostEstimator estimator_;
  LiveputOptimizerOptions options_;
  // Prefixed metric names, precomputed (see options_.metric_prefix).
  std::string name_runs_, name_edge_hits_, name_edge_misses_,
      name_edge_bypass_, name_tasks_, name_states_reused_,
      name_states_re_expanded_, name_space_evictions_;
  PreemptionSampler sampler_;
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // created on first threaded run

  // Transition-cost memo: packed (from, idle, to, k) -> expected
  // stall seconds. Guarded for concurrent public callers when
  // threads > 1; the DP itself only touches it serially (slab fill).
  std::shared_mutex memo_mu_;
  std::unordered_map<std::uint64_t, double> memo_;
  // Config-space LRU: N -> SoA space. front() of the list is the most
  // recently used N. Only touched serially.
  struct SpaceEntry {
    std::shared_ptr<const ConfigSpaceSoA> space;
    std::list<int>::iterator lru;
  };
  std::unordered_map<int, SpaceEntry> space_cache_;
  std::list<int> space_lru_;
  std::uint64_t space_cache_evictions_ = 0;

  WarmState warm_;
  // Scratch reused across optimize() calls (allocation-free in steady
  // state): the per-column transition-cost slab and the copy of a
  // recomputed column's previous values (for the convergence cutoff).
  std::vector<double> slab_;
  std::vector<double> old_column_;
  std::uint64_t states_reused_ = 0;
  std::uint64_t states_re_expanded_ = 0;
  std::uint64_t last_states_reused_ = 0;
  std::uint64_t last_states_re_expanded_ = 0;

  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  std::atomic<std::uint64_t> memo_bypass_{0};
  std::uint64_t flushed_hits_ = 0;
  std::uint64_t flushed_misses_ = 0;
  std::uint64_t flushed_bypass_ = 0;
  std::uint64_t flushed_tasks_ = 0;
  std::uint64_t flushed_states_reused_ = 0;
  std::uint64_t flushed_states_re_expanded_ = 0;
  std::uint64_t flushed_space_evictions_ = 0;
};

}  // namespace parcae
