#include "core/slo.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/fault.h"
#include "common/table.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace parcae {

namespace {

const char* signal_name(SloSignal signal) {
  switch (signal) {
    case SloSignal::kCounterRate: return "rate";
    case SloSignal::kGauge: return "gauge";
    case SloSignal::kSeriesValue: return "value";
    case SloSignal::kSeriesDropPct: return "drop";
  }
  return "?";
}

bool parse_one(const std::string& text, SloRule* rule, std::string* error) {
  // name ':' signal ':' metric ':' op value [':for=' N]
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t colon = text.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, colon - begin));
    begin = colon + 1;
  }
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = "rule '" + text + "': " + what;
    return false;
  };
  if (parts.size() < 4 || parts.size() > 5)
    return fail("expected name:signal:metric:op-value[:for=N]");
  if (parts[0].empty()) return fail("empty rule name");
  rule->name = parts[0];
  if (parts[1] == "rate")
    rule->signal = SloSignal::kCounterRate;
  else if (parts[1] == "gauge")
    rule->signal = SloSignal::kGauge;
  else if (parts[1] == "value")
    rule->signal = SloSignal::kSeriesValue;
  else if (parts[1] == "drop")
    rule->signal = SloSignal::kSeriesDropPct;
  else
    return fail("unknown signal '" + parts[1] +
                "' (rate|gauge|value|drop)");
  if (parts[2].empty()) return fail("empty metric name");
  rule->metric = parts[2];
  const std::string& cmp = parts[3];
  if (cmp.size() < 2 || (cmp[0] != '>' && cmp[0] != '<'))
    return fail("comparison must be >N or <N");
  rule->op = cmp[0] == '>' ? SloOp::kGt : SloOp::kLt;
  char* end = nullptr;
  rule->threshold = std::strtod(cmp.c_str() + 1, &end);
  if (end == cmp.c_str() + 1 || *end != '\0')
    return fail("bad threshold '" + cmp.substr(1) + "'");
  rule->for_intervals = 1;
  if (parts.size() == 5) {
    if (parts[4].rfind("for=", 0) != 0)
      return fail("expected for=N, got '" + parts[4] + "'");
    rule->for_intervals = std::atoi(parts[4].c_str() + 4);
    if (rule->for_intervals < 1) return fail("for=N needs N >= 1");
  }
  return true;
}

}  // namespace

std::vector<SloRule> SloEngine::parse_rules(const std::string& spec,
                                            std::string* error) {
  std::vector<SloRule> rules;
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t semi = spec.find(';', begin);
    if (semi == std::string::npos) semi = spec.size();
    const std::string one = spec.substr(begin, semi - begin);
    begin = semi + 1;
    if (one.empty()) continue;
    SloRule rule;
    if (!parse_one(one, &rule, error)) return {};
    rules.push_back(std::move(rule));
  }
  if (rules.empty() && error != nullptr) *error = "empty rule spec";
  return rules;
}

std::vector<SloRule> SloEngine::default_rules() {
  // The thresholds mirror the failure patterns docs/observability.md
  // walks through; override any of them with an explicit spec.
  return parse_rules(
      "liveput-drop:drop:liveput_expected_samples:>50:for=2;"
      "lease-churn:rate:driver.lease_expiries_detected:>2;"
      "rpc-retry-storm:rate:rpc.client.retries:>8;"
      "paused:rate:driver.paused_intervals:>0");
}

std::vector<SloRule> SloEngine::default_serving_rules() {
  // Latency-first failure patterns for the serving subsystem
  // (docs/serving.md): tail-latency breach, violation surges, queue
  // growth, admission drops, and goodput collapse after a preemption.
  return parse_rules(
      "serve-p99-breach:gauge:serve.p99_latency_ms:>4000:for=2;"
      "serve-violation-surge:rate:serve.slo_violations:>50;"
      "serve-queue-growth:gauge:serve.queue_depth:>32:for=3;"
      "serve-drops:rate:serve.dropped:>0;"
      "serve-goodput-drop:drop:goodput_rps:>50:for=2");
}

std::vector<SloEngine::RuleState> SloEngine::init(
    const std::vector<SloRule>& rules) {
  std::vector<RuleState> states;
  states.reserve(rules.size());
  for (const SloRule& rule : rules) states.push_back(RuleState{rule});
  return states;
}

std::vector<SloRule> SloEngine::rules() const {
  std::vector<SloRule> out;
  out.reserve(rules_.size());
  for (const RuleState& state : rules_) out.push_back(state.rule);
  return out;
}

bool SloEngine::observe(RuleState& state, double* value) const {
  const SloRule& rule = state.rule;
  switch (rule.signal) {
    case SloSignal::kCounterRate: {
      double current = 0.0;
      if (snapshot_ != nullptr)
        current = snapshot_->counter_or(rule.metric, 0.0);
      else if (metrics_ != nullptr)
        current = metrics_->counter_value(rule.metric);
      else
        return false;
      *value = current - state.prev_counter;
      state.prev_counter = current;
      return true;
    }
    case SloSignal::kGauge: {
      if (snapshot_ != nullptr)
        *value = snapshot_->gauge_or(rule.metric, 0.0);
      else if (metrics_ != nullptr)
        *value = metrics_->gauge_value(rule.metric);
      else
        return false;
      return true;
    }
    case SloSignal::kSeriesValue:
    case SloSignal::kSeriesDropPct: {
      if (series_ == nullptr || series_->rows() == 0) return false;
      const double current =
          series_->at(series_->rows() - 1, rule.metric);
      if (std::isnan(current)) return false;
      if (rule.signal == SloSignal::kSeriesValue) {
        *value = current;
        return true;
      }
      state.trailing_max = std::max(state.trailing_max, current);
      if (state.trailing_max <= 0.0) return false;
      *value =
          100.0 * (state.trailing_max - current) / state.trailing_max;
      return true;
    }
  }
  return false;
}

std::vector<SloAlert> SloEngine::evaluate(int interval, double time_s) {
  std::vector<SloAlert> fired;
  for (RuleState& state : rules_) {
    double value = 0.0;
    const bool observed = observe(state, &value);
    const bool breached =
        observed && (state.rule.op == SloOp::kGt
                         ? value > state.rule.threshold
                         : value < state.rule.threshold);
    if (!breached) {
      state.breached_streak = 0;
      state.firing = false;  // episode over; re-arm
      continue;
    }
    ++state.breached_streak;
    if (state.firing || state.breached_streak < state.rule.for_intervals)
      continue;
    state.firing = true;

    // The obs.alert point models a lossy alert channel: the breach
    // happened (and the episode still counts as fired once), but this
    // delivery is dropped from every sink.
    if (faults_ != nullptr && faults_->should_fire("obs.alert")) {
      ++suppressed_;
      if (alert_metrics_ != nullptr)
        alert_metrics_->counter("obs.alerts_suppressed").inc();
      continue;
    }

    SloAlert alert;
    alert.interval = interval;
    alert.time_s = time_s;
    alert.rule = state.rule.name;
    alert.metric = state.rule.metric;
    alert.value = value;
    alert.threshold = state.rule.threshold;
    if (alert_metrics_ != nullptr) {
      alert_metrics_->counter("obs.alerts_fired").inc();
      alert_metrics_->counter("obs.alerts_fired." + state.rule.name).inc();
    }
    if (events_ != nullptr) {
      char value_text[40], threshold_text[40];
      std::snprintf(value_text, sizeof(value_text), "%g", value);
      std::snprintf(threshold_text, sizeof(threshold_text), "%g",
                    state.rule.threshold);
      events_->record(time_s, EventCategory::kAlert,
                      "slo breach: " + state.rule.name,
                      {{"metric", state.rule.metric},
                       {"signal", signal_name(state.rule.signal)},
                       {"value", value_text},
                       {"threshold", threshold_text}});
    }
    alerts_.push_back(alert);
    fired.push_back(std::move(alert));
  }
  return fired;
}

std::string SloEngine::to_jsonl() const {
  std::string out;
  for (const SloAlert& alert : alerts_) {
    out += "{\"interval\":" + std::to_string(alert.interval) +
           ",\"t\":" + obs::format_metric_value(alert.time_s) +
           ",\"rule\":" + obs::json_quote(alert.rule) +
           ",\"metric\":" + obs::json_quote(alert.metric) +
           ",\"value\":" + obs::format_metric_value(alert.value) +
           ",\"threshold\":" + obs::format_metric_value(alert.threshold) +
           "}\n";
  }
  return out;
}

bool SloEngine::write_jsonl(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string jsonl = to_jsonl();
  std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  return true;
}

std::string SloEngine::render() const {
  if (alerts_.empty()) return "";
  std::map<std::string, int> count;
  std::map<std::string, const SloAlert*> last;
  for (const SloAlert& alert : alerts_) {
    ++count[alert.rule];
    last[alert.rule] = &alert;
  }
  TextTable t({"alert", "fired", "last interval", "last value",
               "threshold"});
  for (const auto& [rule, n] : count) {
    const SloAlert* a = last[rule];
    t.row()
        .add(rule)
        .add(n)
        .add(a->interval)
        .add(a->value, 3)
        .add(a->threshold, 3);
  }
  return t.to_string();
}

}  // namespace parcae
