#include "core/telemetry.h"

#include <cstdio>
#include <sstream>

#include "obs/json_util.h"

namespace parcae {

const char* event_category_name(EventCategory category) {
  switch (category) {
    case EventCategory::kCloud:
      return "cloud";
    case EventCategory::kPrediction:
      return "prediction";
    case EventCategory::kDecision:
      return "decision";
    case EventCategory::kMigration:
      return "migration";
    case EventCategory::kCheckpoint:
      return "checkpoint";
    case EventCategory::kWarning:
      return "warning";
    case EventCategory::kAlert:
      return "alert";
  }
  return "?";
}

void EventLog::record(double time_s, EventCategory category,
                      std::string message,
                      std::map<std::string, std::string> fields) {
  // A zero-capacity log stores nothing: the event is dropped outright
  // (popping an empty deque is UB, not eviction).
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  while (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  TelemetryEvent event;
  event.time_s = time_s;
  event.category = category;
  event.message = std::move(message);
  event.fields = std::move(fields);
  events_.push_back(std::move(event));
}

std::vector<const TelemetryEvent*> EventLog::by_category(
    EventCategory category) const {
  std::vector<const TelemetryEvent*> out;
  for (const auto& event : events_)
    if (event.category == category) out.push_back(&event);
  return out;
}

std::map<EventCategory, std::size_t> EventLog::histogram() const {
  std::map<EventCategory, std::size_t> out;
  for (const auto& event : events_) ++out[event.category];
  return out;
}

std::string EventLog::render(std::size_t last_n) const {
  std::ostringstream os;
  std::size_t start = 0;
  if (last_n > 0 && events_.size() > last_n) start = events_.size() - last_n;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const auto& event = events_[i];
    char head[64];
    std::snprintf(head, sizeof(head), "[%6.0fs] %-10s ", event.time_s,
                  event_category_name(event.category));
    os << head << event.message;
    for (const auto& [key, value] : event.fields)
      os << "  " << key << "=" << value;
    os << '\n';
  }
  return os.str();
}

std::string EventLog::to_jsonl() const {
  std::ostringstream os;
  for (const auto& event : events_) {
    os << "{\"t\":" << event.time_s << ",\"category\":"
       << obs::json_quote(event_category_name(event.category))
       << ",\"message\":" << obs::json_quote(event.message)
       << ",\"fields\":{";
    bool first = true;
    for (const auto& [key, value] : event.fields) {
      if (!first) os << ',';
      first = false;
      os << obs::json_quote(key) << ':' << obs::json_quote(value);
    }
    os << "}}\n";
  }
  return os.str();
}

void EventLog::clear() {
  events_.clear();
  dropped_ = 0;
}

}  // namespace parcae
