// SchedulerCore: the single implementation of Parcae's decision loop
// (Algorithm 1), shared by every executor backend.
//
// Each interval it
//   1. adapts the previously planned configuration to the actual
//      availability (§8 parallelization adaptation), holding the
//      current pipeline depth through noisy forecasts (hysteresis),
//   2. plans the live migration from the (possibly damaged) current
//      configuration (§6) and estimates its stall,
//   3. forecasts availability (§5) and runs the liveput optimizer
//      (§7) to pick the next interval's configuration.
//
// The core is pure decision-making: it never touches a ledger and
// never trains. Backends drive it and act on its advice:
//   - ParcaePolicy (src/runtime/parcae_policy.*) charges the advised
//     stall to the interval-quantized simulator's ledgers,
//   - SpotTrainingDriver (src/runtime/spot_driver.*) executes the
//     advised configuration as real migrations on the in-process
//     agent cluster,
//   - future backends (sharded or RPC executors) are one adapter each.
//
// Three prediction modes cover the paper's variants:
//   kArima    — Parcae        (guarded ARIMA forecasts)
//   kOracle   — Parcae(Ideal) (true future availability)
//   kReactive — Parcae-Reactive (§10.4: liveput optimization disabled,
//               throughput-optimal target + adaptation only)
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/liveput_optimizer.h"
#include "core/telemetry.h"
#include "fleet/instance_pool.h"
#include "migration/planner.h"
#include "model/model_profile.h"
#include "obs/metrics.h"
#include "parallel/throughput_model.h"
#include "predict/predictor.h"
#include "trace/spot_trace.h"

namespace parcae {

namespace obs {
class TraceWriter;
}  // namespace obs

enum class PredictionMode { kArima, kOracle, kReactive };

struct SchedulerCoreOptions {
  PredictionMode mode = PredictionMode::kArima;
  int lookahead = 12;         // I: intervals the optimizer plans over
  int history = 12;           // H: intervals of history fed to ARIMA
  int reoptimize_every = 1;   // prediction rate (Figure 11)
  // Event-driven control (mode=event in the CLIs): instead of
  // re-optimizing on the reoptimize_every tick, re-solve only when a
  // re-optimization event is pending — preemption notices and lease
  // expirations enqueued via notify_event(), or availability changes
  // observed at a step boundary. Reaction latency then is the
  // (incremental) solve time rather than the tick period; the warm-
  // started DP makes the solve cheap. Interval 0 always solves (the
  // bootstrap plan).
  bool event_driven = false;
  // Coalescing window for notify_event(): events landing within this
  // many milliseconds (simulated time) of the previous pending event
  // are counted as scheduler.events_coalesced and folded into the
  // same re-solve.
  double debounce_ms = 250.0;
  // Passthroughs to LiveputOptimizerOptions (triage knobs): disable
  // the warm-started incremental DP, or run both paths and abort on
  // any divergence (tests, chaos runs).
  bool optimizer_full_resolve = false;
  bool optimizer_verify_incremental = false;
  // Use the backtest-selecting adaptive predictor pool instead of the
  // paper's guarded ARIMA (an extension; see src/predict/adaptive.h).
  bool adaptive_predictor = false;
  int mc_trials = 256;
  std::uint64_t seed = 123;
  double interval_s = 60.0;
  // Worker threads for the liveput DP's candidate loop. Defaults to 1
  // (serial legacy path; metrics counters unchanged); 0 resolves to
  // PARCAE_THREADS / hardware concurrency. Plans are bit-identical at
  // any thread count (see docs/performance.md).
  int threads = 1;
  // Multiplicative jitter on actual migration stalls vs the
  // estimator's prediction (Figure 18a); 0 = deterministic.
  double cost_noise_stddev = 0.0;
  // GPUs preempted together (Figure 10 multi-GPU instances).
  int preemption_chunk = 1;
  // Voluntary pipeline-depth changes (no preemption forcing them) must
  // improve throughput by at least this fraction over keeping the
  // current depth; re-planning every interval under noisy forecasts
  // would otherwise thrash between depths (the paper's case study
  // shows Parcae holding depth 7 for 8 intervals despite some unused
  // instances, §10.4).
  double depth_change_hysteresis = 0.15;
  // Cluster capacity: bounds the predictor's guard rails and the
  // forecast clamp (32 for the paper's cluster; the in-process driver
  // uses 64).
  int max_instances = 32;
  // Pipeline-depth bounds for the §8 adaptation. 0 = derive from the
  // model (memory-model minimum / partition_units); the real cluster
  // overrides them with what its layers actually allow.
  int min_depth_override = 0;
  int max_depth_override = 0;
  ThroughputModelOptions throughput;
  // Observability sinks (non-owning, both optional). With no registry
  // injected the core records into one it owns — metrics are always
  // on and metrics_snapshot() is never empty after a step. A tracer
  // additionally emits predict/optimize/plan-migration spans as
  // Chrome trace events.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* tracer = nullptr;
  // Prepended to every metric and span name this core (and its
  // optimizer/planner/sampler) records — "job3." turns
  // "scheduler.intervals" into "job3.scheduler.intervals", so N cores
  // sharing one registry (a fleet) never collide. The default empty
  // prefix keeps every historical name bit-identical. Names are
  // precomputed at construction; a non-empty prefix adds no per-step
  // allocation.
  std::string metric_prefix;
};

// Availability change observed at an interval boundary (the cloud-side
// inputs of Algorithm 1). Executor backends translate their own event
// streams (trace diffs, preemption notices) into this.
struct AvailabilityObservation {
  int available = 0;    // instances available this interval
  int preempted = 0;    // instances lost at this interval boundary
  int allocated = 0;    // instances gained at this interval boundary
};

struct MigrationLogEntry {
  int interval = 0;
  MigrationKind kind = MigrationKind::kNone;
  double estimated_s = 0.0;
  double actual_s = 0.0;
};

// Everything the core decided for one interval.
struct SchedulerDecision {
  ParallelConfig config;    // configuration advised for this interval
  MigrationPlan plan;       // migration realizing it from the damaged state
  // Plan stall with the cost-noise jitter applied (what the migration
  // will actually cost; backends charge or execute it).
  double stall_s = 0.0;
  // Optimizer advice for the next interval (what `config` will be
  // adapted from next time).
  ParallelConfig planned_next;
  // Availability forecast issued this interval (empty when the
  // optimizer was not re-run; Figure 11's lower prediction rates).
  std::vector<int> forecast;
};

class SchedulerCore {
 public:
  // `oracle` must outlive the core when mode == kOracle (it supplies
  // the true future availability of the instances this core may use —
  // the whole pool for a single job, its lease for a fleet job).
  SchedulerCore(ModelProfile model, SchedulerCoreOptions options,
                const InstancePoolView* oracle);

  // Trace-backed convenience: wraps `oracle` in a core-owned
  // TracePoolView (the single-job adapter). Behavior is bit-identical
  // to the historical direct-trace path.
  SchedulerCore(ModelProfile model, SchedulerCoreOptions options,
                const SpotTrace* oracle = nullptr);

  // Restores the pristine post-construction state (history, RNG,
  // telemetry, migration log).
  void reset();

  // One pass of Algorithm 1 for interval `interval_index`.
  SchedulerDecision step(int interval_index,
                         const AvailabilityObservation& observed,
                         double interval_s);

  // Event-driven mode: enqueue a re-optimization event (a preemption
  // notice, lease expiry, allocation grant...) observed at simulated
  // time `now_s`. Events within options.debounce_ms of the previous
  // pending one are coalesced; the next step() re-solves once and
  // drains the queue. No-op unless options.event_driven.
  void notify_event(std::string_view kind, double now_s);
  int pending_events() const { return pending_events_; }

  const SchedulerCoreOptions& options() const { return options_; }
  const ModelProfile& model() const { return model_; }
  const ThroughputModel& throughput_model() const { return throughput_; }
  const std::vector<MigrationLogEntry>& migration_log() const {
    return migration_log_;
  }
  // Structured audit trail of everything the scheduler saw and did.
  const EventLog& telemetry() const { return telemetry_; }
  // Mutable access for executor backends (the spot driver's cluster
  // appends fault/recovery events into the same trail).
  EventLog& event_log() { return telemetry_; }

  // The registry this core records into (the injected one, else the
  // core-owned instance).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::TraceWriter* tracer() const { return options_.tracer; }
  // Counters (preemptions seen, reoptimizations, migrations planned,
  // hysteresis suppressions, ...) and latency histograms (optimizer,
  // MC sampler, migration planner) accumulated so far.
  obs::MetricsSnapshot metrics_snapshot() const {
    return metrics_->snapshot();
  }

 private:
  std::vector<int> predict(int interval_index) const;
  ClusterSnapshot observe_damage(const AvailabilityObservation& observed,
                                 int prev_available);
  int min_depth() const;
  int max_depth() const;

  // Metric/span names with options_.metric_prefix applied, built once
  // at construction so the hot path never concatenates.
  struct MetricNames {
    std::string intervals, available, preemptions_seen, allocations_seen,
        hysteresis_suppressions, config_changes, migrations_planned,
        migration_stall_s, reoptimizations, liveput_expected_samples,
        span_step, span_plan_migration, span_predict, span_optimize,
        events_enqueued, events_coalesced, event_reoptimizations,
        span_event_latency;
  };
  static MetricNames make_names(const std::string& prefix);

  ModelProfile model_;
  SchedulerCoreOptions options_;
  // Oracle lease view: the injected one, or owned_oracle_ when
  // constructed from a raw SpotTrace.
  std::unique_ptr<TracePoolView> owned_oracle_;
  const InstancePoolView* oracle_;
  // Declared before the planner/optimizer so metrics_ is resolved
  // when they capture it.
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;
  MetricNames names_;
  ThroughputModel throughput_;
  MigrationPlanner planner_;
  LiveputOptimizer optimizer_;
  std::unique_ptr<AvailabilityPredictor> predictor_;

  // Mutable run state.
  Rng rng_{0};
  std::vector<double> history_;
  ParallelConfig current_ = kIdleConfig;
  ParallelConfig planned_next_ = kIdleConfig;
  int prev_available_ = 0;
  // Event-driven mode: re-optimization events waiting for the next
  // step, and the time of the most recent one (debounce anchor).
  int pending_events_ = 0;
  double last_event_s_ = -1.0e18;
  std::vector<MigrationLogEntry> migration_log_;
  EventLog telemetry_;
};

}  // namespace parcae
